package metrics

import (
	"strconv"
	"strings"
	"testing"
)

// TestRegistryIdentity: the registry must hand back the same instrument
// for the same name, and distinct ones for distinct names.
func TestRegistryIdentity(t *testing.T) {
	r := NewRegistry()
	if r.Histogram("a") != r.Histogram("a") {
		t.Fatal("same-name histogram not shared")
	}
	if r.Histogram("a") == r.Histogram("b") {
		t.Fatal("distinct names share a histogram")
	}
	if r.Gauge("g") != r.Gauge("g") || r.Counter("c") != r.Counter("c") {
		t.Fatal("gauge/counter identity broken")
	}
	r.Histogram("z")
	if got := r.HistogramNames(); len(got) != 3 || got[0] != "a" || got[2] != "z" {
		t.Fatalf("HistogramNames = %v", got)
	}
}

// TestPromName: sanitization must map the full forbidden set and guard
// leading digits.
func TestPromName(t *testing.T) {
	cases := map[string]string{
		"sr3_phase_fetch_ns": "sr3_phase_fetch_ns",
		"a.b-c/d e":          "a_b_c_d_e",
		"9lives":             "_9lives",
		"ok:scoped":          "ok:scoped",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Fatalf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestWritePrometheus checks the text exposition end to end: TYPE
// headers, cumulative le buckets in ascending order, +Inf closing the
// histogram, sum/count in seconds, and gauge/counter samples.
func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("sr3_phase_fetch_ns")
	h.Record(1_000_000)     // 1ms
	h.Record(2_000_000)     // 2ms
	h.Record(1_000_000_000) // 1s
	r.Gauge("sr3_live_nodes").Set(24)
	r.Counter("sr3_phase_fetch_total").Add(3)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	for _, want := range []string{
		"# TYPE sr3_phase_fetch_ns histogram\n",
		"sr3_phase_fetch_ns_bucket{le=\"+Inf\"} 3\n",
		"sr3_phase_fetch_ns_count 3\n",
		"# TYPE sr3_live_nodes gauge\nsr3_live_nodes 24\n",
		"# TYPE sr3_phase_fetch_total counter\nsr3_phase_fetch_total 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}

	// The histogram sum is in seconds: 1ms + 2ms + 1s = 1.003s.
	if !strings.Contains(out, "sr3_phase_fetch_ns_sum 1.003\n") {
		t.Fatalf("wrong sum line:\n%s", out)
	}

	// le bounds must be ascending and cumulative counts non-decreasing.
	var lastLe float64
	var lastCum int64
	seen := 0
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "sr3_phase_fetch_ns_bucket{le=\"") || strings.Contains(line, "+Inf") {
			continue
		}
		rest := strings.TrimPrefix(line, "sr3_phase_fetch_ns_bucket{le=\"")
		q := strings.Index(rest, "\"")
		le, err := strconv.ParseFloat(rest[:q], 64)
		if err != nil {
			t.Fatalf("unparseable le in %q: %v", line, err)
		}
		cum, err := strconv.ParseInt(strings.TrimSpace(rest[q+2:]), 10, 64)
		if err != nil {
			t.Fatalf("unparseable count in %q: %v", line, err)
		}
		if seen > 0 && (le <= lastLe || cum < lastCum) {
			t.Fatalf("buckets not cumulative/ascending at %q (prev le %g cum %d)", line, lastLe, lastCum)
		}
		lastLe, lastCum = le, cum
		seen++
	}
	if seen == 0 {
		t.Fatalf("no finite le buckets emitted:\n%s", out)
	}
	if lastCum != 3 {
		t.Fatalf("last finite cumulative = %d, want 3", lastCum)
	}
}

// TestWritePrometheusEmpty: an empty registry renders to nothing and no
// error.
func TestWritePrometheusEmpty(t *testing.T) {
	var b strings.Builder
	if err := NewRegistry().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 0 {
		t.Fatalf("empty registry produced output: %q", b.String())
	}
}
