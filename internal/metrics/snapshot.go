package metrics

// RegistrySnapshot is a point-in-time, wire-friendly (gob/JSON) copy of
// a Registry — the payload of the cluster metrics-federation pull. The
// seed reconstructs a Registry from it (RegistryFromSnapshot) and serves
// the result under the member's node= label, so a federated scrape is
// byte-compatible with scraping the member directly. Histograms travel
// as sparse bucket lists: a 488-slot HDR layout with a handful of
// populated buckets costs a few dozen ints on the wire.
type RegistrySnapshot struct {
	Hists    map[string]HistSnapshot
	Gauges   map[string]int64
	Counters map[string]int64
	// Help carries only explicit SetHelp overrides; catalog help
	// (help.go) is resolved again on the receiving side.
	Help map[string]string
}

// HistSnapshot is one LatencyHistogram as sparse (bucket, count) pairs.
type HistSnapshot struct {
	Buckets []int   // indices of non-empty buckets, ascending
	Counts  []int64 // observation count per bucket, parallel to Buckets
	Count   int64
	Sum     int64
	Min     int64
	Max     int64
}

// Snapshot copies the registry's current instrument values. Concurrent
// recording continues; the copy is internally consistent per instrument
// (each value is one atomic load) but not across instruments, which is
// the same guarantee a Prometheus scrape has.
func (r *Registry) Snapshot() RegistrySnapshot {
	s := r.snapshot()
	out := RegistrySnapshot{
		Hists:    make(map[string]HistSnapshot, len(s.histNames)),
		Gauges:   make(map[string]int64, len(s.gaugeNames)),
		Counters: make(map[string]int64, len(s.counterNames)),
	}
	for _, name := range s.histNames {
		h := s.hists[name]
		hs := HistSnapshot{Count: h.Count(), Sum: h.Sum(), Min: h.Min(), Max: h.Max()}
		for _, i := range h.NonEmptyBuckets() {
			hs.Buckets = append(hs.Buckets, i)
			hs.Counts = append(hs.Counts, h.BucketCount(i))
		}
		out.Hists[name] = hs
	}
	for _, name := range s.gaugeNames {
		out.Gauges[name] = s.gauges[name].Value()
	}
	for _, name := range s.counterNames {
		out.Counters[name] = s.counters[name].Value()
	}
	r.mu.Lock()
	for name, text := range r.help {
		if out.Help == nil {
			out.Help = make(map[string]string, len(r.help))
		}
		out.Help[name] = text
	}
	r.mu.Unlock()
	return out
}

// RegistryFromSnapshot rebuilds a Registry holding exactly the
// snapshot's values. The result is a live registry (recording into it
// works) but its intended life is read-only: one federation cycle on the
// seed, replaced wholesale by the next pull.
func RegistryFromSnapshot(s RegistrySnapshot) *Registry {
	r := NewRegistry()
	for name, hs := range s.Hists {
		h := r.Histogram(name)
		for i, b := range hs.Buckets {
			if b < 0 || b >= hdrBuckets || i >= len(hs.Counts) {
				continue
			}
			h.counts[b].Store(hs.Counts[i])
		}
		h.count.Store(hs.Count)
		h.sum.Store(hs.Sum)
		if hs.Count > 0 {
			h.min.Store(hs.Min + 1) // min slot stores value+1; 0 means unset
		}
		h.max.Store(hs.Max)
	}
	for name, v := range s.Gauges {
		r.Gauge(name).Set(v)
	}
	for name, v := range s.Counters {
		r.Counter(name).Add(v) // fresh counter: Add from zero sets it
	}
	for name, text := range s.Help {
		r.SetHelp(name, text)
	}
	return r
}
