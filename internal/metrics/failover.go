package metrics

// FailoverStats aggregates recovery outcome reports across many
// recoveries (the chaos benchmarks and the stream runtime feed one
// recovery.Outcome per recovery into Add). The package stays free of
// internal imports, so the fields arrive as plain numbers.
type FailoverStats struct {
	// Recoveries is how many outcomes were aggregated.
	Recoveries int
	// Attempts sums collection passes (initial pass + retry rounds +
	// chain replans) across all recoveries.
	Attempts int
	// Failovers sums shard fetches that needed redirection to another
	// replica or a retry before succeeding.
	Failovers int
	// RetriedBytes sums the shard bytes obtained through those failover
	// fetches — the retransmission overhead the ladder paid.
	RetriedBytes int
	// DeadProviders sums distinct providers observed unreachable
	// mid-recovery.
	DeadProviders int
	// Degraded counts recoveries where the mechanism fell down the
	// failover ladder (e.g. line/tree finishing some shards star-style).
	Degraded int
}

// Add folds one recovery outcome into the aggregate.
func (f *FailoverStats) Add(attempts, failovers, retriedBytes, deadProviders int, degraded bool) {
	f.Recoveries++
	f.Attempts += attempts
	f.Failovers += failovers
	f.RetriedBytes += retriedBytes
	f.DeadProviders += deadProviders
	if degraded {
		f.Degraded++
	}
}

// Merge folds another aggregate into this one.
func (f *FailoverStats) Merge(o FailoverStats) {
	f.Recoveries += o.Recoveries
	f.Attempts += o.Attempts
	f.Failovers += o.Failovers
	f.RetriedBytes += o.RetriedBytes
	f.DeadProviders += o.DeadProviders
	f.Degraded += o.Degraded
}

// FailoverRate returns the mean failovers per recovery (0 when empty).
func (f FailoverStats) FailoverRate() float64 {
	if f.Recoveries == 0 {
		return 0
	}
	return float64(f.Failovers) / float64(f.Recoveries)
}

// DegradedFraction returns the fraction of recoveries that degraded
// down the ladder (0 when empty).
func (f FailoverStats) DegradedFraction() float64 {
	if f.Recoveries == 0 {
		return 0
	}
	return float64(f.Degraded) / float64(f.Recoveries)
}
