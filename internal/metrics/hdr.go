package metrics

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// LatencyHistogram is an HDR-style fixed-bucket latency histogram over
// nanosecond values: power-of-two major buckets subdivided into 8 linear
// sub-buckets, giving ≤12.5% relative error across the full int64 range
// with a fixed 488-slot layout. Recording is a single atomic add on the
// hot path (no locks, no allocation), so concurrent recorders — the
// per-provider fetch goroutines of one recovery, or many recoveries at
// once — share one histogram safely. Histograms with the same layout
// merge by bucket-wise addition, which is what lets per-node histograms
// roll up into a cluster-wide view.
type LatencyHistogram struct {
	counts [hdrBuckets]atomic.Int64
	count  atomic.Int64
	sum    atomic.Int64
	min    atomic.Int64 // stores value+1 so zero means "unset"
	max    atomic.Int64
}

const (
	// hdrSubBits is the linear subdivision of each power-of-two range.
	hdrSubBits = 3
	hdrSub     = 1 << hdrSubBits
	// hdrBuckets covers every non-negative int64: values 0..7 get exact
	// buckets, then 8 sub-buckets per power of two up to 2^63-1.
	hdrBuckets = 488
)

// hdrIndex maps a non-negative value to its bucket.
func hdrIndex(v int64) int {
	if v < hdrSub {
		return int(v)
	}
	m := bits.Len64(uint64(v)) - 1 // floor(log2 v), >= 3
	return (m-3)*hdrSub + int(v>>(uint(m)-hdrSubBits))
}

// BucketLower returns the inclusive lower bound of bucket i; values v with
// BucketLower(i) <= v < BucketLower(i+1) land in bucket i.
func BucketLower(i int) int64 {
	if i < hdrSub {
		return int64(i)
	}
	m := i/hdrSub + 2
	return int64(i-(m-3)*hdrSub) << (uint(m) - hdrSubBits)
}

// BucketUpper returns the exclusive upper bound of bucket i.
func BucketUpper(i int) int64 {
	if i+1 >= hdrBuckets {
		return math.MaxInt64
	}
	return BucketLower(i + 1)
}

// Buckets returns the number of buckets in the fixed layout.
func Buckets() int { return hdrBuckets }

// Record adds one observation (negative values clamp to zero).
func (h *LatencyHistogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[hdrIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.min.Load()
		if cur != 0 && cur-1 <= v {
			break
		}
		if h.min.CompareAndSwap(cur, v+1) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if cur >= v {
			break
		}
		if h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// Count returns the number of recorded observations.
func (h *LatencyHistogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of recorded values.
func (h *LatencyHistogram) Sum() int64 { return h.sum.Load() }

// Min returns the smallest recorded value (0 when empty).
func (h *LatencyHistogram) Min() int64 {
	v := h.min.Load()
	if v == 0 {
		return 0
	}
	return v - 1
}

// Max returns the largest recorded value (0 when empty).
func (h *LatencyHistogram) Max() int64 { return h.max.Load() }

// Mean returns the arithmetic mean of recorded values (0 when empty).
func (h *LatencyHistogram) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Quantile returns an estimate of the q-quantile (q in [0,1]) as the
// midpoint of the bucket holding the target rank, clamped to the observed
// min/max so sparse histograms do not over-report their bucket width.
func (h *LatencyHistogram) Quantile(q float64) int64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	seen := int64(0)
	for i := 0; i < hdrBuckets; i++ {
		seen += h.counts[i].Load()
		if seen >= rank {
			lo, hi := BucketLower(i), BucketUpper(i)
			mid := lo + (hi-lo)/2
			if min := h.Min(); mid < min {
				mid = min
			}
			if max := h.Max(); mid > max {
				mid = max
			}
			return mid
		}
	}
	return h.Max()
}

// Merge adds o's observations into h (bucket-wise; both keep recording).
// Merging is associative and commutative, so per-node histograms can be
// rolled up in any order.
func (h *LatencyHistogram) Merge(o *LatencyHistogram) {
	if o == nil {
		return
	}
	for i := 0; i < hdrBuckets; i++ {
		if c := o.counts[i].Load(); c != 0 {
			h.counts[i].Add(c)
		}
	}
	h.count.Add(o.count.Load())
	h.sum.Add(o.sum.Load())
	if om := o.min.Load(); om != 0 {
		for {
			cur := h.min.Load()
			if cur != 0 && cur <= om {
				break
			}
			if h.min.CompareAndSwap(cur, om) {
				break
			}
		}
	}
	if om := o.max.Load(); om != 0 {
		for {
			cur := h.max.Load()
			if cur >= om {
				break
			}
			if h.max.CompareAndSwap(cur, om) {
				break
			}
		}
	}
}

// BucketCount returns the observation count of bucket i.
func (h *LatencyHistogram) BucketCount(i int) int64 {
	if i < 0 || i >= hdrBuckets {
		return 0
	}
	return h.counts[i].Load()
}

// NonEmptyBuckets returns the indices of buckets holding observations, in
// ascending order — the exporter walks these instead of all 488 slots.
func (h *LatencyHistogram) NonEmptyBuckets() []int {
	var out []int
	for i := 0; i < hdrBuckets; i++ {
		if h.counts[i].Load() != 0 {
			out = append(out, i)
		}
	}
	return out
}
