package metrics

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry is a named collection of latency histograms, gauges and
// counters with Prometheus text exposition. It is the aggregation point
// the observability layer (internal/obs) feeds: one histogram per
// recovery phase, gauges for point-in-time state, counters for totals.
// All accessors are concurrency-safe and create the instrument on first
// use, so recording sites never need registration ceremony.
type Registry struct {
	mu       sync.Mutex
	hists    map[string]*LatencyHistogram
	gauges   map[string]*Gauge
	counters map[string]*Counter
	help     map[string]string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		hists:    make(map[string]*LatencyHistogram),
		gauges:   make(map[string]*Gauge),
		counters: make(map[string]*Counter),
		help:     make(map[string]string),
	}
}

// SetHelp attaches # HELP text to a metric name, overriding the built-in
// catalog (help.go). Standard SR3 metrics never need this.
func (r *Registry) SetHelp(name, text string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.help[name] = text
}

// helpFor resolves the help text for a metric: explicit SetHelp first,
// then the built-in catalog (mu held).
func (r *Registry) helpForLocked(name string) string {
	if h, ok := r.help[name]; ok {
		return h
	}
	return catalogHelp(name)
}

// Histogram returns the named latency histogram, creating it on first use.
func (r *Registry) Histogram(name string) *LatencyHistogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &LatencyHistogram{}
		r.hists[name] = h
	}
	return h
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// HistogramNames lists the registered histogram names, sorted.
func (r *Registry) HistogramNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.hists))
	for n := range r.hists {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Gauge is a settable point-in-time value.
type Gauge struct{ v atomic.Int64 }

// Set stores the gauge value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add increments the gauge.
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// SetMax raises the gauge to v when v is greater — an atomic high-water
// mark (input-channel high-water gauges use this on the hot path).
func (g *Gauge) SetMax(v int64) {
	for {
		cur := g.v.Load()
		if cur >= v {
			return
		}
		if g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value reads the gauge.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Counter is a monotonically increasing total.
type Counter struct{ v atomic.Int64 }

// Add increments the counter.
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value reads the counter.
func (c *Counter) Value() int64 { return c.v.Load() }

// promName sanitizes a metric name into the Prometheus charset
// [a-zA-Z0-9_:], mapping '.', '-', '/' and spaces to '_'.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// regSnapshot is a point-in-time view of a registry's instruments plus
// their help text, taken under the lock and rendered outside it. The
// cluster exporter (cluster.go) snapshots every member registry through
// the same path.
type regSnapshot struct {
	histNames, gaugeNames, counterNames []string
	hists                               map[string]*LatencyHistogram
	gauges                              map[string]*Gauge
	counters                            map[string]*Counter
	help                                map[string]string
}

func (r *Registry) snapshot() regSnapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := regSnapshot{
		histNames:    make([]string, 0, len(r.hists)),
		gaugeNames:   make([]string, 0, len(r.gauges)),
		counterNames: make([]string, 0, len(r.counters)),
		hists:        make(map[string]*LatencyHistogram, len(r.hists)),
		gauges:       make(map[string]*Gauge, len(r.gauges)),
		counters:     make(map[string]*Counter, len(r.counters)),
		help:         make(map[string]string, len(r.hists)+len(r.gauges)+len(r.counters)),
	}
	for n, h := range r.hists {
		s.histNames = append(s.histNames, n)
		s.hists[n] = h
		s.help[n] = r.helpForLocked(n)
	}
	for n, g := range r.gauges {
		s.gaugeNames = append(s.gaugeNames, n)
		s.gauges[n] = g
		s.help[n] = r.helpForLocked(n)
	}
	for n, c := range r.counters {
		s.counterNames = append(s.counterNames, n)
		s.counters[n] = c
		s.help[n] = r.helpForLocked(n)
	}
	sort.Strings(s.histNames)
	sort.Strings(s.gaugeNames)
	sort.Strings(s.counterNames)
	return s
}

// writeMeta emits the # HELP (when known) and # TYPE lines for a metric.
func writeMeta(w io.Writer, pn, help, typ string) error {
	if help != "" {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", pn, escapeHelp(help)); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "# TYPE %s %s\n", pn, typ)
	return err
}

// writeHistogramProm renders one histogram's sample lines. labels is
// either empty or a rendered label pair list without braces (e.g.
// `node="a1b2"`) that is joined with the le label on bucket lines.
func writeHistogramProm(w io.Writer, pn, labels string, h *LatencyHistogram) error {
	sep := ""
	if labels != "" {
		sep = labels + ","
	}
	cum := int64(0)
	for _, i := range h.NonEmptyBuckets() {
		cum += h.BucketCount(i)
		le := float64(BucketUpper(i)) / 1e9
		if _, err := fmt.Fprintf(w, "%s_bucket{%sle=%q} %d\n", pn, sep, formatLe(le), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n", pn, sep, h.Count()); err != nil {
		return err
	}
	suffix := ""
	if labels != "" {
		suffix = "{" + labels + "}"
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %g\n", pn, suffix, float64(h.Sum())/1e9); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", pn, suffix, h.Count())
	return err
}

// writeSampleProm renders one gauge/counter sample line.
func writeSampleProm(w io.Writer, pn, labels string, v int64) error {
	suffix := ""
	if labels != "" {
		suffix = "{" + labels + "}"
	}
	_, err := fmt.Fprintf(w, "%s%s %d\n", pn, suffix, v)
	return err
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4). Latency histograms are emitted as native
// Prometheus histograms with second-valued cumulative le buckets (values
// are recorded in nanoseconds); gauges and counters as plain samples.
// Metrics with known descriptions (help.go, SetHelp) get # HELP lines.
func (r *Registry) WritePrometheus(w io.Writer) error {
	s := r.snapshot()
	for _, name := range s.histNames {
		pn := promName(name)
		if err := writeMeta(w, pn, s.help[name], "histogram"); err != nil {
			return err
		}
		if err := writeHistogramProm(w, pn, "", s.hists[name]); err != nil {
			return err
		}
	}
	for _, name := range s.gaugeNames {
		pn := promName(name)
		if err := writeMeta(w, pn, s.help[name], "gauge"); err != nil {
			return err
		}
		if err := writeSampleProm(w, pn, "", s.gauges[name].Value()); err != nil {
			return err
		}
	}
	for _, name := range s.counterNames {
		pn := promName(name)
		if err := writeMeta(w, pn, s.help[name], "counter"); err != nil {
			return err
		}
		if err := writeSampleProm(w, pn, "", s.counters[name].Value()); err != nil {
			return err
		}
	}
	return nil
}

// formatLe renders a bucket bound compactly (Prometheus just needs a
// parseable float; trailing zeros add noise at 488 potential buckets).
func formatLe(v float64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.9f", v), "0"), ".")
}
