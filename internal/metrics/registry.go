package metrics

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry is a named collection of latency histograms, gauges and
// counters with Prometheus text exposition. It is the aggregation point
// the observability layer (internal/obs) feeds: one histogram per
// recovery phase, gauges for point-in-time state, counters for totals.
// All accessors are concurrency-safe and create the instrument on first
// use, so recording sites never need registration ceremony.
type Registry struct {
	mu       sync.Mutex
	hists    map[string]*LatencyHistogram
	gauges   map[string]*Gauge
	counters map[string]*Counter
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		hists:    make(map[string]*LatencyHistogram),
		gauges:   make(map[string]*Gauge),
		counters: make(map[string]*Counter),
	}
}

// Histogram returns the named latency histogram, creating it on first use.
func (r *Registry) Histogram(name string) *LatencyHistogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &LatencyHistogram{}
		r.hists[name] = h
	}
	return h
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// HistogramNames lists the registered histogram names, sorted.
func (r *Registry) HistogramNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.hists))
	for n := range r.hists {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Gauge is a settable point-in-time value.
type Gauge struct{ v atomic.Int64 }

// Set stores the gauge value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add increments the gauge.
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Value reads the gauge.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Counter is a monotonically increasing total.
type Counter struct{ v atomic.Int64 }

// Add increments the counter.
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value reads the counter.
func (c *Counter) Value() int64 { return c.v.Load() }

// promName sanitizes a metric name into the Prometheus charset
// [a-zA-Z0-9_:], mapping '.', '-', '/' and spaces to '_'.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4). Latency histograms are emitted as native
// Prometheus histograms with second-valued cumulative le buckets (values
// are recorded in nanoseconds); gauges and counters as plain samples.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	histNames := make([]string, 0, len(r.hists))
	for n := range r.hists {
		histNames = append(histNames, n)
	}
	gaugeNames := make([]string, 0, len(r.gauges))
	for n := range r.gauges {
		gaugeNames = append(gaugeNames, n)
	}
	counterNames := make([]string, 0, len(r.counters))
	for n := range r.counters {
		counterNames = append(counterNames, n)
	}
	hists := make(map[string]*LatencyHistogram, len(r.hists))
	for n, h := range r.hists {
		hists[n] = h
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for n, g := range r.gauges {
		gauges[n] = g
	}
	counters := make(map[string]*Counter, len(r.counters))
	for n, c := range r.counters {
		counters[n] = c
	}
	r.mu.Unlock()

	sort.Strings(histNames)
	sort.Strings(gaugeNames)
	sort.Strings(counterNames)

	for _, name := range histNames {
		h := hists[name]
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", pn); err != nil {
			return err
		}
		cum := int64(0)
		for _, i := range h.NonEmptyBuckets() {
			cum += h.BucketCount(i)
			le := float64(BucketUpper(i)) / 1e9
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", pn, formatLe(le), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", pn, h.Count()); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum %g\n", pn, float64(h.Sum())/1e9); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_count %d\n", pn, h.Count()); err != nil {
			return err
		}
	}
	for _, name := range gaugeNames {
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", pn, pn, gauges[name].Value()); err != nil {
			return err
		}
	}
	for _, name := range counterNames {
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", pn, pn, counters[name].Value()); err != nil {
			return err
		}
	}
	return nil
}

// formatLe renders a bucket bound compactly (Prometheus just needs a
// parseable float; trailing zeros add noise at 488 potential buckets).
func formatLe(v float64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.9f", v), "0"), ".")
}
