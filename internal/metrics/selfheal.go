package metrics

// SelfHealStats aggregates the self-healing pipeline's timing samples
// across many induced failures: detection latency (kill → verdict at the
// supervisor), recovery latency (kill → state rebuilt) and MTTR
// (kill → replication restored to r). The package stays free of internal
// imports, so samples arrive as plain milliseconds.
type SelfHealStats struct {
	DetectionMs []float64
	RecoveryMs  []float64
	MTTRMs      []float64
	// Failures counts induced deaths that produced no successful
	// recovery event (supervision gap — must stay 0 in a healthy run).
	Failures int
}

// AddSample folds one handled death into the aggregate.
func (s *SelfHealStats) AddSample(detectionMs, recoveryMs, mttrMs float64) {
	s.DetectionMs = append(s.DetectionMs, detectionMs)
	s.RecoveryMs = append(s.RecoveryMs, recoveryMs)
	s.MTTRMs = append(s.MTTRMs, mttrMs)
}

// AddFailure records an induced death the supervisor never healed.
func (s *SelfHealStats) AddFailure() { s.Failures++ }

// Samples returns how many healed deaths were aggregated.
func (s SelfHealStats) Samples() int { return len(s.MTTRMs) }

// summarize returns (mean, p50, p99, max) for one series, zeros when empty.
func summarize(xs []float64) (mean, p50, p99, max float64) {
	if len(xs) == 0 {
		return 0, 0, 0, 0
	}
	mean, _ = Mean(xs)
	p50, _ = Percentile(xs, 50)
	p99, _ = Percentile(xs, 99)
	for _, x := range xs {
		if x > max {
			max = x
		}
	}
	return mean, p50, p99, max
}

// DetectionSummary returns (mean, p50, p99, max) detection latency in ms.
func (s SelfHealStats) DetectionSummary() (mean, p50, p99, max float64) {
	return summarize(s.DetectionMs)
}

// RecoverySummary returns (mean, p50, p99, max) recovery latency in ms.
func (s SelfHealStats) RecoverySummary() (mean, p50, p99, max float64) {
	return summarize(s.RecoveryMs)
}

// MTTRSummary returns (mean, p50, p99, max) kill→reprotected time in ms.
func (s SelfHealStats) MTTRSummary() (mean, p50, p99, max float64) {
	return summarize(s.MTTRMs)
}
