package metrics

import (
	"io"
	"sort"
	"sync"
)

// ClusterRegistry aggregates per-node registries into one cluster-wide
// Prometheus scrape: every member's samples are emitted under a
// node="<name>" label, with # HELP / # TYPE written once per metric
// family. One scrape of one endpoint then shows the whole simnet (or
// TCP) cluster — runtime, ring and recovery families side by side.
//
// Merged() additionally rolls all members up into a single unlabeled
// registry: HDR histograms merge bucket-wise (associative and
// commutative, hdr.go), counters and gauges sum.
type ClusterRegistry struct {
	mu    sync.Mutex
	order []string // registration order, for deterministic iteration
	regs  map[string]*Registry
	help  map[string]string
}

// NewClusterRegistry returns an empty cluster registry.
func NewClusterRegistry() *ClusterRegistry {
	return &ClusterRegistry{
		regs: make(map[string]*Registry),
		help: make(map[string]string),
	}
}

// Register attaches a member registry under the node label. Registering
// an existing label replaces its registry (a restarted node re-attaches).
func (c *ClusterRegistry) Register(node string, reg *Registry) {
	if reg == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.regs[node]; !ok {
		c.order = append(c.order, node)
	}
	c.regs[node] = reg
}

// Node returns the member registry for the label, creating and
// registering an empty one on first use — the create-on-first-use idiom
// of Registry lifted to whole nodes.
func (c *ClusterRegistry) Node(node string) *Registry {
	c.mu.Lock()
	defer c.mu.Unlock()
	reg, ok := c.regs[node]
	if !ok {
		reg = NewRegistry()
		c.regs[node] = reg
		c.order = append(c.order, node)
	}
	return reg
}

// Unregister detaches a member (a decommissioned node).
func (c *ClusterRegistry) Unregister(node string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.regs[node]; !ok {
		return
	}
	delete(c.regs, node)
	for i, n := range c.order {
		if n == node {
			c.order = append(c.order[:i], c.order[i+1:]...)
			break
		}
	}
}

// Nodes lists the member labels in registration order.
func (c *ClusterRegistry) Nodes() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.order...)
}

// SetHelp attaches # HELP text to a metric family in the cluster scrape,
// overriding the built-in catalog.
func (c *ClusterRegistry) SetHelp(name, text string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.help[name] = text
}

// members snapshots the labels and registries in label-sorted order.
func (c *ClusterRegistry) members() ([]string, []*Registry, map[string]string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	nodes := append([]string(nil), c.order...)
	sort.Strings(nodes)
	regs := make([]*Registry, len(nodes))
	for i, n := range nodes {
		regs[i] = c.regs[n]
	}
	help := make(map[string]string, len(c.help))
	for k, v := range c.help {
		help[k] = v
	}
	return nodes, regs, help
}

// Merged rolls every member up into one fresh unlabeled registry:
// histograms via bucket-wise Merge, counters and gauges by summation.
// The result is a snapshot — it does not track later recording.
func (c *ClusterRegistry) Merged() *Registry {
	_, regs, _ := c.members()
	out := NewRegistry()
	for _, reg := range regs {
		s := reg.snapshot()
		for _, name := range s.histNames {
			out.Histogram(name).Merge(s.hists[name])
		}
		for _, name := range s.gaugeNames {
			out.Gauge(name).Add(s.gauges[name].Value())
		}
		for _, name := range s.counterNames {
			out.Counter(name).Add(s.counters[name].Value())
		}
	}
	return out
}

// WritePrometheus renders every member's instruments as one text
// exposition, each sample labeled with its node. Family metadata
// (# HELP / # TYPE) is emitted once per metric name; a name used with
// conflicting instrument types by different nodes keeps the first type
// seen and skips the conflicting series.
func (c *ClusterRegistry) WritePrometheus(w io.Writer) error {
	nodes, regs, clusterHelp := c.members()
	snaps := make([]regSnapshot, len(regs))
	for i, reg := range regs {
		snaps[i] = reg.snapshot()
	}

	// Union of metric names per type, with first-seen-type conflict
	// resolution keyed on the sanitized name (what the scrape exposes).
	typeOf := make(map[string]string)
	helpOf := make(map[string]string)
	var names []string
	note := func(name, typ, help string) {
		pn := promName(name)
		if _, ok := typeOf[pn]; ok {
			return
		}
		typeOf[pn] = typ
		if h, ok := clusterHelp[name]; ok {
			help = h
		}
		helpOf[pn] = help
		names = append(names, pn)
	}
	for _, s := range snaps {
		for _, n := range s.histNames {
			note(n, "histogram", s.help[n])
		}
		for _, n := range s.gaugeNames {
			note(n, "gauge", s.help[n])
		}
		for _, n := range s.counterNames {
			note(n, "counter", s.help[n])
		}
	}
	sort.Strings(names)

	for _, pn := range names {
		typ := typeOf[pn]
		if err := writeMeta(w, pn, helpOf[pn], typ); err != nil {
			return err
		}
		for i, s := range snaps {
			labels := `node="` + escapeLabelValue(nodes[i]) + `"`
			switch typ {
			case "histogram":
				for _, n := range s.histNames {
					if promName(n) == pn {
						if err := writeHistogramProm(w, pn, labels, s.hists[n]); err != nil {
							return err
						}
					}
				}
			case "gauge":
				for _, n := range s.gaugeNames {
					if promName(n) == pn {
						if err := writeSampleProm(w, pn, labels, s.gauges[n].Value()); err != nil {
							return err
						}
					}
				}
			case "counter":
				for _, n := range s.counterNames {
					if promName(n) == pn {
						if err := writeSampleProm(w, pn, labels, s.counters[n].Value()); err != nil {
							return err
						}
					}
				}
			}
		}
	}
	return nil
}

// PrometheusWriter is anything that renders itself as Prometheus text —
// a single Registry or a whole ClusterRegistry. The metrics HTTP server
// (internal/obs) serves either.
type PrometheusWriter interface {
	WritePrometheus(w io.Writer) error
}

var (
	_ PrometheusWriter = (*Registry)(nil)
	_ PrometheusWriter = (*ClusterRegistry)(nil)
)
