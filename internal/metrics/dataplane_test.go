package metrics

import (
	"math"
	"testing"
)

func TestDataPlaneGoodput(t *testing.T) {
	s := DataPlaneStats{BytesMoved: 64_000_000, Seconds: 2}
	if got := s.GoodputMBps(); got != 32 {
		t.Fatalf("goodput %v, want 32", got)
	}
	if got := (DataPlaneStats{BytesMoved: 100}).GoodputMBps(); got != 0 {
		t.Fatalf("zero-duration goodput %v", got)
	}
	if got := (DataPlaneStats{Seconds: -1, BytesMoved: 100}).GoodputMBps(); got != 0 {
		t.Fatalf("negative-duration goodput %v", got)
	}
}

func TestDataPlanePoolHitRate(t *testing.T) {
	if got := (DataPlaneStats{}).PoolHitRate(); got != 0 {
		t.Fatalf("empty rate %v", got)
	}
	s := DataPlaneStats{PoolHits: 9, PoolMisses: 3}
	if got := s.PoolHitRate(); got != 0.75 {
		t.Fatalf("rate %v", got)
	}
}

func TestDataPlaneMerge(t *testing.T) {
	a := DataPlaneStats{BytesMoved: 10, Seconds: 1, FetchConcurrency: 4, PoolHits: 1, PoolMisses: 2}
	b := DataPlaneStats{BytesMoved: 20, Seconds: 2, FetchConcurrency: 8, PoolHits: 3, PoolMisses: 4}
	m := a.Merge(b)
	if m.BytesMoved != 30 || m.Seconds != 3 || m.PoolHits != 4 || m.PoolMisses != 6 {
		t.Fatalf("merge %+v", m)
	}
	if m.FetchConcurrency != 8 {
		t.Fatalf("concurrency %d, want max 8", m.FetchConcurrency)
	}
	if n := b.Merge(a); n.FetchConcurrency != 8 {
		t.Fatalf("merge not symmetric on concurrency: %d", n.FetchConcurrency)
	}
}

func TestDataPlaneSpeedup(t *testing.T) {
	seq := DataPlaneStats{BytesMoved: 64_000_000, Seconds: 4}
	fast := DataPlaneStats{BytesMoved: 64_000_000, Seconds: 1}
	if got := fast.Speedup(seq); math.Abs(got-4) > 1e-9 {
		t.Fatalf("speedup %v, want 4", got)
	}
	if got := fast.Speedup(DataPlaneStats{}); got != 0 {
		t.Fatalf("speedup vs empty baseline %v", got)
	}
}
