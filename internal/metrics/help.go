package metrics

import "strings"

// helpCatalog maps the standard SR3 metric names to their # HELP text.
// Recording sites create instruments by name with no registration
// ceremony, so descriptions live here (plus Registry.SetHelp for ad-hoc
// metrics) instead of at every call site.
var helpCatalog = map[string]string{
	// Stream runtime (internal/stream), runtime-wide families.
	"sr3_stream_tuples_in_total":       "Tuples enqueued to task input channels across the runtime.",
	"sr3_stream_tuples_out_total":      "Tuples emitted by bolt executors.",
	"sr3_stream_acks_total":            "Tuples fully processed (acked) by bolt executors.",
	"sr3_stream_replays_total":         "Tuples re-executed from input logs during task recovery.",
	"sr3_stream_spout_tuples_total":    "Tuples produced by spouts.",
	"sr3_stream_proc_ns":               "Per-tuple bolt processing latency in nanoseconds.",
	"sr3_stream_emit_blocked_ns_total": "Nanoseconds emitters spent blocked on full input channels (backpressure).",
	"sr3_stream_execute_errors_total":  "Bolt Execute calls that returned an error.",
	"sr3_stream_shed_total":            "Data tuples dropped by queue policy or degraded-mode admission control.",
	"sr3_stream_degraded":              "1 while the runtime is in degraded-service mode (shedding ingest), else 0.",
	"sr3_stream_emit_block_wait_ns":    "Per-push wait on a full bounded task queue in nanoseconds (backpressure histogram).",
	// DHT overlay (internal/dht).
	"sr3_dht_route_hops":              "Overlay hops per routed request, recorded at the origin node.",
	"sr3_dht_routes_total":            "Routed requests originated by this node.",
	"sr3_dht_route_failures_total":    "Routed requests that exhausted every forwarding attempt.",
	"sr3_dht_leaf_learned_total":      "Nodes newly admitted to the leaf-set candidate pool (churn in).",
	"sr3_dht_leaf_forgotten_total":    "Nodes purged from local state after being observed dead (churn out).",
	"sr3_dht_leaf_repairs_total":      "Leaf-set repair requests issued to refill depleted halves.",
	"sr3_dht_stored_bytes":            "Bytes of KV state (root copies and replicas) held by this node.",
	"sr3_dht_stored_keys":             "KV records (state shards, placements) held by this node.",
	"sr3_scribe_repairs_total":        "Multicast-tree re-join attempts after a parent death.",
	"sr3_net_dials_total":             "TCP dial attempts (including retries).",
	"sr3_net_dial_retries_total":      "TCP dial attempts beyond the first for one call.",
	"sr3_net_dial_failures_total":     "Calls whose dial retry policy was exhausted.",
	"sr3_net_io_timeouts_total":       "Request/reply exchanges aborted by the I/O deadline.",
	"sr3_net_calls_total":             "Request/reply calls issued through the TCP transport.",
	"sr3_net_breaker_fastfails_total": "Outbound calls rejected locally by an open circuit breaker (no dial attempted).",
	"sr3_net_breaker_opens_total":     "Circuit-breaker open transitions (consecutive transport failures toward a peer).",
	"sr3_net_retry_suppressed_total":  "Dial retries refused by the transport's retry budget (empty token bucket).",
	"sr3_net_overload_rejected_total": "Inbound ingest-class requests rejected while this node was in degraded-service mode.",
	"sr3_flight_events_total":         "Events recorded by the flight recorder.",
	"sr3_flight_events_dropped_total": "Flight-recorder events overwritten by ring-buffer wraparound.",
	// Cluster node liveness (internal/cluster), present on every member
	// so a federated scrape always carries at least these families.
	"sr3_node_up":          "1 while this sr3node process is running (liveness baseline for federation).",
	"sr3_node_incarnation": "Monotonic incarnation of this member name; bumps on crash-and-rejoin.",
}

// helpRule describes one generated metric family whose names embed an
// identity (a task key, a message kind, a phase): any name matching the
// prefix and suffix gets the family's help text.
type helpRule struct {
	prefix, suffix, help string
}

var helpRules = []helpRule{
	{"sr3_stream_task_", "_tuples_in_total", "Tuples enqueued to this task's input channel."},
	{"sr3_stream_task_", "_tuples_out_total", "Tuples emitted by this task."},
	{"sr3_stream_task_", "_acks_total", "Tuples fully processed (acked) by this task."},
	{"sr3_stream_task_", "_replays_total", "Tuples re-executed from this task's input log during recovery."},
	{"sr3_stream_task_", "_proc_ns", "Per-tuple processing latency of this task in nanoseconds."},
	{"sr3_stream_task_", "_queue_depth", "Input-channel depth sampled at the last enqueue (backpressure signal)."},
	{"sr3_stream_task_", "_queue_high_water", "Highest input-channel depth observed since start."},
	{"sr3_stream_task_", "_state_bytes", "Size of this task's last saved state snapshot in bytes."},
	{"sr3_stream_task_", "_emit_blocked_ns_total", "Nanoseconds senders spent blocked on this task's full input channel."},
	{"sr3_stream_task_", "_shed_total", "Data tuples dropped at this task's queue by shed policy or degraded-mode admission."},
	{"sr3_stream_task_", "_emit_block_wait_ns", "Per-push wait on this task's full bounded queue in nanoseconds."},
	{"sr3_dht_msg_", "_total", "Inbound overlay messages of this kind handled by the node."},
	{"sr3_scribe_msg_", "_total", "Inbound Scribe multicast messages of this kind handled by the layer."},
	{"sr3_phase_", "_ns", "Recovery-pipeline phase latency in nanoseconds (one histogram per phase)."},
	{"sr3_phase_", "_total", "Recovery-pipeline phase completions."},
	// Cross-process flow edges (internal/cluster): the name embeds the
	// <from>__<to> component edge; recorded at the ingress node.
	{"sr3_cluster_edge_hop_ns_", "", "Wire latency of batch frames on this component edge (origin send timestamp to ingress receive) in nanoseconds."},
	{"sr3_cluster_edge_lag_ns_", "", "End-to-end event-time lag of the oldest tuple per batch frame on this component edge in nanoseconds."},
	{"sr3_cluster_edge_", "_frames_total", "Batch frames received on this component edge."},
	{"sr3_cluster_edge_", "_tuples_total", "Tuples received on this component edge."},
}

// catalogHelp resolves the built-in help text for a metric name, or "".
func catalogHelp(name string) string {
	if h, ok := helpCatalog[name]; ok {
		return h
	}
	for _, r := range helpRules {
		if strings.HasPrefix(name, r.prefix) && strings.HasSuffix(name, r.suffix) {
			return r.help
		}
	}
	return ""
}

// escapeHelp escapes a # HELP line body per the text exposition format
// (backslash and newline are the only escaped characters).
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabelValue escapes a label value per the text exposition format.
func escapeLabelValue(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
