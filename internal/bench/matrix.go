// Fault-recovery benchmark matrix: scenarios × mechanisms × load levels,
// each cell a fresh stream topology under sustained or burst ingest with
// a seeded fault injected mid-run. Every cell reports recovery latency,
// event-time lag at the sink, and an exactly-once verdict from a
// sequence-numbered dedupe checker — the "which mechanism survives which
// failure at what cost" table the paper's evaluation gestures at but
// never commits to numbers.
package bench

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"sr3/internal/checkpoint"
	"sr3/internal/detector"
	"sr3/internal/dht"
	"sr3/internal/id"
	"sr3/internal/metrics"
	"sr3/internal/obs"
	"sr3/internal/recovery"
	"sr3/internal/simnet"
	"sr3/internal/state"
	"sr3/internal/stream"
	"sr3/internal/supervise"
)

// MatrixSchema versions the committed BENCH_matrix.json artifact.
const MatrixSchema = "sr3.bench.matrix/v1"

// Matrix scenario names.
const (
	ScenarioCrash       = "crash"              // owner node + task crash
	ScenarioCrash2      = "crash-correlated"   // owner + replica holder crash together
	ScenarioPartition   = "partition-recovery" // partition fires mid-collection, heals
	ScenarioSlowNode    = "slow-node"          // gray failure: degraded holder, supervised
	ScenarioFlakyLink   = "flaky-link"         // jittered, lossy links under recovery traffic
	ScenarioCrashIngest = "crash-ingest"       // crash under sustained ingest
)

// Matrix mechanism names.
const (
	MechSR3Star     = "sr3-star"
	MechSR3Line     = "sr3-line"
	MechSR3Tree     = "sr3-tree"
	MechCheckpoint  = "checkpoint"
	MechReplication = "replication"
	MechFP4S        = "fp4s"
)

// MatrixCellSpec names one cell to run.
type MatrixCellSpec struct {
	Scenario  string `json:"scenario"`
	Mechanism string `json:"mechanism"`
	// Load is the ingest profile: "burst" pushes batches around the
	// fault; "sustained-<n>k" streams n×1000 tuples/s through it.
	Load string `json:"load"`
}

// MatrixCell is one measured cell of the matrix.
type MatrixCell struct {
	Scenario     string  `json:"scenario"`
	Mechanism    string  `json:"mechanism"`
	Load         string  `json:"load"`
	Tuples       int     `json:"tuples"`
	TuplesPerSec float64 `json:"tuples_per_sec"`
	// DetectMs is kill → verdict at the supervisor (0 for cells whose
	// fault is triggered manually rather than detected).
	DetectMs  float64 `json:"detect_ms"`
	RecoverMs float64 `json:"recover_ms"`
	// Event-time lag observed at the sink (ms).
	LagP50Ms float64 `json:"lag_p50_ms"`
	LagP99Ms float64 `json:"lag_p99_ms"`
	LagMaxMs float64 `json:"lag_max_ms"`
	// ExactlyOnce = no sequence missing at the sink and the recovered
	// operator state byte-exact. Duplicates counts replay re-deliveries
	// the dedupe absorbed (at-least-once delivery + dedupe = the
	// exactly-once effect).
	ExactlyOnce bool  `json:"exactly_once"`
	Duplicates  int64 `json:"duplicates"`
	Missing     int64 `json:"missing"`
	StateExact  bool  `json:"state_exact"`
	// DegradedPath marks cells where recovery routed around a
	// slow-but-alive node instead of killing it; SpuriousKill marks the
	// failure mode the gray tier exists to prevent.
	DegradedPath bool   `json:"degraded_path"`
	SpuriousKill bool   `json:"spurious_kill"`
	Notes        string `json:"notes,omitempty"`
	Error        string `json:"error,omitempty"`
}

// MatrixReport is the committed artifact.
type MatrixReport struct {
	Schema string       `json:"schema"`
	Cells  []MatrixCell `json:"cells"`
}

// JSON renders the report for the committed artifact.
func (r *MatrixReport) JSON() ([]byte, error) {
	blob, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(blob, '\n'), nil
}

// ValidateMatrix parses and schema-checks a committed artifact.
func ValidateMatrix(blob []byte) (*MatrixReport, error) {
	var r MatrixReport
	if err := json.Unmarshal(blob, &r); err != nil {
		return nil, fmt.Errorf("matrix artifact: %w", err)
	}
	if r.Schema != MatrixSchema {
		return nil, fmt.Errorf("matrix artifact: schema %q, want %q", r.Schema, MatrixSchema)
	}
	if len(r.Cells) == 0 {
		return nil, fmt.Errorf("matrix artifact: no cells")
	}
	for i, c := range r.Cells {
		if c.Scenario == "" || c.Mechanism == "" || c.Load == "" {
			return nil, fmt.Errorf("matrix artifact: cell %d missing scenario/mechanism/load", i)
		}
		if c.Error != "" {
			continue
		}
		if c.Tuples <= 0 {
			return nil, fmt.Errorf("matrix artifact: cell %s/%s has no tuples", c.Scenario, c.Mechanism)
		}
		if c.RecoverMs < 0 || c.LagP99Ms < c.LagP50Ms {
			return nil, fmt.Errorf("matrix artifact: cell %s/%s has inconsistent latencies", c.Scenario, c.Mechanism)
		}
	}
	return &r, nil
}

// Format renders the report as an aligned table.
func (r *MatrixReport) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fault-recovery matrix (%d cells)\n", len(r.Cells))
	fmt.Fprintf(&b, "%-19s %-12s %-13s %7s %8s %9s %9s %9s %6s %5s %5s %5s\n",
		"scenario", "mechanism", "load", "tuples", "detect", "recover", "lag-p99", "lag-max", "exact", "dup", "miss", "note")
	for _, c := range r.Cells {
		note := c.Notes
		if c.Error != "" {
			note = "ERR " + c.Error
		}
		fmt.Fprintf(&b, "%-19s %-12s %-13s %7d %6.1fms %7.1fms %7.1fms %7.1fms %6v %5d %5d %s\n",
			c.Scenario, c.Mechanism, c.Load, c.Tuples, c.DetectMs, c.RecoverMs,
			c.LagP99Ms, c.LagMaxMs, c.ExactlyOnce, c.Duplicates, c.Missing, note)
	}
	b.WriteString("(detect = fault→verdict, 0 when manually triggered; exact = no loss + state byte-exact; dup = replay re-deliveries absorbed by dedupe)\n")
	return b.String()
}

// MatrixPreset returns the cell list for a named preset. "tiny" is the
// CI smoke subset; "full" is the committed matrix.
func MatrixPreset(preset string) ([]MatrixCellSpec, error) {
	sr3 := []string{MechSR3Star, MechSR3Line, MechSR3Tree}
	all := []string{MechSR3Star, MechSR3Line, MechSR3Tree, MechCheckpoint, MechReplication, MechFP4S}
	cells := func(scenario, load string, mechs []string) []MatrixCellSpec {
		out := make([]MatrixCellSpec, len(mechs))
		for i, m := range mechs {
			out[i] = MatrixCellSpec{Scenario: scenario, Mechanism: m, Load: load}
		}
		return out
	}
	switch preset {
	case "tiny":
		return []MatrixCellSpec{
			{Scenario: ScenarioCrash, Mechanism: MechSR3Star, Load: "burst"},
			{Scenario: ScenarioCrash, Mechanism: MechSR3Tree, Load: "burst"},
			{Scenario: ScenarioSlowNode, Mechanism: MechSR3Star, Load: "burst"},
			{Scenario: ScenarioSlowNode, Mechanism: MechSR3Tree, Load: "burst"},
		}, nil
	case "full":
		var out []MatrixCellSpec
		out = append(out, cells(ScenarioCrash, "burst", all)...)
		out = append(out, cells(ScenarioCrash2, "burst", []string{MechSR3Star, MechSR3Line, MechSR3Tree, MechFP4S})...)
		out = append(out, cells(ScenarioPartition, "burst", sr3)...)
		out = append(out, cells(ScenarioSlowNode, "burst", sr3)...)
		out = append(out, cells(ScenarioFlakyLink, "burst", []string{MechSR3Star, MechSR3Line, MechSR3Tree, MechFP4S})...)
		out = append(out, cells(ScenarioCrashIngest, "sustained-2k", all)...)
		out = append(out, cells(ScenarioCrashIngest, "sustained-8k", []string{MechSR3Star, MechSR3Tree})...)
		return out, nil
	default:
		return nil, fmt.Errorf("matrix: unknown preset %q (tiny, full)", preset)
	}
}

// MatrixSweep runs every cell sequentially — each on a fresh cluster, so
// chaos from one cell cannot leak into the next. A cell failure lands in
// its Error field rather than aborting the sweep.
func MatrixSweep(specs []MatrixCellSpec) *MatrixReport {
	report := &MatrixReport{Schema: MatrixSchema}
	for i, spec := range specs {
		cell, err := RunMatrixCell(spec, int64(1000+37*i))
		if err != nil {
			cell = MatrixCell{Scenario: spec.Scenario, Mechanism: spec.Mechanism, Load: spec.Load, Error: err.Error()}
		}
		report.Cells = append(report.Cells, cell)
	}
	return report
}

// --- cell topology -------------------------------------------------------

const (
	matrixKeys      = 8
	matrixSaveEvery = 64
	matrixShards    = 6
	matrixReplicas  = 2
	matrixRing      = 24
	// Batched-plane knobs shared by the matrix and overload sweeps: small
	// frames so barrier-heavy cells never wait long for a size flush, a
	// sub-millisecond linger so measured lag stays honest.
	matrixBatchSize   = 16
	matrixBatchLinger = 500 * time.Microsecond
)

// seqSpout streams sequence-numbered tuples pushed by the cell driver.
type seqSpout struct{ ch chan stream.Tuple }

func (s *seqSpout) Next() (stream.Tuple, bool) {
	t, ok := <-s.ch
	return t, ok
}

// seqCountBolt is the stateful operator: per-key running counts over a
// snapshot/restore store, pass-through emit so the sink sees every seq.
type seqCountBolt struct{ store *state.MapStore }

func (c *seqCountBolt) Execute(t stream.Tuple, emit stream.Emit) error {
	key := t.StringAt(0)
	n := int64(0)
	if v, ok := c.store.Get(key); ok {
		parsed, err := strconv.ParseInt(string(v), 10, 64)
		if err != nil {
			return err
		}
		n = parsed
	}
	n++
	c.store.Put(key, []byte(strconv.FormatInt(n, 10)))
	emit(stream.Tuple{Values: t.Values, Ts: t.Ts})
	return nil
}

func (c *seqCountBolt) Store() stream.StateStore { return c.store }

// dedupeSink is the exactly-once checker: it records every delivered
// sequence number, counts re-deliveries, and histograms event-time lag
// (first delivery only, so replay does not double-count).
type dedupeSink struct {
	mu   sync.Mutex
	seen map[int64]int64
	dups int64
	lag  metrics.LatencyHistogram
}

func newDedupeSink() *dedupeSink { return &dedupeSink{seen: make(map[int64]int64)} }

func (s *dedupeSink) Execute(t stream.Tuple, _ stream.Emit) error {
	seq := t.IntAt(1)
	s.mu.Lock()
	s.seen[seq]++
	first := s.seen[seq] == 1
	if !first {
		s.dups++
	}
	s.mu.Unlock()
	if first {
		lag := time.Now().UnixMilli() - t.Ts
		if lag < 0 {
			lag = 0
		}
		s.lag.Record(lag)
	}
	return nil
}

// audit reports missing/duplicate sequence numbers against [0, total).
func (s *dedupeSink) audit(total int64) (missing, dups int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for seq := int64(0); seq < total; seq++ {
		if s.seen[seq] == 0 {
			missing++
		}
	}
	return missing, s.dups
}

// matrixCell is the per-cell environment.
type matrixCell struct {
	spec    MatrixCellSpec
	seed    int64
	ring    *dht.Ring // nil for checkpoint/replication
	cluster *recovery.Cluster
	chaos   *simnet.Chaos
	backend stream.StateBackend
	rt      *stream.Runtime
	spout   *seqSpout
	counter *seqCountBolt
	sink    *dedupeSink
	taskKey string
	cell    MatrixCell
}

func matrixMechanism(name string) (recovery.Mechanism, bool) {
	switch name {
	case MechSR3Star:
		return recovery.Star, true
	case MechSR3Line:
		return recovery.Line, true
	case MechSR3Tree:
		return recovery.Tree, true
	default:
		return 0, false
	}
}

// RunMatrixCell builds one fresh environment and measures one cell. The
// seed keeps chaos deterministic per cell.
func RunMatrixCell(spec MatrixCellSpec, seed int64) (MatrixCell, error) {
	env := &matrixCell{
		spec:  spec,
		seed:  seed,
		spout: &seqSpout{ch: make(chan stream.Tuple, 1024)},
		sink:  newDedupeSink(),
		cell:  MatrixCell{Scenario: spec.Scenario, Mechanism: spec.Mechanism, Load: spec.Load},
	}
	if err := env.buildBackend(); err != nil {
		return env.cell, err
	}
	topo := stream.NewTopology("matrix")
	if err := topo.AddSpout("seq", env.spout); err != nil {
		return env.cell, err
	}
	env.counter = &seqCountBolt{store: state.NewMapStore()}
	if err := topo.AddBolt("count", env.counter, 1).Fields("seq", 0).Err(); err != nil {
		return env.cell, err
	}
	if err := topo.AddBolt("sink", env.sink, 1).Global("count").Err(); err != nil {
		return env.cell, err
	}
	rt, err := stream.NewRuntime(topo, stream.Config{
		Backend:         env.backend,
		SaveEveryTuples: matrixSaveEvery,
		// The batched tuple plane runs in every cell: the exactly-once and
		// replay audits below are the proof that batching changes only the
		// rate, never the semantics.
		BatchSize:   matrixBatchSize,
		BatchLinger: matrixBatchLinger,
	})
	if err != nil {
		return env.cell, err
	}
	env.rt = rt
	env.taskKey = stream.TaskKey("matrix", "count", 0)
	rt.Start()

	runErr := env.run()
	if runErr != nil {
		// Unblock Wait even on a failed cell.
		close(env.spout.ch)
		_ = rt.Wait()
		return env.cell, runErr
	}
	close(env.spout.ch)
	if err := rt.Wait(); err != nil {
		return env.cell, err
	}
	env.settle()
	return env.cell, nil
}

func (e *matrixCell) buildBackend() error {
	switch e.spec.Mechanism {
	case MechCheckpoint:
		e.backend = stream.NewCheckpointBackend(checkpoint.NewStore())
		return nil
	case MechReplication:
		e.backend = stream.NewReplicationBackend()
		return nil
	case MechFP4S:
		ring, err := dht.NewRing(dht.DefaultConfig(), e.seed, matrixRing)
		if err != nil {
			return err
		}
		e.ring = ring
		e.chaos = simnet.NewChaos(e.seed)
		ring.Net.SetChaos(e.chaos)
		b, err := stream.NewFP4SBackend(ring, 4, 8)
		if err != nil {
			return err
		}
		e.backend = b
		return nil
	default:
		mech, ok := matrixMechanism(e.spec.Mechanism)
		if !ok {
			return fmt.Errorf("matrix: unknown mechanism %q", e.spec.Mechanism)
		}
		ring, err := dht.NewRing(dht.DefaultConfig(), e.seed, matrixRing)
		if err != nil {
			return err
		}
		e.ring = ring
		e.cluster = recovery.NewCluster(ring)
		e.chaos = simnet.NewChaos(e.seed)
		ring.Net.SetChaos(e.chaos)
		b := stream.NewSR3Backend(e.cluster, matrixShards, matrixReplicas)
		b.Mechanism = mech
		opts := recovery.DefaultOptions()
		opts.FailoverRetries = 6
		opts.RetryBackoff = 15 * time.Millisecond
		b.Options = opts
		e.backend = b
		return nil
	}
}

// pump streams tuples [from, to) into the spout. rate 0 = full speed.
func (e *matrixCell) pump(from, to, rate int) {
	var interval time.Duration
	batch := 1
	if rate > 0 {
		batch = rate / 200
		if batch < 1 {
			batch = 1
		}
		interval = time.Duration(batch) * time.Second / time.Duration(rate)
	}
	for seq := from; seq < to; {
		for i := 0; i < batch && seq < to; i++ {
			e.spout.ch <- stream.Tuple{
				Values: []any{fmt.Sprintf("k%d", seq%matrixKeys), int64(seq)},
				Ts:     time.Now().UnixMilli(),
			}
			seq++
		}
		if interval > 0 {
			time.Sleep(interval)
		}
	}
}

// drain waits for in-flight tuples to clear the topology.
func (e *matrixCell) drain() {
	time.Sleep(20 * time.Millisecond)
	e.rt.Drain()
}

// saveAll snapshots the operator, retrying: under flaky-link chaos a
// scatter can lose a shard message and the save must be re-attempted.
func (e *matrixCell) saveAll() error {
	var err error
	for attempt := 0; attempt < 10; attempt++ {
		if err = e.rt.SaveAll(); err == nil {
			return nil
		}
		time.Sleep(10 * time.Millisecond)
	}
	return fmt.Errorf("matrix save: %w", err)
}

// owner returns the DHT node owning the task's state.
func (e *matrixCell) owner() (id.ID, error) {
	nid, ok := e.ring.ClosestLive(id.HashKey(e.taskKey))
	if !ok {
		return id.ID{}, fmt.Errorf("matrix: no live owner")
	}
	return nid, nil
}

// killAndRecover crashes the backend owner (when there is a ring), kills
// the stream task and drives manual recovery, timing it.
func (e *matrixCell) killAndRecover(extraKills int) error {
	if e.ring != nil {
		owner, err := e.owner()
		if err != nil {
			return err
		}
		e.ring.Fail(owner)
		killed := 0
		for _, nid := range e.ring.SortedLiveByDistance(owner) {
			if killed >= extraKills {
				break
			}
			e.ring.Fail(nid)
			killed++
		}
		e.ring.MaintenanceRound()
	}
	if err := e.rt.Kill("count", 0); err != nil {
		return err
	}
	start := time.Now()
	if err := e.rt.RecoverTask("count", 0); err != nil {
		return err
	}
	e.cell.RecoverMs = float64(time.Since(start)) / float64(time.Millisecond)
	e.cell.Notes = "manual fault trigger"
	return nil
}

// run drives the cell's scenario.
func (e *matrixCell) run() error {
	switch e.spec.Scenario {
	case ScenarioCrash, ScenarioCrash2, ScenarioPartition, ScenarioFlakyLink:
		return e.runBurst()
	case ScenarioSlowNode:
		return e.runSlowNode()
	case ScenarioCrashIngest:
		return e.runIngest()
	default:
		return fmt.Errorf("matrix: unknown scenario %q", e.spec.Scenario)
	}
}

// runBurst is the manual-trigger family: pre-batch, save, fault,
// recover, post-batch.
func (e *matrixCell) runBurst() error {
	const pre, post = 600, 600
	e.cell.Tuples = pre + post
	started := time.Now()

	e.pump(0, pre, 0)
	e.drain()
	if e.spec.Scenario == ScenarioFlakyLink && e.chaos != nil {
		// Arm the flaky links before the save so scatter, fetch and
		// failover all run over jittered, lossy paths.
		prefix := "sr3."
		if e.spec.Mechanism == MechFP4S {
			prefix = "fp4s."
		}
		e.chaos.SetLinkFaults(simnet.LinkFaults{
			DropProb:   0.02,
			DelayProb:  0.5,
			Delay:      1 * time.Millisecond,
			Jitter:     3 * time.Millisecond,
			KindPrefix: prefix,
		})
	}
	if err := e.saveAll(); err != nil {
		return err
	}
	extraKills := 0
	if e.spec.Scenario == ScenarioCrash2 {
		extraKills = 1
		if e.spec.Mechanism == MechFP4S {
			extraKills = 2 // (4,8)-RS shrugs off one loss; make it hurt
		}
	}
	if e.spec.Scenario == ScenarioPartition && e.chaos != nil {
		// The partition fires on the first recovery-collect message —
		// i.e. mid-recovery, not before it — and heals shortly after;
		// failover retries must ride it out.
		trigger := map[string]string{
			MechSR3Star: "sr3.shard.fetchIndex",
			MechSR3Line: "sr3.line.collect",
			MechSR3Tree: "sr3.tree.collect",
		}[e.spec.Mechanism]
		live := e.ring.LiveIDs()
		e.chaos.SchedulePartition(simnet.PartitionSchedule{
			TriggerPrefix: trigger,
			AfterMessages: 1,
			Groups:        [][]id.ID{live[:len(live)/2], live[len(live)/2:]},
			HealAfter:     50 * time.Millisecond,
		})
	}
	if err := e.killAndRecover(extraKills); err != nil {
		return err
	}
	if e.spec.Scenario == ScenarioPartition {
		stats := e.chaos.Stats()
		if stats.PartitionsFired != 1 {
			return fmt.Errorf("matrix: partition did not fire (fired=%d)", stats.PartitionsFired)
		}
		e.cell.Notes = fmt.Sprintf("partition mid-collect, severed=%d", stats.Severed)
	}
	e.pump(pre, pre+post, 0)
	e.drain()
	e.cell.TuplesPerSec = float64(e.cell.Tuples) / time.Since(started).Seconds()
	return nil
}

// runSlowNode is the gray-failure cell: a shard holder degrades (slow,
// not dead), the φ-detector demotes it, and the supervised recovery of a
// separately crashed owner must route around it — without the detector
// ever killing the slow node.
func (e *matrixCell) runSlowNode() error {
	const pre, post = 600, 600
	e.cell.Tuples = pre + post
	started := time.Now()

	// Gray-tier transitions are chatty on a 24-node all-pairs detector
	// mesh; size the journal so the victim's demotion survives until the
	// post-recovery audit.
	flight := obs.NewFlightRecorder(1 << 15)
	sup := supervise.New(e.cluster, supervise.Config{
		Detector: detector.Config{
			Interval:       10 * time.Millisecond,
			Threshold:      8,
			Quorum:         2,
			DegradedRTT:    10 * time.Millisecond,
			MinDeadSilence: 60 * time.Millisecond,
		},
		RepairInterval: 50 * time.Millisecond,
		Flight:         flight,
		Escalation:     supervise.EscalationPolicy{DeadlineBase: 80 * time.Millisecond},
	})
	sup.BindRuntime(e.rt)

	e.pump(0, pre, 0)
	e.drain()
	if err := e.saveAll(); err != nil {
		return err
	}
	mech, _ := matrixMechanism(e.spec.Mechanism)
	sup.Protect(supervise.StateSpec{
		App:       e.taskKey,
		Mechanism: mech,
		TaskBound: true,
	})
	if err := sup.Start(); err != nil {
		return err
	}
	defer sup.Stop()

	owner, err := e.owner()
	if err != nil {
		return err
	}
	// Degrade the closest non-owner node — a leaf-set shard holder.
	var victim id.ID
	for _, nid := range e.ring.SortedLiveByDistance(owner) {
		if nid != owner {
			victim = nid
			break
		}
	}
	e.chaos.Degrade(victim, simnet.Degradation{Slowdown: 25 * time.Millisecond})
	if err := waitUntil(10*time.Second, func() bool {
		return sup.Degraded(victim) && e.cluster.IsDegraded(victim)
	}); err != nil {
		return fmt.Errorf("matrix: victim never demoted: %w", err)
	}
	// Audit the demotion while its journal entry is fresh.
	for _, fe := range flight.Events() {
		if fe.Kind == obs.FlightDegraded && fe.Node == victim.Short() {
			e.cell.DegradedPath = true
		}
	}

	// Crash the owner: the supervisor must detect it, recover the task
	// through replicas while routing around the degraded holder.
	killedAt := time.Now()
	e.ring.Fail(owner)
	var ev supervise.Event
	if err := waitUntil(20*time.Second, func() bool {
		for _, cand := range sup.Events() {
			if cand.App == e.taskKey && cand.Err == nil && !cand.RecoveredAt.IsZero() {
				ev = cand
				return true
			}
		}
		return false
	}); err != nil {
		return fmt.Errorf("matrix: supervised recovery never completed: %w", err)
	}
	e.cell.DetectMs = float64(ev.DetectedAt.Sub(killedAt)) / float64(time.Millisecond)
	e.cell.RecoverMs = float64(ev.RecoveredAt.Sub(killedAt)) / float64(time.Millisecond)

	// Spurious kill = the slow-but-alive victim was treated as dead.
	e.cell.SpuriousKill = !e.ring.Net.Alive(victim)
	for _, cand := range sup.Events() {
		if cand.Node == victim {
			e.cell.SpuriousKill = true
		}
	}
	e.cell.Notes = "supervised; degraded holder demoted, not killed"

	e.pump(pre, pre+post, 0)
	e.drain()
	e.cell.TuplesPerSec = float64(e.cell.Tuples) / time.Since(started).Seconds()
	return nil
}

// runIngest crashes the operator mid-stream while the spout keeps
// pushing at the configured rate: the exactly-once verdict covers tuples
// that arrived while the task was dead.
func (e *matrixCell) runIngest() error {
	rate, total, err := parseSustainedLoad(e.spec.Load)
	if err != nil {
		return err
	}
	e.cell.Tuples = total
	killAt := total * 2 / 5
	started := time.Now()

	e.pump(0, killAt, rate)
	if err := e.saveAll(); err != nil {
		return err
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		e.pump(killAt, total, rate)
	}()
	if err := e.killAndRecover(0); err != nil {
		<-done
		return err
	}
	<-done
	e.drain()
	e.cell.TuplesPerSec = float64(total) / time.Since(started).Seconds()
	return nil
}

// parseSustainedLoad maps "sustained-2k" → (2000 tuples/s, 1.5s worth).
func parseSustainedLoad(load string) (rate, total int, err error) {
	s := strings.TrimPrefix(load, "sustained-")
	s = strings.TrimSuffix(s, "k")
	n, err := strconv.Atoi(s)
	if err != nil || n <= 0 {
		return 0, 0, fmt.Errorf("matrix: bad sustained load %q", load)
	}
	rate = n * 1000
	return rate, rate * 3 / 2, nil
}

// settle fills in the verdict fields after Wait.
func (e *matrixCell) settle() {
	missing, dups := e.sink.audit(int64(e.cell.Tuples))
	e.cell.Missing = missing
	e.cell.Duplicates = dups
	e.cell.LagP50Ms = float64(e.sink.lag.Quantile(0.50))
	e.cell.LagP99Ms = float64(e.sink.lag.Quantile(0.99))
	e.cell.LagMaxMs = float64(e.sink.lag.Max())
	e.cell.StateExact = e.stateExact()
	e.cell.ExactlyOnce = missing == 0 && e.cell.StateExact
}

// stateExact verifies the operator's per-key counts against the emitted
// sequence range — the byte-exact recovery check.
func (e *matrixCell) stateExact() bool {
	for k := 0; k < matrixKeys; k++ {
		want := int64(e.cell.Tuples / matrixKeys)
		if k < e.cell.Tuples%matrixKeys {
			want++
		}
		v, ok := e.counter.store.Get(fmt.Sprintf("k%d", k))
		if !ok {
			return want == 0
		}
		got, err := strconv.ParseInt(string(v), 10, 64)
		if err != nil || got != want {
			return false
		}
	}
	return true
}

func waitUntil(d time.Duration, cond func() bool) error {
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return nil
		}
		time.Sleep(5 * time.Millisecond)
	}
	return fmt.Errorf("timed out after %v", d)
}
