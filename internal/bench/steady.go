package bench

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"strings"
	"time"

	"sr3/internal/dht"
	"sr3/internal/id"
	"sr3/internal/metrics"
	"sr3/internal/obs"
	"sr3/internal/recovery"
	"sr3/internal/state"
	"sr3/internal/stream"
)

// SteadyConfig sizes the steady-state observability experiment: the same
// topology is run with instruments off and on to price the overhead, then
// a small instrumented overlay routes lookups and recovers one state so a
// single cluster scrape carries runtime, ring and recovery families.
type SteadyConfig struct {
	// Tuples pushed through the topology per run (default 200_000).
	Tuples int
	// RingSize is the overlay size for the ring portion (default 32).
	RingSize int
	// Lookups is how many keys are routed on the ring (default 256).
	Lookups int
	// Seed fixes tuple contents and lookup keys (default 7).
	Seed int64
	// Cluster, when non-nil, receives every registry the experiment
	// creates (runtime, ring nodes, recovery phases) so a -metrics
	// endpoint exposes them live; nil uses a private one.
	Cluster *metrics.ClusterRegistry
}

func (c SteadyConfig) withDefaults() SteadyConfig {
	if c.Tuples <= 0 {
		c.Tuples = 200_000
	}
	if c.RingSize <= 0 {
		c.RingSize = 32
	}
	if c.Lookups <= 0 {
		c.Lookups = 256
	}
	if c.Seed == 0 {
		c.Seed = 7
	}
	if c.Cluster == nil {
		c.Cluster = metrics.NewClusterRegistry()
	}
	return c
}

// SteadyReport is the experiment outcome.
type SteadyReport struct {
	Tuples           int
	DisabledRate     float64 // tuples/s with Config.Metrics nil
	InstrumentedRate float64 // tuples/s with full task instruments
	OverheadPct      float64 // throughput cost of instrumentation
	RingSize         int
	Lookups          int
	MaxHops          int64
	Families         int // distinct metric families in one cluster scrape
	ScrapeBytes      int
}

// Format renders the report.
func (r SteadyReport) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "steady-state instrumentation overhead (%d tuples, spout->pass->count):\n", r.Tuples)
	fmt.Fprintf(&b, "  instruments off: %10.0f tuples/s\n", r.DisabledRate)
	fmt.Fprintf(&b, "  instruments on:  %10.0f tuples/s  (overhead %.1f%%)\n", r.InstrumentedRate, r.OverheadPct)
	fmt.Fprintf(&b, "ring: %d lookups across %d instrumented nodes (max %d hops), one star recovery traced to phase histograms\n",
		r.Lookups, r.RingSize, r.MaxHops)
	fmt.Fprintf(&b, "one cluster scrape: %d metric families, %d bytes\n", r.Families, r.ScrapeBytes)
	return b.String()
}

// steadyCount is the stateful word-count bolt of the steady topology.
type steadyCount struct{ st *state.MapStore }

func (c *steadyCount) Execute(t stream.Tuple, emit stream.Emit) error {
	w := t.StringAt(0)
	var n uint64
	if b, ok := c.st.Get(w); ok && len(b) == 8 {
		n = binary.BigEndian.Uint64(b)
	}
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], n+1)
	c.st.Put(w, b[:])
	return nil
}

func (c *steadyCount) Store() stream.StateStore { return c.st }

// runSteadyTopology pushes the tuples through spout->pass->count and
// returns the wall time of the run.
func runSteadyTopology(tuples []stream.Tuple, reg *metrics.Registry, fr *obs.FlightRecorder) (time.Duration, error) {
	i := 0
	src := stream.SpoutFunc(func() (stream.Tuple, bool) {
		if i >= len(tuples) {
			return stream.Tuple{}, false
		}
		t := tuples[i]
		i++
		return t, true
	})
	topo := stream.NewTopology("steady")
	if err := topo.AddSpout("src", src); err != nil {
		return 0, err
	}
	pass := stream.BoltFunc(func(t stream.Tuple, emit stream.Emit) error {
		emit(stream.Tuple{Values: t.Values, Ts: t.Ts})
		return nil
	})
	if err := topo.AddBolt("pass", pass, 2).Shuffle("src").Err(); err != nil {
		return 0, err
	}
	if err := topo.AddBolt("count", &steadyCount{st: state.NewMapStore()}, 1).Fields("pass", 0).Err(); err != nil {
		return 0, err
	}
	rt, err := stream.NewRuntime(topo, stream.Config{Metrics: reg, Flight: fr})
	if err != nil {
		return 0, err
	}
	start := time.Now()
	rt.Start()
	if err := rt.Wait(); err != nil {
		return 0, err
	}
	return time.Since(start), nil
}

// SteadyState measures the steady-state cost of the observability layer
// and assembles a representative one-scrape cluster view.
func SteadyState(cfg SteadyConfig) (SteadyReport, error) {
	cfg = cfg.withDefaults()
	rep := SteadyReport{Tuples: cfg.Tuples, RingSize: cfg.RingSize, Lookups: cfg.Lookups}

	rng := rand.New(rand.NewSource(cfg.Seed))
	words := []string{"stream", "state", "shard", "replica", "ring", "verdict", "scribe", "leaf"}
	tuples := make([]stream.Tuple, cfg.Tuples)
	for i := range tuples {
		tuples[i] = stream.Tuple{Values: []any{words[rng.Intn(len(words))]}}
	}

	// Throughput with instruments off, then on (full per-task counters,
	// latency histograms and queue gauges plus the flight journal).
	dOff, err := runSteadyTopology(tuples, nil, nil)
	if err != nil {
		return rep, err
	}
	fr := obs.NewFlightRecorder(0)
	dOn, err := runSteadyTopology(tuples, cfg.Cluster.Node("runtime"), fr)
	if err != nil {
		return rep, err
	}
	rep.DisabledRate = float64(cfg.Tuples) / dOff.Seconds()
	rep.InstrumentedRate = float64(cfg.Tuples) / dOn.Seconds()
	rep.OverheadPct = 100 * (1 - rep.InstrumentedRate/rep.DisabledRate)

	// Ring portion: an instrumented overlay routes random keys, then one
	// protected state is recovered with its phases traced into histograms.
	ring, err := dht.BuildConverged(dht.DefaultConfig(), cfg.Seed, cfg.RingSize)
	if err != nil {
		return rep, err
	}
	ring.EnableMetrics(cfg.Cluster)
	ids := ring.IDs()
	for i := 0; i < cfg.Lookups; i++ {
		origin := ring.Node(ids[rng.Intn(len(ids))])
		if _, hops, err := origin.Lookup(id.HashKey(fmt.Sprintf("steady-%d", i))); err == nil {
			if int64(hops) > rep.MaxHops {
				rep.MaxHops = int64(hops)
			}
		}
	}

	rc := recovery.NewCluster(ring)
	recReg := cfg.Cluster.Node("recovery")
	tracer := obs.New(obs.NewMetricsSink(recReg, ""))
	mgr := rc.Manager(ids[1])
	snap := make([]byte, 64<<10)
	rng.Read(snap)
	if _, err := mgr.Save("steady", snap, 8, 2, mgr.NextVersion(1)); err != nil {
		return rep, err
	}
	p, err := mgr.LookupPlacement("steady")
	if err != nil {
		return rep, err
	}
	ring.Fail(p.Owner)
	ring.MaintenanceRound()
	ring.MaintenanceRound()
	opts := recovery.DefaultOptions()
	opts.Tracer = tracer
	if _, err := rc.RecoverAndReprotect("steady", recovery.Star, opts); err != nil {
		return rep, err
	}

	var scrape strings.Builder
	if err := cfg.Cluster.WritePrometheus(&scrape); err != nil {
		return rep, err
	}
	rep.ScrapeBytes = scrape.Len()
	rep.Families = strings.Count(scrape.String(), "# TYPE ")
	return rep, nil
}
