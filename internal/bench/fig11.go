package bench

import (
	"fmt"

	"sr3/internal/dht"
	"sr3/internal/id"
	"sr3/internal/metrics"
	"sr3/internal/shard"
	"sr3/internal/state"
)

// Fig 11 setup (paper §5.3): up to 1,000 applications on 5,000 Pastry
// nodes; 32 MB state per application, 512 KB shards (64 shards),
// replication factor 2, placed on each owner's leaf set.
const (
	fig11Nodes     = 5000
	fig11StateMB   = 32
	fig11ShardKB   = 512
	fig11Replicas  = 2
	fig11RingSeed  = 7
	fig11ShardsPer = fig11StateMB * 1024 / fig11ShardKB // 64
)

// shardCounts deploys apps applications and returns per-node shard
// replica counts (real DHT placement; no payload bytes are moved).
func shardCounts(apps int) ([]float64, error) {
	ring, err := dht.BuildConverged(dht.DefaultConfig(), fig11RingSeed, fig11Nodes)
	if err != nil {
		return nil, err
	}
	counts := make(map[id.ID]int, fig11Nodes)
	for a := 0; a < apps; a++ {
		appName := fmt.Sprintf("app-%d", a)
		owner, ok := ring.ClosestLive(id.HashKey(appName))
		if !ok {
			return nil, fmt.Errorf("bench: no owner for %s", appName)
		}
		leaves := ring.Node(owner).LeafSet()
		p, err := shard.Place(appName, owner, fig11ShardsPer, fig11Replicas,
			state.Version{Timestamp: 1}, fig11StateMB*MB, leaves)
		if err != nil {
			return nil, err
		}
		for _, nid := range p.Loc {
			counts[nid]++
		}
	}
	out := make([]float64, 0, fig11Nodes)
	for _, nid := range ring.IDs() {
		out = append(out, float64(counts[nid]))
	}
	return out, nil
}

func fig11Distribution(figID string, apps int) (Figure, error) {
	counts, err := shardCounts(apps)
	if err != nil {
		return Figure{}, err
	}
	mean, err := metrics.Mean(counts)
	if err != nil {
		return Figure{}, err
	}
	fig := Figure{
		ID:     figID,
		Title:  fmt.Sprintf("shard distribution over %d nodes, %d apps (mean %.1f)", fig11Nodes, apps, mean),
		XLabel: "node index",
		YLabel: "#state shards per node",
	}
	// Sample every 50th node for the printable series; the full
	// distribution feeds Fig 11c.
	s := Series{Label: fmt.Sprintf("%d apps", apps)}
	for i := 0; i < len(counts); i += 50 {
		s.X = append(s.X, float64(i))
		s.Y = append(s.Y, counts[i])
	}
	fig.Series = []Series{s}
	return fig, nil
}

// Fig11a regenerates Fig 11a: shard distribution with 500 apps.
func Fig11a() (Figure, error) { return fig11Distribution("fig11a", 500) }

// Fig11b regenerates Fig 11b: shard distribution with 1,000 apps.
func Fig11b() (Figure, error) { return fig11Distribution("fig11b", 1000) }

// Fig11c regenerates Fig 11c: normal percentiles of shards per node for
// 500 and 1,000 apps, at the percentile grid the paper plots.
func Fig11c() (Figure, error) {
	fig := Figure{
		ID:     "fig11c",
		Title:  "normal probability of #shards per node",
		XLabel: "percentile",
		YLabel: "#state shards per node",
	}
	grid := []float64{0.01, 0.5, 10, 50, 95, 99.5, 99.99}
	for _, apps := range []int{500, 1000} {
		counts, err := shardCounts(apps)
		if err != nil {
			return Figure{}, err
		}
		s := Series{Label: fmt.Sprintf("%d apps", apps)}
		for _, p := range grid {
			v, err := metrics.Percentile(counts, p)
			if err != nil {
				return Figure{}, err
			}
			s.X = append(s.X, p)
			s.Y = append(s.Y, v)
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// Fig11Stats reports the load-balance headline claims: mean shards per
// node and the fraction of nodes under the paper's thresholds.
type Fig11Stats struct {
	Apps          int
	Mean          float64
	Fraction50    float64 // nodes holding < 50 shards
	Fraction100   float64 // nodes holding < 100 shards
	MaxShards     float64
	NonEmptyNodes int
}

// Fig11Summary computes the headline load-balance stats for app counts.
func Fig11Summary(apps int) (Fig11Stats, error) {
	counts, err := shardCounts(apps)
	if err != nil {
		return Fig11Stats{}, err
	}
	mean, _ := metrics.Mean(counts)
	f50, _ := metrics.FractionBelow(counts, 50)
	f100, _ := metrics.FractionBelow(counts, 100)
	max := 0.0
	nonEmpty := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
		if c > 0 {
			nonEmpty++
		}
	}
	return Fig11Stats{
		Apps:          apps,
		Mean:          mean,
		Fraction50:    f50,
		Fraction100:   f100,
		MaxShards:     max,
		NonEmptyNodes: nonEmpty,
	}, nil
}
