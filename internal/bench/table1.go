package bench

import (
	"fmt"
	"strings"

	"sr3/internal/fp4s"
	"sr3/internal/recovery"
	"sr3/internal/replication"
	"sr3/internal/simnet"
)

// Table1Row summarizes one recovery approach, backed by the
// implementations in this repository (paper Table 1, condensed to the
// approaches actually evaluated).
type Table1Row struct {
	System        string
	StateMgmt     string
	Approach      string
	ScalesToLarge bool
	MultiFailures bool
	Policy        string
	Traits        string
}

// Table1 returns the implemented subset of the paper's Table 1.
func Table1() []Table1Row {
	return []Table1Row{
		{
			System: "Checkpointing (Storm/Trident-style)", StateMgmt: "remote storage",
			Approach: "checkpoint + serial replay", ScalesToLarge: false, MultiFailures: false,
			Policy: "static", Traits: "slow: remote fetch then serial replay",
		},
		{
			System: "Replication (Flux/Borealis-style)", StateMgmt: "in-memory ×2",
			Approach: "hot standby", ScalesToLarge: false, MultiFailures: true,
			Policy: "static", Traits: fmt.Sprintf("fast but %gx hardware", replication.ResourceFactor),
		},
		{
			System: "FP4S (prior work)", StateMgmt: "in-memory, erasure-coded",
			Approach: "RS-coded fragments", ScalesToLarge: true, MultiFailures: true,
			Policy: "static", Traits: "storage overhead n/k, extra codec latency",
		},
		{
			System: "SR3 (this work)", StateMgmt: "in-memory hashtable",
			Approach: "DHT-based parallel recovery", ScalesToLarge: true, MultiFailures: true,
			Policy: "dynamic (star/line/tree)", Traits: "fast, low cost",
		},
	}
}

// FormatTable1 renders Table 1 as text.
func FormatTable1() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-38s %-26s %-8s %-8s %-10s %s\n",
		"system", "recovery approach", "large", "multi", "policy", "traits")
	for _, r := range Table1() {
		fmt.Fprintf(&b, "%-38s %-26s %-8v %-8v %-10s %s\n",
			r.System, r.Approach, r.ScalesToLarge, r.MultiFailures, r.Policy, r.Traits)
	}
	return b.String()
}

// FP4SComparison reproduces the §2.3 quantitative comparison at 128 MB:
// FP4S's storage overhead and its recovery-time penalty versus SR3 star.
type FP4SComparisonResult struct {
	StateMB          int
	StorageFactor    float64 // FP4S stored bytes / state bytes (paper: 1.625)
	FP4SRecoverySec  float64
	StarRecoverySec  float64
	ExtraCodecSec    float64 // paper: ~10 s at 128 MB
	ToleratedLosses  int
	SR3ReplicaFactor int
}

// FP4SComparison runs the FP4S-vs-SR3 comparison in the unconstrained
// scenario.
func FP4SComparison() (FP4SComparisonResult, error) {
	const stateMB = 128
	sc := Unconstrained()

	mech, err := fp4s.New(16, 26) // paper's 16 raw + 10 coded
	if err != nil {
		return FP4SComparisonResult{}, err
	}
	env, err := newPlanEnv(envConfig{
		seed: 42, ringSize: 128, totalBytes: stateMB * MB,
		shards: 16, replicas: 2, holders: 26,
	})
	if err != nil {
		return FP4SComparisonResult{}, err
	}
	holders := make([]string, 0, len(env.stages))
	for _, st := range env.stages {
		holders = append(holders, st.Node)
	}
	for len(holders) < mech.K() {
		holders = append(holders, fmt.Sprintf("extra-%d", len(holders)))
	}

	b := simnet.NewPlanBuilder()
	if _, err := mech.PlanRecover(b, fp4s.Spec{
		App: "app", Replacement: env.replacement.String(), Holders: holders,
		TotalBytes: stateMB * MB, CodecFactor: 1, RouteDelay: sc.RouteDelay,
	}); err != nil {
		return FP4SComparisonResult{}, err
	}
	fpRes, err := sc.NewSim().Run(b.Tasks())
	if err != nil {
		return FP4SComparisonResult{}, err
	}

	p := recovery.NewPlanner()
	p.Star(env.spec(sc), recovery.DefaultOptions())
	starRes, err := sc.NewSim().Run(p.Tasks())
	if err != nil {
		return FP4SComparisonResult{}, err
	}

	return FP4SComparisonResult{
		StateMB:          stateMB,
		StorageFactor:    float64(mech.StorageBytes(stateMB*MB)) / float64(stateMB*MB),
		FP4SRecoverySec:  fpRes.Makespan,
		StarRecoverySec:  starRes.Makespan,
		ExtraCodecSec:    fpRes.Makespan - starRes.Makespan,
		ToleratedLosses:  mech.MaxFailures(),
		SR3ReplicaFactor: 2,
	}, nil
}
