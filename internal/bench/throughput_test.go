package bench

import (
	"os"
	"strings"
	"testing"
)

// TestThroughputTinySweep runs the CI smoke preset for real: every cell
// must produce a rate, and the whole report must clear the validator —
// including the >= 3x wire speedup gate, which holds with margin even
// at smoke sizes (the gob baseline is an order of magnitude off the
// batched plane).
func TestThroughputTinySweep(t *testing.T) {
	if testing.Short() {
		t.Skip("moves ~34k tuples over loopback TCP")
	}
	specs, err := ThroughputPreset("tiny")
	if err != nil {
		t.Fatal(err)
	}
	report := ThroughputSweep(specs)
	for _, c := range report.Cells {
		if c.Error != "" {
			t.Fatalf("cell %s/%s/b%d: %s", c.Kind, c.Codec, c.Batch, c.Error)
		}
	}
	blob, err := report.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ValidateThroughput(blob); err != nil {
		t.Fatal(err)
	}
}

// TestCommittedThroughputArtifact schema-validates the committed
// BENCH_throughput.json — the validator embeds the acceptance gate
// (gob baseline present, batched wire cell >= 3x over it, runtime
// invariants intact), so a stale or hand-edited artifact fails CI.
func TestCommittedThroughputArtifact(t *testing.T) {
	blob, err := os.ReadFile("../../BENCH_throughput.json")
	if err != nil {
		t.Fatalf("committed artifact: %v", err)
	}
	report, err := ValidateThroughput(blob)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Cells) < 5 {
		t.Fatalf("committed throughput artifact has %d cells, want >= 5", len(report.Cells))
	}
	// Both runtime flavors must be present so the trajectory shows the
	// per-tuple baseline next to the batched plane.
	var perTuple, batched bool
	for _, c := range report.Cells {
		if c.Kind == ThroughputRuntime {
			if c.Batch <= 1 {
				perTuple = true
			} else {
				batched = true
			}
		}
	}
	if !perTuple || !batched {
		t.Fatalf("committed artifact missing a runtime cell flavor (per-tuple=%v batched=%v)", perTuple, batched)
	}
}

// TestValidateThroughputGates pins the validator's rejection paths: the
// speedup floor, the missing-baseline case, and broken runtime
// invariants must all fail loudly.
func TestValidateThroughputGates(t *testing.T) {
	mk := func(mut func(*ThroughputReport)) []byte {
		r := &ThroughputReport{Schema: ThroughputSchema, Cells: []ThroughputCell{
			{Kind: ThroughputWire, Codec: CodecNameGob, Batch: 1, Tuples: 100, Seconds: 1, TuplesPerSec: 1000},
			{Kind: ThroughputWire, Codec: CodecNameBatch, Batch: 64, Tuples: 100, Seconds: 1, TuplesPerSec: 10000},
			{Kind: ThroughputRuntime, Batch: 64, Tuples: 100, Seconds: 1, TuplesPerSec: 5000,
				AccountingExact: true, ExactlyOnce: true},
		}}
		if mut != nil {
			mut(r)
		}
		blob, err := r.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return blob
	}
	if _, err := ValidateThroughput(mk(nil)); err != nil {
		t.Fatalf("well-formed report rejected: %v", err)
	}
	cases := map[string]func(*ThroughputReport){
		"speedup below floor": func(r *ThroughputReport) { r.Cells[1].TuplesPerSec = 2500 },
		"baseline missing":    func(r *ThroughputReport) { r.Cells[0].Codec = CodecNameBatch },
		"batched wire cell missing": func(r *ThroughputReport) {
			r.Cells[1].Batch = 8
		},
		"accounting broken": func(r *ThroughputReport) { r.Cells[2].AccountingExact = false },
		"not exactly-once":  func(r *ThroughputReport) { r.Cells[2].ExactlyOnce = false },
		"runtime batched missing": func(r *ThroughputReport) {
			r.Cells[2].Batch = 1
		},
		"cell error": func(r *ThroughputReport) { r.Cells[1].Error = "boom" },
		"bad schema": func(r *ThroughputReport) { r.Schema = "nope" },
	}
	for name, mut := range cases {
		if _, err := ValidateThroughput(mk(mut)); err == nil {
			t.Errorf("%s: validator accepted a broken artifact", name)
		}
	}
}

// TestThroughputMarkdownRenders sanity-checks the markdown renderer
// used by the matrix-report experiment.
func TestThroughputMarkdownRenders(t *testing.T) {
	r := &ThroughputReport{Schema: ThroughputSchema, Cells: []ThroughputCell{
		{Kind: ThroughputWire, Codec: CodecNameGob, Batch: 1, Tuples: 100, TuplesPerSec: 1000, BytesPerTuple: 40},
		{Kind: ThroughputWire, Codec: CodecNameBatch, Batch: 64, Tuples: 100, TuplesPerSec: 9000, BytesPerTuple: 16},
		{Kind: ThroughputRuntime, Batch: 64, Tuples: 100, TuplesPerSec: 5000, AccountingExact: true, ExactlyOnce: true},
	}}
	md := r.Markdown()
	if !strings.Contains(md, "9.0×") {
		t.Fatalf("markdown missing speedup column:\n%s", md)
	}
	if !strings.Contains(md, "| runtime |  | 64 | 100 | 5000 | — | — | ✓ | ✓ |") {
		t.Fatalf("markdown runtime row malformed:\n%s", md)
	}
}
