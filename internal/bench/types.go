package bench

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"sr3/internal/dht"
	"sr3/internal/id"
	"sr3/internal/recovery"
	"sr3/internal/shard"
	"sr3/internal/state"
)

// Series is one plotted curve.
type Series struct {
	Label string
	X     []float64
	Y     []float64
}

// Figure is one regenerated evaluation figure.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// Format renders the figure as an aligned text table (one row per X,
// one column per series) — the printable equivalent of the paper's plot.
func (f Figure) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s\n", f.ID, f.Title)
	fmt.Fprintf(&b, "%-14s", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&b, "%16s", s.Label)
	}
	b.WriteString("\n")
	if len(f.Series) == 0 {
		return b.String()
	}
	for i := range f.Series[0].X {
		fmt.Fprintf(&b, "%-14.6g", f.Series[0].X[i])
		for _, s := range f.Series {
			if i < len(s.Y) {
				fmt.Fprintf(&b, "%16.3f", s.Y[i])
			} else {
				fmt.Fprintf(&b, "%16s", "-")
			}
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "(y-axis: %s)\n", f.YLabel)
	return b.String()
}

// planEnv is a recovery-timing environment: a converged ring, one state
// placement, a set of failures, and the derived plan stages.
type planEnv struct {
	ring        *dht.Ring
	owner       id.ID
	placement   shard.Placement
	replacement id.ID
	stages      []recovery.PlanStage
}

// envConfig controls planEnv construction.
type envConfig struct {
	seed       int64
	ringSize   int
	totalBytes int
	shards     int
	replicas   int
	// holders widens placement beyond the leaf set to this many nearest
	// nodes (0 = owner's leaf set, the default placement).
	holders int
	// extraFailures kills this many random non-owner nodes.
	extraFailures int
	// keepOwner leaves the owner alive (shard-drop-style experiments).
	keepOwner bool
}

func newPlanEnv(cfg envConfig) (*planEnv, error) {
	if cfg.ringSize == 0 {
		cfg.ringSize = 128
	}
	ring, err := dht.BuildConverged(dht.DefaultConfig(), cfg.seed, cfg.ringSize)
	if err != nil {
		return nil, err
	}
	owner := ring.IDs()[0]

	var nodes []id.ID
	if cfg.holders > 0 {
		sorted := ring.SortedLiveByDistance(owner)
		// Skip the owner itself (index 0).
		if len(sorted) <= cfg.holders {
			return nil, fmt.Errorf("bench: ring too small for %d holders", cfg.holders)
		}
		nodes = sorted[1 : cfg.holders+1]
	} else {
		nodes = ring.Node(owner).LeafSet()
		sort.Slice(nodes, func(i, j int) bool { return nodes[i].Less(nodes[j]) })
	}

	placement, err := shard.Place("app", owner, cfg.shards, cfg.replicas,
		state.Version{Timestamp: 1}, cfg.totalBytes, nodes)
	if err != nil {
		return nil, err
	}

	if !cfg.keepOwner {
		ring.Fail(owner)
	}
	if cfg.extraFailures > 0 {
		rng := rand.New(rand.NewSource(cfg.seed + 1))
		live := ring.LiveIDs()
		rng.Shuffle(len(live), func(i, j int) { live[i], live[j] = live[j], live[i] })
		killed := 0
		for _, nid := range live {
			if killed >= cfg.extraFailures {
				break
			}
			if nid == owner {
				continue
			}
			ring.Fail(nid)
			killed++
		}
	}

	replacement, ok := ring.ClosestLive(owner)
	if !ok {
		return nil, fmt.Errorf("bench: no live replacement")
	}
	if cfg.keepOwner {
		replacement = owner
	}
	stages, err := recovery.StagesFromPlacement(placement, ring.Net.Alive, replacement)
	if err != nil {
		return nil, err
	}
	return &planEnv{
		ring:        ring,
		owner:       owner,
		placement:   placement,
		replacement: replacement,
		stages:      stages,
	}, nil
}

// spec builds the plan spec for this environment under a scenario.
func (e *planEnv) spec(sc Scenario) recovery.PlanSpec {
	return recovery.PlanSpec{
		App:                "app",
		TotalBytes:         float64(e.placement.TotalLen),
		Stages:             e.stages,
		Replacement:        e.replacement.String(),
		RouteDelay:         sc.RouteDelay,
		FailureDetectDelay: FailureDetectDelay,
		FlowPenalty:        FlowPenalty,
		StoreForwardBeta:   StoreForwardBeta,
	}
}
