package bench

import (
	"errors"
	"fmt"

	"sr3/internal/recovery"
)

// fig10 regenerates Figs 10a–10c: recovery time under k simultaneous
// node failures (0–40), replication factor 2 vs 3, 64 MB state. Failures
// are injected by killing random overlay nodes (taking their shard
// replicas with them); surviving replicas carry recovery. Results
// average over several seeds; seeds where every replica of some shard
// died are skipped (the paper only reports successful recoveries).
func fig10(figID string, mech recovery.Mechanism) (Figure, error) {
	sc := Unconstrained()
	fig := Figure{
		ID:     figID,
		Title:  fmt.Sprintf("%s recovery time vs simultaneous failures (64 MB)", mech),
		XLabel: "failures",
		YLabel: "recovery time (s)",
	}
	const seeds = 5
	for _, replicas := range []int{2, 3} {
		s := Series{Label: fmt.Sprintf("replica=%d", replicas)}
		for _, failures := range []int{0, 10, 20, 30, 40} {
			total, ok := 0.0, 0
			for seed := int64(0); seed < seeds; seed++ {
				env, err := newPlanEnv(envConfig{
					seed:          100 + seed,
					ringSize:      256,
					totalBytes:    64 * MB,
					shards:        128,
					replicas:      replicas,
					holders:       64,
					extraFailures: failures,
				})
				if err != nil {
					if errors.Is(err, recovery.ErrShardLost) {
						continue // unrecoverable seed: skip, like the paper
					}
					return Figure{}, err
				}
				p := recovery.NewPlanner()
				opts := recovery.DefaultOptions()
				switch mech {
				case recovery.Star:
					p.Star(env.spec(sc), opts)
				case recovery.Line:
					opts.LinePathLength = 8
					p.Line(env.spec(sc), opts)
				case recovery.Tree:
					opts.TreeFanoutBit = 2
					opts.TreeBranchDepth = 8
					p.Tree(env.spec(sc), opts)
				}
				res, err := sc.NewSim().Run(p.Tasks())
				if err != nil {
					return Figure{}, err
				}
				total += res.Makespan
				ok++
			}
			if ok == 0 {
				return Figure{}, fmt.Errorf("fig %s: no recoverable seed at %d failures", figID, failures)
			}
			s.X = append(s.X, float64(failures))
			s.Y = append(s.Y, total/float64(ok))
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// Fig10a regenerates Fig 10a (star mechanism under failures).
func Fig10a() (Figure, error) { return fig10("fig10a", recovery.Star) }

// Fig10b regenerates Fig 10b (line mechanism under failures).
func Fig10b() (Figure, error) { return fig10("fig10b", recovery.Line) }

// Fig10c regenerates Fig 10c (tree mechanism under failures).
func Fig10c() (Figure, error) { return fig10("fig10c", recovery.Tree) }
