package bench

import (
	"encoding/json"
	"testing"
)

// TestDataPlaneSweepSmoke runs a miniature sweep (2 MB, 10 nodes, one
// concurrency step) over real TCP and checks the report's shape: every
// (mechanism × mode) cell present, baselines at speedup 1.0, goodput
// positive, and the JSON artifact round-trips.
func TestDataPlaneSweepSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP sweep")
	}
	cfg := DataPlaneConfig{SizesMB: []int{2}, Concurrencies: []int{4}, Nodes: 10, M: 8, R: 3}
	report, err := DataPlaneSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want := 3 * 2; len(report.Runs) != want { // 3 mechanisms × {seq, c4}
		t.Fatalf("got %d runs, want %d", len(report.Runs), want)
	}
	for _, run := range report.Runs {
		if run.GoodputMBps <= 0 {
			t.Errorf("%dMB %s %s: goodput %v", run.StateMB, run.Mechanism, run.Mode, run.GoodputMBps)
		}
		if run.BytesMoved != 2_000_000 {
			t.Errorf("%s %s: moved %d bytes", run.Mechanism, run.Mode, run.BytesMoved)
		}
		if run.Mode == "seq" {
			if run.SpeedupVsSeq != 1 {
				t.Errorf("%s seq: speedup %v, want 1", run.Mechanism, run.SpeedupVsSeq)
			}
			// Sequential star is the inline-gob control: no raw-body
			// traffic at all. Line/tree always frame shard bodies in the
			// collect raw path; sequential there means one unsegmented
			// chain/tree.
			if run.Mechanism == "star" && run.RawWireBytes != 0 {
				t.Errorf("star seq: raw wire bytes %d, want 0 (inline gob)", run.RawWireBytes)
			}
		} else if run.RawWireBytes == 0 {
			t.Errorf("%s %s: no raw wire traffic on streaming path", run.Mechanism, run.Mode)
		}
	}
	blob, err := report.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back DataPlaneReport
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Runs) != len(report.Runs) {
		t.Fatalf("JSON round trip lost runs: %d vs %d", len(back.Runs), len(report.Runs))
	}
}
