// Overload benchmark: offered load swept past the operator's sustained
// capacity — with a crash mid-stream — measuring what the backpressure
// tier actually guarantees: bounded queues, exact offered = admitted +
// shed accounting, exactly-once delivery of every admitted tuple, and
// recovery that completes while the system sheds. A retry-storm pair
// (budgeted vs unbudgeted failover retries against transiently dead
// replica holders) quantifies the retry-budget cap in the same artifact.
package bench

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
	"time"

	"sr3/internal/dht"
	"sr3/internal/id"
	"sr3/internal/overload"
	"sr3/internal/recovery"
	"sr3/internal/simnet"
	"sr3/internal/state"
	"sr3/internal/stream"
)

// OverloadSchema versions the committed BENCH_overload.json artifact.
const OverloadSchema = "sr3.bench.overload/v1"

// Overload scenario names.
const (
	// OverloadSteady pumps at the multiple with no fault: the shed
	// baseline.
	OverloadSteady = "steady"
	// OverloadCrash kills the stateful operator mid-stream while the
	// pump keeps offering; degraded-service mode is held for the
	// recovery window.
	OverloadCrash = "crash"
	// OverloadRetryStorm measures failover retry volume against
	// transiently dead replica holders, budgeted vs not.
	OverloadRetryStorm = "retry-storm"
)

// overloadDelay is the slow operator's per-tuple stall; the effective
// capacity is measured, not derived, because time.Sleep overshoots small
// arguments under scheduler timer slack.
const (
	overloadDelay    = 100 * time.Microsecond
	overloadQueueCap = 128
)

// calibrateCapacity measures the slow bolt's sustainable rate (tuples/s)
// on this machine, so "2x" genuinely means twice what the operator can
// absorb rather than twice a nominal figure the sleeps cannot hit.
func calibrateCapacity() int {
	const n = 200
	start := time.Now()
	for i := 0; i < n; i++ {
		time.Sleep(overloadDelay)
	}
	per := time.Since(start) / n
	cap := int(time.Second / per)
	if cap < 100 {
		cap = 100
	}
	return cap
}

// OverloadCellSpec names one cell to run.
type OverloadCellSpec struct {
	Scenario string `json:"scenario"`
	// Load is the offered-load multiple of the operator's capacity
	// ("0.5x", "1x", "2x", "4x"). Unused for retry-storm.
	Load string `json:"load,omitempty"`
	// Seconds is how long the pump offers load (scaled down in the CI
	// smoke preset). Unused for retry-storm.
	Seconds float64 `json:"seconds,omitempty"`
	// Budgeted arms the failover retry budget (retry-storm only).
	Budgeted bool `json:"budgeted,omitempty"`
}

// OverloadCell is one measured cell.
type OverloadCell struct {
	Scenario string `json:"scenario"`
	Load     string `json:"load,omitempty"`
	Budgeted bool   `json:"budgeted,omitempty"`

	// Exact admission accounting at the stateful operator.
	Offered      int64   `json:"offered,omitempty"`
	Admitted     int64   `json:"admitted,omitempty"`
	Shed         int64   `json:"shed,omitempty"`
	ShedFraction float64 `json:"shed_fraction,omitempty"`
	// AccountingExact = offered == admitted + shed AND offered equals
	// what the driver actually pumped — no tuple unaccounted for.
	AccountingExact bool `json:"accounting_exact"`
	// Queue bound: the high-water mark must never exceed the capacity.
	QueueCap       int `json:"queue_cap,omitempty"`
	QueueHighWater int `json:"queue_high_water,omitempty"`

	RecoverMs float64 `json:"recover_ms,omitempty"`
	// LagDrainMs is pump-end → backlog drained (queues empty).
	LagDrainMs float64 `json:"lag_drain_ms,omitempty"`
	LagP50Ms   float64 `json:"lag_p50_ms,omitempty"`
	LagP99Ms   float64 `json:"lag_p99_ms,omitempty"`

	// Exactly-once over *admitted* tuples: every tuple the queue
	// admitted reaches the sink exactly once (replay dedupe absorbed)
	// and the operator state equals the admitted count.
	ExactlyOnceAdmitted bool  `json:"exactly_once_admitted"`
	Duplicates          int64 `json:"duplicates,omitempty"`
	Missing             int64 `json:"missing,omitempty"`
	StateExact          bool  `json:"state_exact"`

	// Retry-storm fields: funded failover retry rounds, rounds the
	// budget suppressed, and whether the recovery completed.
	RetryRounds     int64  `json:"retry_rounds,omitempty"`
	RetrySuppressed int64  `json:"retry_suppressed,omitempty"`
	RecoverOK       bool   `json:"recover_ok,omitempty"`
	Notes           string `json:"notes,omitempty"`
	Error           string `json:"error,omitempty"`
}

// OverloadReport is the committed artifact.
type OverloadReport struct {
	Schema string         `json:"schema"`
	Cells  []OverloadCell `json:"cells"`
}

// JSON renders the report for the committed artifact.
func (r *OverloadReport) JSON() ([]byte, error) {
	blob, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(blob, '\n'), nil
}

// OverloadPreset returns the cell list for a named preset: "tiny" is the
// CI smoke subset, "full" the committed sweep.
func OverloadPreset(preset string) ([]OverloadCellSpec, error) {
	switch preset {
	case "tiny":
		return []OverloadCellSpec{
			{Scenario: OverloadCrash, Load: "2x", Seconds: 0.4},
			{Scenario: OverloadRetryStorm, Budgeted: false},
			{Scenario: OverloadRetryStorm, Budgeted: true},
		}, nil
	case "full":
		return []OverloadCellSpec{
			{Scenario: OverloadSteady, Load: "0.5x", Seconds: 1},
			{Scenario: OverloadSteady, Load: "1x", Seconds: 1},
			{Scenario: OverloadSteady, Load: "2x", Seconds: 1},
			{Scenario: OverloadSteady, Load: "4x", Seconds: 1},
			{Scenario: OverloadCrash, Load: "1x", Seconds: 1},
			{Scenario: OverloadCrash, Load: "2x", Seconds: 1},
			{Scenario: OverloadCrash, Load: "4x", Seconds: 1},
			{Scenario: OverloadRetryStorm, Budgeted: false},
			{Scenario: OverloadRetryStorm, Budgeted: true},
		}, nil
	default:
		return nil, fmt.Errorf("overload: unknown preset %q (tiny, full)", preset)
	}
}

// OverloadSweep runs every cell sequentially on a fresh environment. A
// cell failure lands in its Error field rather than aborting the sweep.
func OverloadSweep(specs []OverloadCellSpec) *OverloadReport {
	report := &OverloadReport{Schema: OverloadSchema}
	for i, spec := range specs {
		cell, err := RunOverloadCell(spec, int64(4000+41*i))
		if err != nil {
			cell.Error = err.Error()
		}
		report.Cells = append(report.Cells, cell)
	}
	return report
}

// RunOverloadCell builds one fresh environment and measures one cell.
func RunOverloadCell(spec OverloadCellSpec, seed int64) (OverloadCell, error) {
	if spec.Scenario == OverloadRetryStorm {
		return runRetryStorm(spec, seed)
	}
	return runOverloadStream(spec, seed)
}

// parseLoadMultiple maps "2x" → 2.0.
func parseLoadMultiple(load string) (float64, error) {
	m, err := strconv.ParseFloat(strings.TrimSuffix(load, "x"), 64)
	if err != nil || m <= 0 {
		return 0, fmt.Errorf("overload: bad load multiple %q", load)
	}
	return m, nil
}

// slowCountBolt is the capacity-limited stateful operator: the per-tuple
// delay defines sustained throughput, the per-key counts define the
// state-exactness check.
type slowCountBolt struct {
	seqCountBolt
	delay time.Duration
}

func (b *slowCountBolt) Execute(t stream.Tuple, emit stream.Emit) error {
	if b.delay > 0 {
		time.Sleep(b.delay)
	}
	return b.seqCountBolt.Execute(t, emit)
}

func (b *slowCountBolt) Store() stream.StateStore { return b.store }

// runOverloadStream drives the steady / crash scenarios.
func runOverloadStream(spec OverloadCellSpec, seed int64) (OverloadCell, error) {
	cell := OverloadCell{Scenario: spec.Scenario, Load: spec.Load}
	mult, err := parseLoadMultiple(spec.Load)
	if err != nil {
		return cell, err
	}
	secs := spec.Seconds
	if secs <= 0 {
		secs = 1
	}
	capacity := calibrateCapacity()
	rate := int(float64(capacity) * mult)
	if rate < 1 {
		rate = 1
	}
	total := int(float64(rate) * secs)

	ring, err := dht.NewRing(dht.DefaultConfig(), seed, matrixRing)
	if err != nil {
		return cell, err
	}
	cluster := recovery.NewCluster(ring)
	backend := stream.NewSR3Backend(cluster, matrixShards, matrixReplicas)

	spout := &seqSpout{ch: make(chan stream.Tuple, 1024)}
	counter := &slowCountBolt{seqCountBolt: seqCountBolt{store: state.NewMapStore()}, delay: overloadDelay}
	sink := newDedupeSink()

	topo := stream.NewTopology("overload")
	if err := topo.AddSpout("seq", spout); err != nil {
		return cell, err
	}
	if err := topo.AddBolt("count", counter, 1).Fields("seq", 0).Err(); err != nil {
		return cell, err
	}
	if err := topo.AddBolt("sink", sink, 1).Global("count").Err(); err != nil {
		return cell, err
	}
	rt, err := stream.NewRuntime(topo, stream.Config{
		Backend:         backend,
		SaveEveryTuples: matrixSaveEvery,
		// The queue bound is counted in envelopes, and with batching each
		// envelope carries up to matrixBatchSize tuples — so the depth is
		// scaled down to keep the queue's tuple capacity comparable to the
		// pre-batching sweep. Without this the 2x/4x cells stop shedding
		// and the overload scenario loses its teeth.
		ChannelDepth: overloadQueueCap / matrixBatchSize,
		QueuePolicy:  stream.QueueShedOldest,
		// Batched plane on: the exact per-tuple ledger and exactly-once
		// checks below now audit whole frames crossing the shedding queues.
		BatchSize:   matrixBatchSize,
		BatchLinger: matrixBatchLinger,
	})
	if err != nil {
		return cell, err
	}
	rt.Start()

	env := &matrixCell{rt: rt, spout: spout}
	pumped := 0
	runErr := func() error {
		switch spec.Scenario {
		case OverloadSteady:
			env.pump(0, total, rate)
			pumped = total
			return nil
		case OverloadCrash:
			// Pre-fault warmup at the offered rate, snapshot, then keep
			// offering full-tilt while the operator is killed and
			// recovered under a degraded-service hold.
			killAt := total * 2 / 5
			env.pump(0, killAt, rate)
			if err := env.saveAll(); err != nil {
				return err
			}
			done := make(chan struct{})
			go func() {
				defer close(done)
				env.pump(killAt, total, rate)
			}()
			rt.EnterDegraded("bench:" + spec.Load)
			err := func() error {
				if err := rt.Kill("count", 0); err != nil {
					return err
				}
				start := time.Now()
				if err := rt.RecoverTask("count", 0); err != nil {
					return err
				}
				cell.RecoverMs = float64(time.Since(start)) / float64(time.Millisecond)
				return nil
			}()
			rt.ExitDegraded()
			<-done
			pumped = total
			return err
		default:
			return fmt.Errorf("overload: unknown scenario %q", spec.Scenario)
		}
	}()
	if runErr != nil {
		close(spout.ch)
		_ = rt.Wait()
		return cell, runErr
	}

	// Lag-drain: how long the admitted backlog takes to clear once the
	// pump stops offering.
	drainStart := time.Now()
	rt.Drain()
	cell.LagDrainMs = float64(time.Since(drainStart)) / float64(time.Millisecond)
	close(spout.ch)
	if err := rt.Wait(); err != nil {
		return cell, err
	}

	// Exact accounting at the operator and bounded-queue check across
	// every task.
	ov := rt.Overload()
	var countStats, sinkStats stream.TaskOverloadStats
	for _, ts := range ov.Tasks {
		if ts.QueueHighWater > ts.QueueCap {
			return cell, fmt.Errorf("overload: task %s queue high-water %d exceeds cap %d", ts.Key, ts.QueueHighWater, ts.QueueCap)
		}
		switch ts.Key {
		case stream.TaskKey("overload", "count", 0):
			countStats = ts
		case stream.TaskKey("overload", "sink", 0):
			sinkStats = ts
		}
	}
	cell.Offered = countStats.Offered
	cell.Admitted = countStats.Admitted
	cell.Shed = countStats.Shed
	if cell.Offered > 0 {
		cell.ShedFraction = float64(cell.Shed) / float64(cell.Offered)
	}
	cell.AccountingExact = cell.Offered == cell.Admitted+cell.Shed &&
		cell.Offered == int64(pumped) &&
		ov.Offered == ov.Admitted+ov.Shed
	cell.QueueCap = countStats.QueueCap
	cell.QueueHighWater = countStats.QueueHighWater

	// Exactly-once over admitted tuples: the sink saw each delivered
	// sequence once (dups are replay re-deliveries the dedupe absorbed),
	// and delivered = admitted at the operator minus anything the sink's
	// own queue shed downstream.
	distinct, dups := sink.distinct()
	expected := countStats.Admitted - sinkStats.Shed
	cell.Duplicates = dups
	cell.Missing = expected - distinct
	var stateTotal int64
	for k := 0; k < matrixKeys; k++ {
		if v, ok := counter.store.Get(fmt.Sprintf("k%d", k)); ok {
			n, err := strconv.ParseInt(string(v), 10, 64)
			if err != nil {
				return cell, err
			}
			stateTotal += n
		}
	}
	cell.StateExact = stateTotal == countStats.Admitted
	cell.ExactlyOnceAdmitted = cell.Missing == 0 && cell.StateExact
	cell.Notes = fmt.Sprintf("capacity=%d/s offered=%d/s", capacity, rate)
	return cell, nil
}

// distinct reports how many distinct sequence numbers the sink delivered
// and how many re-deliveries the dedupe absorbed.
func (s *dedupeSink) distinct() (distinct, dups int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return int64(len(s.seen)), s.dups
}

// runRetryStorm measures failover retry volume: the state owner dies,
// and both replica holders of one shard index are scheduled to crash
// transiently on the first recovery fetch — so the star executor must
// burn retry rounds waiting them out. Unbudgeted, the rounds run until
// the holders return; budgeted, the budget funds two rounds and then
// fails the recovery fast. Both cells meter rounds through a budget
// (the unbudgeted one is too large to ever suppress), so RetryRounds is
// measured identically.
func runRetryStorm(spec OverloadCellSpec, seed int64) (OverloadCell, error) {
	cell := OverloadCell{Scenario: spec.Scenario, Budgeted: spec.Budgeted}
	ring, err := dht.NewRing(dht.DefaultConfig(), seed, matrixRing)
	if err != nil {
		return cell, err
	}
	cluster := recovery.NewCluster(ring)
	chaos := simnet.NewChaos(seed)
	ring.Net.SetChaos(chaos)

	const app = "overload-storm"
	owner := ring.IDs()[2]
	mgr := cluster.Manager(owner)
	snap := make([]byte, 48_000)
	for i := range snap {
		snap[i] = byte(seed + int64(i))
	}
	p, err := mgr.Save(app, snap, matrixShards, matrixReplicas, mgr.NextVersion(1))
	if err != nil {
		return cell, err
	}

	ring.Fail(owner)
	ring.MaintenanceRound()
	replacement, ok := ring.ClosestLive(owner)
	if !ok {
		return cell, fmt.Errorf("overload: no replacement")
	}
	// Transiently kill both holders of one shard index (avoiding the
	// replacement): that index has zero live replicas until the downtime
	// elapses, so recovery must retry.
	var victims []id.ID
	for i := 0; i < p.M; i++ {
		holders := p.NodesForIndex(i)
		ok := len(holders) == matrixReplicas
		for _, h := range holders {
			if h == replacement {
				ok = false
			}
		}
		if ok {
			victims = holders
			break
		}
	}
	if victims == nil {
		return cell, fmt.Errorf("overload: no index with all holders off-replacement")
	}
	const downtime = 150 * time.Millisecond
	for _, v := range victims {
		chaos.Crash(simnet.CrashSchedule{Node: v, KindPrefix: "sr3.", AfterMessages: 1, Downtime: downtime})
	}

	opts := recovery.DefaultOptions()
	opts.FailoverRetries = 8
	opts.RetryBackoff = 10 * time.Millisecond
	var budget *overload.Budget
	if spec.Budgeted {
		// Two funded rounds, then suppression: the cap under test.
		budget = overload.NewBudget(overload.BudgetPolicy{Ratio: 0.001, MinPerSec: 0.001, Burst: 2})
		cell.Notes = "budget burst=2"
	} else {
		// Metering-only budget: burst far above any possible round count,
		// so it never suppresses but still counts funded rounds.
		budget = overload.NewBudget(overload.BudgetPolicy{Ratio: 0.001, MinPerSec: 0.001, Burst: 1 << 20})
		cell.Notes = "unbudgeted baseline (metered)"
	}
	opts.RetryBudget = budget

	start := time.Now()
	_, rerr := cluster.Recover(app, recovery.Star, opts)
	cell.RecoverMs = float64(time.Since(start)) / float64(time.Millisecond)
	cell.RecoverOK = rerr == nil
	st := budget.Stats()
	cell.RetryRounds = st.Spent
	cell.RetrySuppressed = st.Suppressed
	if spec.Budgeted {
		// The budget is expected to cut the recovery short — that is the
		// demonstration, not a failure of the harness.
		if rerr != nil {
			cell.Notes += "; fail-fast: " + rerr.Error()
		}
		return cell, nil
	}
	if rerr != nil {
		return cell, fmt.Errorf("overload: unbudgeted recovery failed: %w", rerr)
	}
	return cell, nil
}

// ValidateOverload parses and schema-checks a committed artifact,
// enforcing the acceptance invariants: exact accounting and bounded
// queues everywhere, an exactly-once 2x-crash cell, and a retry-storm
// pair where the budget demonstrably caps retry volume.
func ValidateOverload(blob []byte) (*OverloadReport, error) {
	var r OverloadReport
	if err := json.Unmarshal(blob, &r); err != nil {
		return nil, fmt.Errorf("overload artifact: %w", err)
	}
	if r.Schema != OverloadSchema {
		return nil, fmt.Errorf("overload artifact: schema %q, want %q", r.Schema, OverloadSchema)
	}
	if len(r.Cells) == 0 {
		return nil, fmt.Errorf("overload artifact: no cells")
	}
	var crashOK bool
	var storm, stormBudgeted *OverloadCell
	for i := range r.Cells {
		c := &r.Cells[i]
		if c.Error != "" {
			return nil, fmt.Errorf("overload artifact: cell %s/%s failed: %s", c.Scenario, c.Load, c.Error)
		}
		switch c.Scenario {
		case OverloadSteady, OverloadCrash:
			if !c.AccountingExact {
				return nil, fmt.Errorf("overload artifact: cell %s/%s accounting not exact", c.Scenario, c.Load)
			}
			if c.Offered != c.Admitted+c.Shed {
				return nil, fmt.Errorf("overload artifact: cell %s/%s offered %d != admitted %d + shed %d",
					c.Scenario, c.Load, c.Offered, c.Admitted, c.Shed)
			}
			if c.QueueHighWater > c.QueueCap {
				return nil, fmt.Errorf("overload artifact: cell %s/%s queue bound violated (%d > %d)",
					c.Scenario, c.Load, c.QueueHighWater, c.QueueCap)
			}
			if !c.ExactlyOnceAdmitted {
				return nil, fmt.Errorf("overload artifact: cell %s/%s not exactly-once over admitted tuples", c.Scenario, c.Load)
			}
			if m, err := parseLoadMultiple(c.Load); err == nil &&
				c.Scenario == OverloadCrash && m >= 2 && c.RecoverMs > 0 {
				crashOK = true
			}
		case OverloadRetryStorm:
			if c.Budgeted {
				stormBudgeted = c
			} else {
				storm = c
			}
		default:
			return nil, fmt.Errorf("overload artifact: unknown scenario %q", c.Scenario)
		}
	}
	if !crashOK {
		return nil, fmt.Errorf("overload artifact: no crash cell at >=2x load with a completed recovery")
	}
	if storm == nil || stormBudgeted == nil {
		return nil, fmt.Errorf("overload artifact: retry-storm pair (budgeted + unbudgeted) missing")
	}
	if !storm.RecoverOK {
		return nil, fmt.Errorf("overload artifact: unbudgeted retry-storm recovery did not complete")
	}
	if stormBudgeted.RetryRounds >= storm.RetryRounds {
		return nil, fmt.Errorf("overload artifact: budget did not cap retries (budgeted %d rounds >= unbudgeted %d)",
			stormBudgeted.RetryRounds, storm.RetryRounds)
	}
	if stormBudgeted.RetrySuppressed == 0 {
		return nil, fmt.Errorf("overload artifact: budgeted retry-storm suppressed nothing")
	}
	return &r, nil
}

// Format renders the report as an aligned table.
func (r *OverloadReport) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "overload sweep (%d cells)\n", len(r.Cells))
	fmt.Fprintf(&b, "%-12s %-5s %9s %9s %8s %6s %6s %8s %8s %6s %7s %5s %s\n",
		"scenario", "load", "offered", "admitted", "shed", "shed%", "q-hi", "recover", "drain", "exact", "rounds", "supp", "note")
	for _, c := range r.Cells {
		note := c.Notes
		if c.Error != "" {
			note = "ERR " + c.Error
		}
		fmt.Fprintf(&b, "%-12s %-5s %9d %9d %8d %5.1f%% %6d %6.1fms %6.1fms %6v %7d %5d %s\n",
			c.Scenario, c.Load, c.Offered, c.Admitted, c.Shed, 100*c.ShedFraction,
			c.QueueHighWater, c.RecoverMs, c.LagDrainMs, c.ExactlyOnceAdmitted,
			c.RetryRounds, c.RetrySuppressed, note)
	}
	b.WriteString("(exact = every admitted tuple delivered once + state equals admitted count; rounds/supp = failover retries funded/suppressed)\n")
	return b.String()
}
