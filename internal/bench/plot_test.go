package bench

import (
	"bytes"
	"encoding/xml"
	"os"
	"strings"
	"testing"
)

// assertWellFormedSVG decodes the whole document with encoding/xml — a
// mismatched tag or bad escaping fails the walk.
func assertWellFormedSVG(t *testing.T, blob []byte) {
	t.Helper()
	if !bytes.HasPrefix(blob, []byte("<svg ")) {
		t.Fatalf("not an svg document: %.40q", blob)
	}
	dec := xml.NewDecoder(bytes.NewReader(blob))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				return
			}
			t.Fatalf("svg not well-formed: %v", err)
		}
	}
}

func testMatrixReport() *MatrixReport {
	return &MatrixReport{
		Schema: MatrixSchema,
		Cells: []MatrixCell{
			{Scenario: ScenarioCrash, Mechanism: MechSR3Star, Load: "burst", Tuples: 1200, RecoverMs: 4.2, DetectMs: 0, LagP99Ms: 9, ExactlyOnce: true},
			{Scenario: ScenarioCrash, Mechanism: MechSR3Tree, Load: "burst", Tuples: 1200, RecoverMs: 6.8, ExactlyOnce: true},
			{Scenario: ScenarioSlowNode, Mechanism: MechSR3Star, Load: "burst", Tuples: 1200, RecoverMs: 140, DetectMs: 80, ExactlyOnce: true},
			{Scenario: ScenarioCrashIngest, Mechanism: MechSR3Star, Load: "sustained-2k", Tuples: 3000, RecoverMs: 5.5, ExactlyOnce: true},
			{Scenario: ScenarioCrash, Mechanism: MechFP4S, Load: "burst", Error: "boom"}, // skipped
		},
	}
}

func testOverloadReport() *OverloadReport {
	return &OverloadReport{
		Schema: OverloadSchema,
		Cells: []OverloadCell{
			{Scenario: OverloadSteady, Load: "0.5x", Offered: 1000, Admitted: 1000, Shed: 0},
			{Scenario: OverloadSteady, Load: "2x", Offered: 4000, Admitted: 2100, Shed: 1900, ShedFraction: 0.475},
			{Scenario: OverloadCrash, Load: "2x", Offered: 4000, Admitted: 2000, Shed: 2000, ShedFraction: 0.5, RecoverMs: 7},
			{Scenario: OverloadRetryStorm, Budgeted: true, RetryRounds: 2}, // no load axis, skipped
		},
	}
}

func TestPlotMatrixRecovery(t *testing.T) {
	blob, err := PlotMatrixRecovery(testMatrixReport())
	if err != nil {
		t.Fatal(err)
	}
	assertWellFormedSVG(t, blob)
	svg := string(blob)
	for _, want := range []string{MechSR3Star, MechSR3Tree, ScenarioSlowNode, "sustained-2k", "recover (ms)"} {
		if !strings.Contains(svg, want) {
			t.Errorf("matrix svg missing %q", want)
		}
	}
	// The failed FP4S cell must be skipped — no bar, no legend entry.
	if strings.Contains(svg, MechFP4S) {
		t.Error("matrix svg includes mechanism whose only cell failed")
	}
	again, err := PlotMatrixRecovery(testMatrixReport())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, again) {
		t.Error("matrix svg render is not deterministic")
	}
}

func TestPlotMatrixRecoveryEmpty(t *testing.T) {
	r := &MatrixReport{Schema: MatrixSchema, Cells: []MatrixCell{{Scenario: "x", Mechanism: "y", Load: "z", Error: "all failed"}}}
	if _, err := PlotMatrixRecovery(r); err == nil {
		t.Fatal("expected error for report with no successful cells")
	}
}

func TestPlotOverloadCurves(t *testing.T) {
	blob, err := PlotOverloadCurves(testOverloadReport())
	if err != nil {
		t.Fatal(err)
	}
	assertWellFormedSVG(t, blob)
	svg := string(blob)
	for _, want := range []string{"steady admitted", "steady shed", "crash admitted", "fraction of offered", "polyline"} {
		if !strings.Contains(svg, want) {
			t.Errorf("overload svg missing %q", want)
		}
	}
	// Two scenarios × (admit + shed) = 4 polylines.
	if n := strings.Count(svg, "<polyline"); n != 4 {
		t.Errorf("overload svg has %d polylines, want 4", n)
	}
	again, err := PlotOverloadCurves(testOverloadReport())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, again) {
		t.Error("overload svg render is not deterministic")
	}
}

func TestPlotOverloadCurvesEmpty(t *testing.T) {
	r := &OverloadReport{Schema: OverloadSchema, Cells: []OverloadCell{{Scenario: OverloadRetryStorm, Budgeted: true}}}
	if _, err := PlotOverloadCurves(r); err == nil {
		t.Fatal("expected error for report with no load-sweep cells")
	}
}

// TestPlotCommittedArtifacts renders the real committed artifacts, so a
// schema drift that breaks the figures fails here before CI's
// matrix-report -plot run does.
func TestPlotCommittedArtifacts(t *testing.T) {
	if blob, err := os.ReadFile("../../BENCH_matrix.json"); err == nil {
		r, err := ValidateMatrix(blob)
		if err != nil {
			t.Fatalf("committed matrix artifact invalid: %v", err)
		}
		svg, err := PlotMatrixRecovery(r)
		if err != nil {
			t.Fatalf("plot committed matrix: %v", err)
		}
		assertWellFormedSVG(t, svg)
	}
	if blob, err := os.ReadFile("../../BENCH_overload.json"); err == nil {
		r, err := ValidateOverload(blob)
		if err != nil {
			t.Fatalf("committed overload artifact invalid: %v", err)
		}
		svg, err := PlotOverloadCurves(r)
		if err != nil {
			t.Fatalf("plot committed overload: %v", err)
		}
		assertWellFormedSVG(t, svg)
	}
}
