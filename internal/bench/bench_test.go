package bench

import (
	"testing"
)

// These tests assert the acceptance criteria of DESIGN.md §4: the shape
// of every regenerated figure must match the paper's findings.

func seriesByLabel(t *testing.T, fig Figure, label string) Series {
	t.Helper()
	for _, s := range fig.Series {
		if s.Label == label {
			return s
		}
	}
	t.Fatalf("%s: no series %q", fig.ID, label)
	return Series{}
}

func yAt(t *testing.T, s Series, x float64) float64 {
	t.Helper()
	for i, xv := range s.X {
		if xv == x {
			return s.Y[i]
		}
	}
	t.Fatalf("series %s: no x=%v", s.Label, x)
	return 0
}

func TestFig8aShape(t *testing.T) {
	fig, err := Fig8a()
	if err != nil {
		t.Fatal(err)
	}
	ckpt := seriesByLabel(t, fig, "checkpointing")
	star := seriesByLabel(t, fig, "star")
	line := seriesByLabel(t, fig, "line")
	tree := seriesByLabel(t, fig, "tree")

	for _, mb := range []float64{8, 16, 32, 64, 128} {
		c := yAt(t, ckpt, mb)
		for _, s := range []Series{star, line, tree} {
			v := yAt(t, s, mb)
			if v >= c {
				t.Errorf("at %vMB %s (%.1fs) should beat checkpointing (%.1fs)", mb, s.Label, v, c)
			}
		}
	}
	// Small state: star fastest.
	for _, mb := range []float64{8, 16} {
		if !(yAt(t, star, mb) < yAt(t, line, mb) && yAt(t, star, mb) < yAt(t, tree, mb)) {
			t.Errorf("at %vMB star should be fastest: star=%.2f line=%.2f tree=%.2f",
				mb, yAt(t, star, mb), yAt(t, line, mb), yAt(t, tree, mb))
		}
	}
	// Large state: line slowest of the SR3 mechanisms; tree best.
	for _, mb := range []float64{64, 128} {
		if !(yAt(t, line, mb) > yAt(t, star, mb) && yAt(t, line, mb) > yAt(t, tree, mb)) {
			t.Errorf("at %vMB line should be the slowest SR3 mechanism", mb)
		}
		if !(yAt(t, tree, mb) < yAt(t, star, mb)) {
			t.Errorf("at %vMB tree should beat star", mb)
		}
	}
	// Headline: SR3 saves ≳30%% vs checkpointing at 128 MB.
	best := yAt(t, tree, 128)
	c := yAt(t, ckpt, 128)
	if (c-best)/c < 0.35 {
		t.Errorf("tree saves only %.0f%% vs checkpointing at 128MB", 100*(c-best)/c)
	}
	t.Log("\n" + fig.Format())
}

func TestFig8bShape(t *testing.T) {
	fig, err := Fig8b()
	if err != nil {
		t.Fatal(err)
	}
	ckpt := seriesByLabel(t, fig, "checkpointing")
	star := seriesByLabel(t, fig, "star")
	line := seriesByLabel(t, fig, "line")
	tree := seriesByLabel(t, fig, "tree")

	// Under constraint, star becomes the slowest SR3 mechanism at large
	// state; tree is best; all still beat checkpointing.
	for _, mb := range []float64{64, 128} {
		if !(yAt(t, star, mb) > yAt(t, line, mb) && yAt(t, star, mb) > yAt(t, tree, mb)) {
			t.Errorf("at %vMB constrained star should be slowest SR3: star=%.1f line=%.1f tree=%.1f",
				mb, yAt(t, star, mb), yAt(t, line, mb), yAt(t, tree, mb))
		}
		if yAt(t, tree, mb) > yAt(t, line, mb) {
			t.Errorf("at %vMB constrained tree should beat line", mb)
		}
		if yAt(t, star, mb) >= yAt(t, ckpt, mb) {
			t.Errorf("at %vMB even star should beat checkpointing", mb)
		}
	}
	// Constraint must hurt: compare against Fig 8a at 128 MB.
	free, err := Fig8a()
	if err != nil {
		t.Fatal(err)
	}
	if yAt(t, star, 128) <= yAt(t, seriesByLabel(t, free, "star"), 128) {
		t.Error("constrained star should be slower than unconstrained star")
	}
	t.Log("\n" + fig.Format())
}

func TestFig8cShape(t *testing.T) {
	fig, err := Fig8c()
	if err != nil {
		t.Fatal(err)
	}
	ckpt := seriesByLabel(t, fig, "checkpointing")
	sr3 := seriesByLabel(t, fig, "SR3_save")
	// SR3 saving is slower for small states (partition+replicate
	// overhead) and faster for large states (remote store bottleneck).
	if yAt(t, sr3, 8) <= yAt(t, ckpt, 8) {
		t.Errorf("at 8MB SR3 save (%.1f) should be slower than checkpointing (%.1f)",
			yAt(t, sr3, 8), yAt(t, ckpt, 8))
	}
	if yAt(t, sr3, 128) >= yAt(t, ckpt, 128) {
		t.Errorf("at 128MB SR3 save (%.1f) should be faster than checkpointing (%.1f)",
			yAt(t, sr3, 128), yAt(t, ckpt, 128))
	}
	t.Log("\n" + fig.Format())
}

func TestFig9Shapes(t *testing.T) {
	a, err := Fig9a()
	if err != nil {
		t.Fatal(err)
	}
	// 9a: nearly flat in fan-out bit (within 30% band).
	for _, s := range a.Series {
		lo, hi := s.Y[0], s.Y[0]
		for _, y := range s.Y {
			if y < lo {
				lo = y
			}
			if y > hi {
				hi = y
			}
		}
		if (hi-lo)/lo > 0.45 {
			t.Errorf("fig9a %s varies too much: %v", s.Label, s.Y)
		}
	}

	b, err := Fig9b()
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range b.Series {
		for i := 1; i < len(s.Y); i++ {
			if s.Y[i] <= s.Y[i-1] {
				t.Errorf("fig9b %s not increasing in path length: %v", s.Label, s.Y)
				break
			}
		}
	}

	c, err := Fig9c()
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range c.Series {
		if s.Y[len(s.Y)-1] <= s.Y[0] {
			t.Errorf("fig9c %s should grow with branch depth: %v", s.Label, s.Y)
		}
	}

	d, err := Fig9d()
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range d.Series {
		if s.Y[len(s.Y)-1] >= s.Y[0] {
			t.Errorf("fig9d %s should fall with fan-out: %v", s.Label, s.Y)
		}
	}
	t.Log("\n" + a.Format() + "\n" + b.Format() + "\n" + c.Format() + "\n" + d.Format())
}

func TestFig10Shapes(t *testing.T) {
	for _, fn := range []func() (Figure, error){Fig10a, Fig10b, Fig10c} {
		fig, err := fn()
		if err != nil {
			t.Fatal(err)
		}
		r2 := seriesByLabel(t, fig, "replica=2")
		r3 := seriesByLabel(t, fig, "replica=3")
		// Mild growth with failures: the 40-failure point should not be
		// more than 2x the failure-free point, but should not be faster.
		if r2.Y[len(r2.Y)-1] < r2.Y[0]*0.95 {
			t.Errorf("%s: recovery got faster with failures: %v", fig.ID, r2.Y)
		}
		if r2.Y[len(r2.Y)-1] > r2.Y[0]*2.5 {
			t.Errorf("%s: recovery degraded too much with failures: %v", fig.ID, r2.Y)
		}
		// replica=3 at the failure-heavy end should not be slower than
		// replica=2 by more than a whisker.
		last := len(r2.Y) - 1
		if r3.Y[last] > r2.Y[last]*1.15 {
			t.Errorf("%s: replica=3 (%.2f) much slower than replica=2 (%.2f) at 40 failures",
				fig.ID, r3.Y[last], r2.Y[last])
		}
		t.Log("\n" + fig.Format())
	}
}

func TestFig11LoadBalance(t *testing.T) {
	if testing.Short() {
		t.Skip("5000-node experiment")
	}
	s500, err := Fig11Summary(500)
	if err != nil {
		t.Fatal(err)
	}
	s1000, err := Fig11Summary(1000)
	if err != nil {
		t.Fatal(err)
	}
	// Mean doubles with app count.
	ratio := s1000.Mean / s500.Mean
	if ratio < 1.8 || ratio > 2.2 {
		t.Errorf("mean should double: %.1f -> %.1f (ratio %.2f)", s500.Mean, s1000.Mean, ratio)
	}
	// ≥95% of nodes below small-multiple-of-mean thresholds (the paper's
	// claim is "95% of nodes store < 50 shards" at mean ~25, i.e. < 2x
	// mean; leaf-set placement in our overlay is slightly clumpier, so
	// we assert the 2.5x band and report the exact distribution in
	// EXPERIMENTS.md).
	if f, _ := fractionBelowScaled(500, s500.Mean*2.5); f < 0.95 {
		t.Errorf("500 apps: only %.1f%% of nodes below 2.5x mean", 100*f)
	}
	if f, _ := fractionBelowScaled(1000, s1000.Mean*2.5); f < 0.95 {
		t.Errorf("1000 apps: only %.1f%% of nodes below 2.5x mean", 100*f)
	}
	t.Logf("500 apps: mean=%.1f max=%.0f; 1000 apps: mean=%.1f max=%.0f",
		s500.Mean, s500.MaxShards, s1000.Mean, s1000.MaxShards)
}

func fractionBelowScaled(apps int, threshold float64) (float64, error) {
	counts, err := shardCounts(apps)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, c := range counts {
		if c < threshold {
			n++
		}
	}
	return float64(n) / float64(len(counts)), nil
}

func TestFig12Shapes(t *testing.T) {
	a, err := Fig12a()
	if err != nil {
		t.Fatal(err)
	}
	// Mean CPU over the recovery window: every SR3 mechanism below
	// checkpointing.
	meanY := func(s Series) float64 {
		total := 0.0
		for _, y := range s.Y {
			total += y
		}
		return total / float64(len(s.Y))
	}
	ckpt := meanY(seriesByLabel(t, a, "checkpointing"))
	for _, scheme := range []string{"SR3_star", "SR3_line", "SR3_tree"} {
		if m := meanY(seriesByLabel(t, a, scheme)); m >= ckpt {
			t.Errorf("fig12a: %s mean CPU %.1f%% not below checkpointing %.1f%%", scheme, m, ckpt)
		}
	}

	b, err := Fig12b()
	if err != nil {
		t.Fatal(err)
	}
	ckptMem := meanY(seriesByLabel(t, b, "checkpointing"))
	for _, scheme := range []string{"SR3_star", "SR3_line", "SR3_tree"} {
		m := meanY(seriesByLabel(t, b, scheme))
		if m >= ckptMem {
			t.Errorf("fig12b: %s mean memory %.0fMB not below checkpointing %.0fMB", scheme, m, ckptMem)
		}
	}

	c, err := Fig12c()
	if err != nil {
		t.Fatal(err)
	}
	s := c.Series[0]
	// Per-node bytes grow sub-linearly (roughly with log N): going from
	// 20 to 1280 nodes (64x) should grow traffic by far less than 8x,
	// but it must grow.
	first, last := s.Y[0], s.Y[len(s.Y)-1]
	if last <= first {
		t.Errorf("fig12c: maintenance traffic should grow with ring size: %v", s.Y)
	}
	if last > first*8 {
		t.Errorf("fig12c: traffic grows too fast (%.0f -> %.0f B/s for 64x nodes)", first, last)
	}
	t.Log("\n" + a.Format() + "\n" + b.Format() + "\n" + c.Format())
}

func TestTable1AndFP4S(t *testing.T) {
	if len(Table1()) != 4 {
		t.Fatal("table 1 rows missing")
	}
	out := FormatTable1()
	if len(out) == 0 {
		t.Fatal("empty table")
	}
	cmp, err := FP4SComparison()
	if err != nil {
		t.Fatal(err)
	}
	// Paper §2.3: 62.5% storage increment; ~10 s extra at 128 MB.
	if cmp.StorageFactor < 1.6 || cmp.StorageFactor > 1.65 {
		t.Errorf("FP4S storage factor %.3f, want ~1.625", cmp.StorageFactor)
	}
	if cmp.ExtraCodecSec < 5 {
		t.Errorf("FP4S should pay noticeable codec time, got %.1fs extra", cmp.ExtraCodecSec)
	}
	if cmp.FP4SRecoverySec <= cmp.StarRecoverySec {
		t.Error("FP4S recovery should be slower than SR3 star")
	}
	t.Logf("FP4S vs SR3 star @128MB: %.1fs vs %.1fs (storage factor %.3f, tolerates %d losses)",
		cmp.FP4SRecoverySec, cmp.StarRecoverySec, cmp.StorageFactor, cmp.ToleratedLosses)
}

func TestAblationSpeculation(t *testing.T) {
	fig, err := AblationSpeculation()
	if err != nil {
		t.Fatal(err)
	}
	base := seriesByLabel(t, fig, "no speculation")
	spec := seriesByLabel(t, fig, "speculation")
	// Without a straggler (1x) the two are close; with a heavy straggler
	// (64x) speculation must cap the damage.
	if spec.Y[0] > base.Y[0]*1.2 {
		t.Errorf("speculation overhead too high without stragglers: %.1f vs %.1f", spec.Y[0], base.Y[0])
	}
	last := len(base.Y) - 1
	if spec.Y[last] >= base.Y[last]*0.7 {
		t.Errorf("speculation should cut straggler recovery: %.1f vs %.1f", spec.Y[last], base.Y[last])
	}
	// The unhedged run must actually degrade with the straggler.
	if base.Y[last] < base.Y[0]*1.5 {
		t.Errorf("straggler injection ineffective: %v", base.Y)
	}
	t.Log("\n" + fig.Format())
}

func TestAblationFlowPenalty(t *testing.T) {
	fig, err := AblationFlowPenalty()
	if err != nil {
		t.Fatal(err)
	}
	s := fig.Series[0]
	for i := 1; i < len(s.Y); i++ {
		if s.Y[i] <= s.Y[i-1] {
			t.Fatalf("star time should grow with flow penalty: %v", s.Y)
		}
	}
	t.Log("\n" + fig.Format())
}

func TestAblationMechanismDefaults(t *testing.T) {
	fig, err := AblationMechanismDefaults()
	if err != nil {
		t.Fatal(err)
	}
	star := seriesByLabel(t, fig, "star")
	line := seriesByLabel(t, fig, "line")
	tree := seriesByLabel(t, fig, "tree")
	// 64 MB: tree wins unconstrained (x=0); star loses constrained (x=1).
	if !(tree.Y[0] < star.Y[0] && tree.Y[0] < line.Y[0]) {
		t.Errorf("unconstrained 64MB: tree should win: star=%.1f line=%.1f tree=%.1f",
			star.Y[0], line.Y[0], tree.Y[0])
	}
	if !(star.Y[1] > line.Y[1] && star.Y[1] > tree.Y[1]) {
		t.Errorf("constrained 64MB: star should lose: star=%.1f line=%.1f tree=%.1f",
			star.Y[1], line.Y[1], tree.Y[1])
	}
	t.Log("\n" + fig.Format())
}
