// Hand-rolled SVG rendering of committed benchmark artifacts: the
// recovery-time bar chart (mechanism × scenario) from BENCH_matrix.json
// and the overload shed/admit curves from BENCH_overload.json, both
// referenced from EXPERIMENTS.md via `sr3bench -fig matrix-report
// -plot`. Stdlib only, and deterministic: the same artifact always
// renders byte-identical SVG, so CI can regenerate and diff.
package bench

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

const (
	plotW       = 960
	plotH       = 440
	plotMarginL = 72
	plotMarginR = 24
	plotMarginT = 56
	plotMarginB = 118
)

// plotPalette colors mechanisms (bar chart) and scenarios (curves) in
// first-appearance order.
var plotPalette = []string{
	"#4e79a7", "#f28e2b", "#e15759", "#76b7b2",
	"#59a14f", "#edc948", "#b07aa1", "#9c755f",
}

var xmlEscaper = strings.NewReplacer(
	"&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;",
)

// svgDoc accumulates one SVG document.
type svgDoc struct{ b strings.Builder }

func newSVG(w, h int) *svgDoc {
	s := &svgDoc{}
	fmt.Fprintf(&s.b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d" font-family="sans-serif" font-size="12">`+"\n", w, h, w, h)
	fmt.Fprintf(&s.b, `<rect width="%d" height="%d" fill="white"/>`+"\n", w, h)
	return s
}

func (s *svgDoc) rect(x, y, w, h float64, fill, title string) {
	if title != "" {
		fmt.Fprintf(&s.b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"><title>%s</title></rect>`+"\n",
			x, y, w, h, fill, xmlEscaper.Replace(title))
		return
	}
	fmt.Fprintf(&s.b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"/>`+"\n", x, y, w, h, fill)
}

func (s *svgDoc) line(x1, y1, x2, y2 float64, stroke string) {
	fmt.Fprintf(&s.b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s"/>`+"\n", x1, y1, x2, y2, stroke)
}

func (s *svgDoc) polyline(pts []float64, stroke, dash string) {
	var p strings.Builder
	for i := 0; i+1 < len(pts); i += 2 {
		if i > 0 {
			p.WriteByte(' ')
		}
		fmt.Fprintf(&p, "%.1f,%.1f", pts[i], pts[i+1])
	}
	extra := ""
	if dash != "" {
		extra = ` stroke-dasharray="` + dash + `"`
	}
	fmt.Fprintf(&s.b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="2"%s/>`+"\n", p.String(), stroke, extra)
}

func (s *svgDoc) circle(x, y, r float64, fill, title string) {
	if title != "" {
		fmt.Fprintf(&s.b, `<circle cx="%.1f" cy="%.1f" r="%.1f" fill="%s"><title>%s</title></circle>`+"\n",
			x, y, r, fill, xmlEscaper.Replace(title))
		return
	}
	fmt.Fprintf(&s.b, `<circle cx="%.1f" cy="%.1f" r="%.1f" fill="%s"/>`+"\n", x, y, r, fill)
}

// text anchors at (x,y); extra is raw attribute text (e.g. a transform).
func (s *svgDoc) text(x, y float64, anchor, extra, txt string) {
	if anchor != "" {
		anchor = ` text-anchor="` + anchor + `"`
	}
	if extra != "" {
		extra = " " + extra
	}
	fmt.Fprintf(&s.b, `<text x="%.1f" y="%.1f"%s%s>%s</text>`+"\n", x, y, anchor, extra, xmlEscaper.Replace(txt))
}

func (s *svgDoc) bytes() []byte {
	s.b.WriteString("</svg>\n")
	return []byte(s.b.String())
}

// niceStep picks a 1/2/5×10^k tick step yielding roughly `target` ticks
// up to max.
func niceStep(max float64, target int) float64 {
	if max <= 0 {
		return 1
	}
	raw := max / float64(target)
	mag := math.Pow(10, math.Floor(math.Log10(raw)))
	for _, m := range []float64{1, 2, 5, 10} {
		if raw <= m*mag {
			return m * mag
		}
	}
	return 10 * mag
}

func fmtTick(v float64) string {
	return strconv.FormatFloat(v, 'f', -1, 64)
}

// yAxis draws the horizontal grid, tick labels, and axis caption, and
// returns the y-pixel mapping for data values in [0, max].
func yAxis(s *svgDoc, max float64, unit string) func(float64) float64 {
	x0, x1 := float64(plotMarginL), float64(plotW-plotMarginR)
	y0, y1 := float64(plotH-plotMarginB), float64(plotMarginT)
	toY := func(v float64) float64 { return y0 - (v/max)*(y0-y1) }
	step := niceStep(max, 5)
	for v := 0.0; v <= max+step/2; v += step {
		y := toY(v)
		s.line(x0, y, x1, y, "#dddddd")
		s.text(x0-6, y+4, "end", "", fmtTick(v))
	}
	s.text(16, (y0+y1)/2, "middle", `transform="rotate(-90 16 `+fmt.Sprintf("%.1f", (y0+y1)/2)+`)"`, unit)
	s.line(x0, y0, x1, y0, "#333333")
	return toY
}

// PlotMatrixRecovery renders the fault-recovery matrix as a grouped bar
// chart: one group per scenario/load, one bar per mechanism, bar height
// = recovery latency. Failed cells are skipped.
func PlotMatrixRecovery(r *MatrixReport) ([]byte, error) {
	type bar struct {
		mechIdx   int
		recoverMs float64
		cell      MatrixCell
	}
	var groupOrder []string
	groups := map[string][]bar{}
	var mechOrder []string
	mechIdx := map[string]int{}
	maxMs := 0.0
	for _, c := range r.Cells {
		if c.Error != "" {
			continue
		}
		label := c.Scenario
		if c.Load != "burst" {
			label += " " + c.Load
		}
		if _, ok := groups[label]; !ok {
			groupOrder = append(groupOrder, label)
		}
		if _, ok := mechIdx[c.Mechanism]; !ok {
			mechIdx[c.Mechanism] = len(mechOrder)
			mechOrder = append(mechOrder, c.Mechanism)
		}
		groups[label] = append(groups[label], bar{mechIdx[c.Mechanism], c.RecoverMs, c})
		if c.RecoverMs > maxMs {
			maxMs = c.RecoverMs
		}
	}
	if len(groupOrder) == 0 {
		return nil, fmt.Errorf("plot: matrix report has no successful cells")
	}
	if maxMs <= 0 {
		maxMs = 1
	}

	s := newSVG(plotW, plotH)
	s.text(plotW/2, 20, "middle", `font-size="15" font-weight="bold"`,
		fmt.Sprintf("Recovery time by mechanism × scenario (%d cells)", len(r.Cells)))
	for i, m := range mechOrder {
		lx := float64(plotMarginL + i*130)
		s.rect(lx, 30, 10, 10, plotPalette[i%len(plotPalette)], "")
		s.text(lx+14, 39, "", "", m)
	}
	toY := yAxis(s, maxMs, "recover (ms)")

	x0 := float64(plotMarginL)
	span := float64(plotW-plotMarginR) - x0
	gw := span / float64(len(groupOrder))
	bw := gw * 0.8 / float64(len(mechOrder))
	base := float64(plotH - plotMarginB)
	for gi, label := range groupOrder {
		gx := x0 + float64(gi)*gw
		for _, b := range groups[label] {
			bx := gx + gw*0.1 + float64(b.mechIdx)*bw
			by := toY(b.recoverMs)
			h := base - by
			if h < 1 {
				h = 1
				by = base - 1
			}
			title := fmt.Sprintf("%s / %s / %s: recover %.1f ms, detect %.1f ms, lag p99 %.1f ms, exactly-once %v",
				b.cell.Scenario, b.cell.Mechanism, b.cell.Load, b.recoverMs, b.cell.DetectMs, b.cell.LagP99Ms, b.cell.ExactlyOnce)
			s.rect(bx, by, bw-1, h, plotPalette[b.mechIdx%len(plotPalette)], title)
		}
		lx, ly := gx+gw/2, base+14
		s.text(lx, ly, "end", fmt.Sprintf(`transform="rotate(-28 %.1f %.1f)"`, lx, ly), label)
	}
	return s.bytes(), nil
}

// PlotOverloadCurves renders the overload sweep's admission behavior:
// admitted and shed fractions vs the offered-load multiple, one curve
// pair per scenario (admitted solid, shed dashed). Retry-storm cells
// carry no load axis and are skipped.
func PlotOverloadCurves(r *OverloadReport) ([]byte, error) {
	type pt struct {
		mult     float64
		admitted float64
		shed     float64
		cell     OverloadCell
	}
	var scnOrder []string
	series := map[string][]pt{}
	maxMult := 0.0
	for _, c := range r.Cells {
		if c.Error != "" || c.Scenario == OverloadRetryStorm || c.Offered <= 0 {
			continue
		}
		mult, err := parseLoadMultiple(c.Load)
		if err != nil {
			continue
		}
		if _, ok := series[c.Scenario]; !ok {
			scnOrder = append(scnOrder, c.Scenario)
		}
		series[c.Scenario] = append(series[c.Scenario], pt{
			mult:     mult,
			admitted: float64(c.Admitted) / float64(c.Offered),
			shed:     c.ShedFraction,
			cell:     c,
		})
		if mult > maxMult {
			maxMult = mult
		}
	}
	if len(scnOrder) == 0 {
		return nil, fmt.Errorf("plot: overload report has no load-sweep cells")
	}

	s := newSVG(plotW, plotH)
	s.text(plotW/2, 20, "middle", `font-size="15" font-weight="bold"`,
		"Overload admission: admitted vs shed fraction by offered-load multiple")
	for i, scn := range scnOrder {
		lx := float64(plotMarginL + i*220)
		color := plotPalette[i%len(plotPalette)]
		s.line(lx, 35, lx+22, 35, color)
		s.text(lx+26, 39, "", "", scn+" admitted")
		fmt.Fprintf(&s.b, `<line x1="%.1f" y1="45" x2="%.1f" y2="45" stroke="%s" stroke-dasharray="5,3"/>`+"\n", lx, lx+22, color)
		s.text(lx+26, 49, "", "", scn+" shed")
	}
	toY := yAxis(s, 1.0, "fraction of offered")

	x0, x1 := float64(plotMarginL), float64(plotW-plotMarginR)
	base := float64(plotH - plotMarginB)
	toX := func(m float64) float64 { return x0 + (m/maxMult)*(x1-x0-40) + 20 }
	xstep := niceStep(maxMult, 6)
	for m := 0.0; m <= maxMult+xstep/2; m += xstep {
		s.text(toX(m), base+16, "middle", "", fmtTick(m)+"x")
	}
	s.text((x0+x1)/2, base+40, "middle", "", "offered load (multiple of measured capacity)")

	for i, scn := range scnOrder {
		pts := series[scn]
		color := plotPalette[i%len(plotPalette)]
		var admit, shed []float64
		for _, p := range pts {
			admit = append(admit, toX(p.mult), toY(p.admitted))
			shed = append(shed, toX(p.mult), toY(p.shed))
		}
		s.polyline(admit, color, "")
		s.polyline(shed, color, "5,3")
		for _, p := range pts {
			title := fmt.Sprintf("%s %s: offered %d, admitted %d (%.1f%%), shed %d (%.1f%%), queue hi %d/%d",
				p.cell.Scenario, p.cell.Load, p.cell.Offered, p.cell.Admitted, 100*p.admitted,
				p.cell.Shed, 100*p.shed, p.cell.QueueHighWater, p.cell.QueueCap)
			s.circle(toX(p.mult), toY(p.admitted), 3.5, color, title)
			s.circle(toX(p.mult), toY(p.shed), 3.5, color, title)
		}
	}
	return s.bytes(), nil
}
