package bench

import (
	"fmt"

	"sr3/internal/recovery"
)

// sweepEnv builds the wide-placement environment the parameter sweeps use
// (64 distinct providers so chains and trees can actually reach the
// swept lengths; replicas = 1 since these figures study latency shape,
// not fault tolerance).
func sweepEnv(totalBytes int) (*planEnv, error) {
	return newPlanEnv(envConfig{
		seed:       43,
		ringSize:   256,
		totalBytes: totalBytes,
		shards:     64,
		replicas:   1,
		holders:    64,
	})
}

// Fig9a regenerates Fig 9a: star recovery time vs star fan-out bit.
func Fig9a() (Figure, error) {
	sc := Unconstrained()
	fig := Figure{
		ID:     "fig9a",
		Title:  "star recovery time vs star fan-out bit",
		XLabel: "fan-out bit",
		YLabel: "recovery time (s)",
	}
	for _, mb := range []int{8, 16, 32} {
		env, err := sweepEnv(mb * MB)
		if err != nil {
			return Figure{}, err
		}
		s := Series{Label: fmt.Sprintf("state=%dMB", mb)}
		for bit := 1; bit <= 4; bit++ {
			opts := recovery.DefaultOptions()
			opts.StarFanoutBit = bit
			p := recovery.NewPlanner()
			p.Star(env.spec(sc), opts)
			res, err := sc.NewSim().Run(p.Tasks())
			if err != nil {
				return Figure{}, err
			}
			s.X = append(s.X, float64(bit))
			s.Y = append(s.Y, res.Makespan)
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// Fig9b regenerates Fig 9b: line recovery time vs recovery path length.
func Fig9b() (Figure, error) {
	sc := Unconstrained()
	fig := Figure{
		ID:     "fig9b",
		Title:  "line recovery time vs path length (x log-scale)",
		XLabel: "path length",
		YLabel: "recovery time (s)",
	}
	for _, mb := range []int{8, 16, 32} {
		env, err := sweepEnv(mb * MB)
		if err != nil {
			return Figure{}, err
		}
		s := Series{Label: fmt.Sprintf("state=%dMB", mb)}
		for _, l := range []int{4, 8, 16, 32, 64} {
			opts := recovery.DefaultOptions()
			opts.LinePathLength = l
			p := recovery.NewPlanner()
			p.Line(env.spec(sc), opts)
			res, err := sc.NewSim().Run(p.Tasks())
			if err != nil {
				return Figure{}, err
			}
			s.X = append(s.X, float64(l))
			s.Y = append(s.Y, res.Makespan)
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// Fig9c regenerates Fig 9c: tree recovery time vs branch depth.
func Fig9c() (Figure, error) {
	sc := Unconstrained()
	fig := Figure{
		ID:     "fig9c",
		Title:  "tree recovery time vs branch depth (x log-scale)",
		XLabel: "branch depth",
		YLabel: "recovery time (s)",
	}
	for _, mb := range []int{16, 32} {
		env, err := sweepEnv(mb * MB)
		if err != nil {
			return Figure{}, err
		}
		s := Series{Label: fmt.Sprintf("state=%dMB", mb)}
		for _, d := range []int{4, 8, 16, 32, 64} {
			opts := recovery.DefaultOptions()
			opts.TreeFanoutBit = 1
			opts.TreeBranchDepth = d
			p := recovery.NewPlanner()
			p.Tree(env.spec(sc), opts)
			res, err := sc.NewSim().Run(p.Tasks())
			if err != nil {
				return Figure{}, err
			}
			s.X = append(s.X, float64(d))
			s.Y = append(s.Y, res.Makespan)
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// Fig9d regenerates Fig 9d: tree recovery time vs tree fan-out bit.
func Fig9d() (Figure, error) {
	sc := Unconstrained()
	fig := Figure{
		ID:     "fig9d",
		Title:  "tree recovery time vs tree fan-out bit",
		XLabel: "fan-out bit",
		YLabel: "recovery time (s)",
	}
	for _, mb := range []int{64, 128} {
		env, err := sweepEnv(mb * MB)
		if err != nil {
			return Figure{}, err
		}
		s := Series{Label: fmt.Sprintf("state=%dMB", mb)}
		for bit := 1; bit <= 4; bit++ {
			opts := recovery.DefaultOptions()
			opts.TreeFanoutBit = bit
			opts.TreeBranchDepth = 8
			p := recovery.NewPlanner()
			p.Tree(env.spec(sc), opts)
			res, err := sc.NewSim().Run(p.Tasks())
			if err != nil {
				return Figure{}, err
			}
			s.X = append(s.X, float64(bit))
			s.Y = append(s.Y, res.Makespan)
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}
