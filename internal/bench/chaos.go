package bench

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"

	"sr3/internal/dht"
	"sr3/internal/id"
	"sr3/internal/metrics"
	"sr3/internal/recovery"
	"sr3/internal/simnet"
)

// ChaosReport runs the real recovery executors (not the timed planners)
// under seeded fault injection and reports what the failover ladder did:
// a provider is crash-scheduled to die on the first recovery message it
// receives, every recovery link drops a fraction of its messages, and
// each mechanism must still reassemble the state byte-identically. The
// per-recovery Outcome reports are aggregated into metrics.FailoverStats.
func ChaosReport() (string, error) {
	var b strings.Builder
	var agg metrics.FailoverStats
	fmt.Fprintf(&b, "seeded chaos: one provider crash-scheduled mid-recovery, 5%% drops on recovery links\n")
	fmt.Fprintf(&b, "%-6s %9s %9s %10s %13s %9s\n",
		"mech", "attempts", "failovers", "retriedKB", "deadProviders", "degraded")
	for _, mech := range []recovery.Mechanism{recovery.Star, recovery.Line, recovery.Tree} {
		out, stats, err := chaosRecoverOnce(mech)
		if err != nil {
			return "", fmt.Errorf("chaos %s: %w", mech, err)
		}
		agg.Add(out.Attempts, out.Failovers, out.RetriedBytes, out.DeadProviders, out.Degraded)
		degraded := "-"
		if out.Degraded {
			degraded = "to " + out.DegradedTo.String()
		}
		fmt.Fprintf(&b, "%-6s %9d %9d %10.1f %13d %9s   (injected: %d dropped, %d crashes)\n",
			mech, out.Attempts, out.Failovers, float64(out.RetriedBytes)/1024,
			out.DeadProviders, degraded, stats.Dropped, stats.Crashes)
	}
	fmt.Fprintf(&b, "aggregate: %d recoveries, %.1f failovers/recovery, %.0f%% degraded, %.1f KB retried\n",
		agg.Recoveries, agg.FailoverRate(), 100*agg.DegradedFraction(),
		float64(agg.RetriedBytes)/1024)
	return b.String(), nil
}

// chaosRecoverOnce builds a fresh converged ring, saves one state, kills
// the owner, arms the fault plan and recovers with the given mechanism,
// verifying the reassembled bytes.
func chaosRecoverOnce(mech recovery.Mechanism) (recovery.Outcome, simnet.ChaosStats, error) {
	ring, err := dht.BuildConverged(dht.DefaultConfig(), 7, 48)
	if err != nil {
		return recovery.Outcome{}, simnet.ChaosStats{}, err
	}
	cluster := recovery.NewCluster(ring)
	owner := ring.IDs()[0]
	snap := make([]byte, 256<<10)
	rand.New(rand.NewSource(11)).Read(snap)
	mgr := cluster.Manager(owner)
	placement, err := mgr.Save("chaos-app", snap, 12, 2, mgr.NextVersion(1))
	if err != nil {
		return recovery.Outcome{}, simnet.ChaosStats{}, err
	}

	ring.Fail(owner)
	replacement, ok := ring.ClosestLive(owner)
	if !ok {
		return recovery.Outcome{}, simnet.ChaosStats{}, fmt.Errorf("no live replacement")
	}
	var victim id.ID
	for _, h := range placement.Holders() {
		if h != replacement && h != owner {
			victim = h
			break
		}
	}

	// The fault plan targets recovery traffic only ("sr3." kinds), so the
	// overlay's own maintenance is untouched: the victim dies the moment
	// the first collection message reaches it.
	ch := simnet.NewChaos(1234)
	ch.SetLinkFaults(simnet.LinkFaults{DropProb: 0.05, KindPrefix: "sr3."})
	ch.Crash(simnet.CrashSchedule{Node: victim, KindPrefix: "sr3.", AfterMessages: 1})
	ring.Net.SetChaos(ch)
	defer ring.Net.SetChaos(nil)

	opts := recovery.DefaultOptions()
	opts.FailoverRetries = 6
	res, err := cluster.Recover("chaos-app", mech, opts)
	if err != nil {
		return recovery.Outcome{}, ch.Stats(), err
	}
	if !bytes.Equal(res.Snapshot, snap) {
		return recovery.Outcome{}, ch.Stats(), fmt.Errorf("recovered state differs under chaos")
	}
	return res.Outcome, ch.Stats(), nil
}
