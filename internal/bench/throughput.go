// Throughput benchmark: the steady-state tuple plane measured in
// tuples/sec, on two axes. The wire axis streams tuples over a
// persistent loopback TCP connection — per-tuple gob frames (the
// pre-batching inter-task codec) against EncodeTupleBatch frames on the
// chunked, credit-windowed BatchConn data plane — and is where the
// headline batching speedup is gated. The runtime axis runs the full
// in-process topology (spout → keyed count on a sharded store) with the
// batched plane off and on, asserting that the accounting and
// exactly-once invariants survive the faster path.
package bench

import (
	"encoding/gob"
	"encoding/json"
	"fmt"
	"net"
	"strconv"
	"strings"
	"time"

	"sr3/internal/nettransport"
	"sr3/internal/state"
	"sr3/internal/stream"
)

// ThroughputSchema versions the committed BENCH_throughput.json.
const ThroughputSchema = "sr3.bench.throughput/v1"

// Throughput cell kinds and codecs.
const (
	// ThroughputWire streams encoded tuples over loopback TCP.
	ThroughputWire = "wire"
	// ThroughputRuntime pumps the in-process topology end to end.
	ThroughputRuntime = "runtime"

	// CodecNameGob is the per-tuple gob baseline.
	CodecNameGob = "gob"
	// CodecNameBatch is the length-prefixed binary batch codec.
	CodecNameBatch = "batch"
)

// ThroughputSpeedupFloor is the acceptance gate: batched wire cells at
// batch >= ThroughputSpeedupBatch must beat the gob per-tuple baseline
// by at least this factor in tuples/sec.
const (
	ThroughputSpeedupFloor = 3.0
	ThroughputSpeedupBatch = 64
)

// ThroughputCellSpec names one cell to run.
type ThroughputCellSpec struct {
	Kind string `json:"kind"`
	// Codec selects the wire encoding (wire cells only).
	Codec string `json:"codec,omitempty"`
	// Batch is the tuples-per-frame (1 = per-tuple delivery).
	Batch int `json:"batch"`
	// Tuples is how many tuples the cell moves.
	Tuples int `json:"tuples"`
}

// ThroughputCell is one measured cell.
type ThroughputCell struct {
	Kind         string  `json:"kind"`
	Codec        string  `json:"codec,omitempty"`
	Batch        int     `json:"batch"`
	Tuples       int64   `json:"tuples"`
	Seconds      float64 `json:"seconds"`
	TuplesPerSec float64 `json:"tuples_per_sec"`
	// BytesPerTuple is the on-wire footprint (wire cells only).
	BytesPerTuple float64 `json:"bytes_per_tuple,omitempty"`

	// Runtime-cell invariants: exact offered = admitted + shed ledger and
	// exactly-once execution over admitted tuples, checked with the
	// batched plane on.
	AccountingExact bool `json:"accounting_exact,omitempty"`
	ExactlyOnce     bool `json:"exactly_once,omitempty"`

	Notes string `json:"notes,omitempty"`
	Error string `json:"error,omitempty"`
}

// ThroughputReport is the committed artifact.
type ThroughputReport struct {
	Schema string           `json:"schema"`
	Cells  []ThroughputCell `json:"cells"`
}

// JSON renders the report for the committed artifact.
func (r *ThroughputReport) JSON() ([]byte, error) {
	blob, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(blob, '\n'), nil
}

// ThroughputPreset returns the cell list for a named preset: "tiny" is
// the CI smoke subset, "full" the committed sweep.
func ThroughputPreset(preset string) ([]ThroughputCellSpec, error) {
	switch preset {
	case "tiny":
		return []ThroughputCellSpec{
			{Kind: ThroughputWire, Codec: CodecNameGob, Batch: 1, Tuples: 4_000},
			{Kind: ThroughputWire, Codec: CodecNameBatch, Batch: 64, Tuples: 20_000},
			{Kind: ThroughputRuntime, Batch: 64, Tuples: 10_000},
		}, nil
	case "full":
		return []ThroughputCellSpec{
			{Kind: ThroughputWire, Codec: CodecNameGob, Batch: 1, Tuples: 30_000},
			{Kind: ThroughputWire, Codec: CodecNameBatch, Batch: 64, Tuples: 200_000},
			{Kind: ThroughputWire, Codec: CodecNameBatch, Batch: 256, Tuples: 200_000},
			{Kind: ThroughputRuntime, Batch: 1, Tuples: 60_000},
			{Kind: ThroughputRuntime, Batch: 64, Tuples: 60_000},
		}, nil
	default:
		return nil, fmt.Errorf("throughput: unknown preset %q (tiny, full)", preset)
	}
}

// ThroughputSweep runs every cell sequentially on a fresh environment.
// A cell failure lands in its Error field rather than aborting the
// sweep.
func ThroughputSweep(specs []ThroughputCellSpec) *ThroughputReport {
	report := &ThroughputReport{Schema: ThroughputSchema}
	for _, spec := range specs {
		cell, err := RunThroughputCell(spec)
		if err != nil {
			cell.Error = err.Error()
		}
		report.Cells = append(report.Cells, cell)
	}
	return report
}

// RunThroughputCell measures one cell.
func RunThroughputCell(spec ThroughputCellSpec) (ThroughputCell, error) {
	switch spec.Kind {
	case ThroughputWire:
		return runWireCell(spec)
	case ThroughputRuntime:
		return runRuntimeCell(spec)
	default:
		return ThroughputCell{Kind: spec.Kind}, fmt.Errorf("throughput: unknown cell kind %q", spec.Kind)
	}
}

// throughputTuple builds the representative tuple the cells move: the
// matrix workload's shape, a keyed word plus a sequence number.
func throughputTuple(seq int) stream.Tuple {
	return stream.Tuple{
		Stream: "seq",
		Values: []any{fmt.Sprintf("k%d", seq%matrixKeys), int64(seq)},
		Ts:     int64(seq),
	}
}

// loopbackPair opens both ends of a fresh loopback TCP connection.
func loopbackPair() (client, server net.Conn, err error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, nil, err
	}
	defer ln.Close()
	type res struct {
		c   net.Conn
		err error
	}
	ch := make(chan res, 1)
	go func() {
		c, aerr := ln.Accept()
		ch <- res{c, aerr}
	}()
	client, err = net.Dial("tcp", ln.Addr().String())
	if err != nil {
		return nil, nil, err
	}
	r := <-ch
	if r.err != nil {
		client.Close()
		return nil, nil, r.err
	}
	return client, r.c, nil
}

// runWireCell streams spec.Tuples over loopback TCP and times arrival.
// The gob baseline reproduces the pre-batching inter-task path: one gob
// frame per tuple through a persistent encoder. The batch path encodes
// spec.Batch tuples per EncodeTupleBatch frame into a reused buffer and
// ships it over the credit-windowed BatchConn.
func runWireCell(spec ThroughputCellSpec) (ThroughputCell, error) {
	cell := ThroughputCell{Kind: spec.Kind, Codec: spec.Codec, Batch: spec.Batch, Tuples: int64(spec.Tuples)}
	if spec.Tuples <= 0 {
		return cell, fmt.Errorf("throughput: wire cell needs tuples > 0")
	}
	tuples := make([]stream.Tuple, spec.Tuples)
	for i := range tuples {
		tuples[i] = throughputTuple(i)
	}
	cw, sw, err := loopbackPair()
	if err != nil {
		return cell, err
	}
	defer cw.Close()
	defer sw.Close()

	type result struct {
		n     int64
		bytes int64
		err   error
	}
	done := make(chan result, 1)
	var start time.Time

	switch spec.Codec {
	case CodecNameGob:
		if spec.Batch != 1 {
			return cell, fmt.Errorf("throughput: gob baseline is per-tuple (batch=1), got %d", spec.Batch)
		}
		go func() {
			dec := gob.NewDecoder(sw)
			var got result
			for got.n < int64(len(tuples)) {
				var t stream.Tuple
				if err := dec.Decode(&t); err != nil {
					got.err = err
					break
				}
				got.n++
			}
			done <- got
		}()
		cm := &countingConn{Conn: cw}
		enc := gob.NewEncoder(cm)
		start = time.Now()
		for i := range tuples {
			if err := enc.Encode(&tuples[i]); err != nil {
				return cell, fmt.Errorf("throughput: gob encode: %w", err)
			}
		}
		res := <-done
		cell.Seconds = time.Since(start).Seconds()
		if res.err != nil {
			return cell, fmt.Errorf("throughput: gob receiver: %w", res.err)
		}
		cell.BytesPerTuple = float64(cm.n) / float64(len(tuples))
		cell.Notes = "per-tuple gob frames, persistent encoder"

	case CodecNameBatch:
		if spec.Batch < 2 {
			return cell, fmt.Errorf("throughput: batch cell needs batch >= 2, got %d", spec.Batch)
		}
		bs := nettransport.NewBatchConn(sw, 10*time.Second)
		go func() {
			var got result
			for got.n < int64(len(tuples)) {
				body, free, err := bs.ReadBatch()
				if err != nil {
					got.err = err
					break
				}
				decoded, _, err := stream.DecodeTupleBatch(body)
				free()
				if err != nil {
					got.err = err
					break
				}
				got.n += int64(len(decoded))
			}
			done <- got
		}()
		bc := nettransport.NewBatchConn(cw, 10*time.Second)
		var frame []byte
		sent := int64(0)
		start = time.Now()
		for off := 0; off < len(tuples); off += spec.Batch {
			end := off + spec.Batch
			if end > len(tuples) {
				end = len(tuples)
			}
			frame, err = stream.EncodeTupleBatch(frame[:0], tuples[off:end], stream.ClassIngest)
			if err != nil {
				return cell, fmt.Errorf("throughput: batch encode: %w", err)
			}
			if err := bc.WriteBatch(frame); err != nil {
				return cell, fmt.Errorf("throughput: batch write: %w", err)
			}
			sent += int64(len(frame))
		}
		res := <-done
		cell.Seconds = time.Since(start).Seconds()
		if res.err != nil {
			return cell, fmt.Errorf("throughput: batch receiver: %w", res.err)
		}
		cell.BytesPerTuple = float64(sent) / float64(len(tuples))
		cell.Notes = fmt.Sprintf("%d-tuple frames over credit-windowed BatchConn", spec.Batch)

	default:
		return cell, fmt.Errorf("throughput: unknown codec %q", spec.Codec)
	}
	if cell.Seconds > 0 {
		cell.TuplesPerSec = float64(cell.Tuples) / cell.Seconds
	}
	return cell, nil
}

// countingConn counts bytes written, for the on-wire footprint column.
type countingConn struct {
	net.Conn
	n int64
}

func (c *countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.n += int64(n)
	return n, err
}

// shardedCountBolt is seqCountBolt over the sharded keyed store — the
// state shape the batched plane's concurrency is meant to feed.
type shardedCountBolt struct{ store *state.ShardedMapStore }

func (c *shardedCountBolt) Execute(t stream.Tuple, emit stream.Emit) error {
	key := t.StringAt(0)
	n := int64(0)
	if v, ok := c.store.Get(key); ok {
		parsed, err := strconv.ParseInt(string(v), 10, 64)
		if err != nil {
			return err
		}
		n = parsed
	}
	n++
	c.store.Put(key, []byte(strconv.FormatInt(n, 10)))
	return nil
}

func (c *shardedCountBolt) Store() stream.StateStore { return c.store }

// runRuntimeCell pumps spec.Tuples through spout → keyed count (two
// tasks, sharded store) with the batched plane configured per spec, and
// checks the ledger and exactly-once invariants on the way out.
func runRuntimeCell(spec ThroughputCellSpec) (ThroughputCell, error) {
	cell := ThroughputCell{Kind: spec.Kind, Batch: spec.Batch, Tuples: int64(spec.Tuples)}
	if spec.Tuples <= 0 {
		return cell, fmt.Errorf("throughput: runtime cell needs tuples > 0")
	}
	tuples := make([]stream.Tuple, spec.Tuples)
	for i := range tuples {
		tuples[i] = throughputTuple(i)
	}
	spout := &preloadedSpout{tuples: tuples}
	counter := &shardedCountBolt{store: state.NewShardedMapStore(0)}
	topo := stream.NewTopology("tp")
	if err := topo.AddSpout("seq", spout); err != nil {
		return cell, err
	}
	if err := topo.AddBolt("count", counter, 2).Fields("seq", 0).Err(); err != nil {
		return cell, err
	}
	cfg := stream.Config{Backend: stream.NewMemoryBackend()}
	if spec.Batch > 1 {
		cfg.BatchSize = spec.Batch
		cfg.BatchLinger = time.Millisecond
		cell.Notes = fmt.Sprintf("batched plane, %d-tuple frames, sharded store", spec.Batch)
	} else {
		cell.Notes = "per-tuple plane, sharded store"
	}
	rt, err := stream.NewRuntime(topo, cfg)
	if err != nil {
		return cell, err
	}
	start := time.Now()
	rt.Start()
	if err := rt.Wait(); err != nil {
		return cell, err
	}
	cell.Seconds = time.Since(start).Seconds()
	if cell.Seconds > 0 {
		cell.TuplesPerSec = float64(cell.Tuples) / cell.Seconds
	}

	ov := rt.Overload()
	cell.AccountingExact = ov.Offered == int64(spec.Tuples) && ov.Offered == ov.Admitted+ov.Shed && ov.Shed == 0
	var total int64
	for _, k := range counter.store.Keys() {
		v, _ := counter.store.Get(k)
		n, err := strconv.ParseInt(string(v), 10, 64)
		if err != nil {
			return cell, err
		}
		total += n
	}
	cell.ExactlyOnce = total == ov.Admitted && total == int64(spec.Tuples)
	return cell, nil
}

// preloadedSpout replays a fixed slice once.
type preloadedSpout struct {
	tuples []stream.Tuple
	i      int
}

func (s *preloadedSpout) Next() (stream.Tuple, bool) {
	if s.i >= len(s.tuples) {
		return stream.Tuple{}, false
	}
	t := s.tuples[s.i]
	s.i++
	return t, true
}

// ValidateThroughput parses and schema-checks a committed artifact,
// enforcing the acceptance gate: a gob per-tuple wire baseline, a
// batched wire cell at batch >= ThroughputSpeedupBatch beating it by
// ThroughputSpeedupFloor in tuples/sec, and a batched runtime cell
// whose accounting and exactly-once invariants held.
func ValidateThroughput(blob []byte) (*ThroughputReport, error) {
	var r ThroughputReport
	if err := json.Unmarshal(blob, &r); err != nil {
		return nil, fmt.Errorf("throughput artifact: %w", err)
	}
	if r.Schema != ThroughputSchema {
		return nil, fmt.Errorf("throughput artifact: schema %q, want %q", r.Schema, ThroughputSchema)
	}
	if len(r.Cells) == 0 {
		return nil, fmt.Errorf("throughput artifact: no cells")
	}
	var baseline, batched *ThroughputCell
	var runtimeBatched *ThroughputCell
	for i := range r.Cells {
		c := &r.Cells[i]
		if c.Error != "" {
			return nil, fmt.Errorf("throughput artifact: cell %s/%s/b%d failed: %s", c.Kind, c.Codec, c.Batch, c.Error)
		}
		if c.TuplesPerSec <= 0 {
			return nil, fmt.Errorf("throughput artifact: cell %s/%s/b%d has no rate", c.Kind, c.Codec, c.Batch)
		}
		switch c.Kind {
		case ThroughputWire:
			switch {
			case c.Codec == CodecNameGob && c.Batch == 1:
				baseline = c
			case c.Codec == CodecNameBatch && c.Batch >= ThroughputSpeedupBatch:
				if batched == nil || c.TuplesPerSec > batched.TuplesPerSec {
					batched = c
				}
			}
		case ThroughputRuntime:
			if !c.AccountingExact {
				return nil, fmt.Errorf("throughput artifact: runtime cell b%d accounting not exact", c.Batch)
			}
			if !c.ExactlyOnce {
				return nil, fmt.Errorf("throughput artifact: runtime cell b%d not exactly-once", c.Batch)
			}
			if c.Batch > 1 {
				runtimeBatched = c
			}
		default:
			return nil, fmt.Errorf("throughput artifact: unknown cell kind %q", c.Kind)
		}
	}
	if baseline == nil {
		return nil, fmt.Errorf("throughput artifact: gob per-tuple wire baseline missing")
	}
	if batched == nil {
		return nil, fmt.Errorf("throughput artifact: batched wire cell at batch >= %d missing", ThroughputSpeedupBatch)
	}
	if speedup := batched.TuplesPerSec / baseline.TuplesPerSec; speedup < ThroughputSpeedupFloor {
		return nil, fmt.Errorf("throughput artifact: wire speedup %.2fx below the %.1fx floor (batched %.0f/s vs gob %.0f/s)",
			speedup, ThroughputSpeedupFloor, batched.TuplesPerSec, baseline.TuplesPerSec)
	}
	if runtimeBatched == nil {
		return nil, fmt.Errorf("throughput artifact: batched runtime cell missing")
	}
	return &r, nil
}

// Format renders the report as an aligned table.
func (r *ThroughputReport) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "throughput sweep (%d cells)\n", len(r.Cells))
	fmt.Fprintf(&b, "%-8s %-6s %6s %9s %9s %12s %8s %6s %6s %s\n",
		"kind", "codec", "batch", "tuples", "seconds", "tuples/s", "B/tuple", "exact", "once", "note")
	var gobRate float64
	for _, c := range r.Cells {
		if c.Kind == ThroughputWire && c.Codec == CodecNameGob && c.Error == "" {
			gobRate = c.TuplesPerSec
		}
	}
	for _, c := range r.Cells {
		note := c.Notes
		if c.Error != "" {
			note = "ERR " + c.Error
		} else if gobRate > 0 && c.Kind == ThroughputWire && c.Codec == CodecNameBatch {
			note = fmt.Sprintf("%.1fx gob; %s", c.TuplesPerSec/gobRate, note)
		}
		exact, once := "-", "-"
		if c.Kind == ThroughputRuntime {
			exact, once = fmt.Sprint(c.AccountingExact), fmt.Sprint(c.ExactlyOnce)
		}
		fmt.Fprintf(&b, "%-8s %-6s %6d %9d %9.3f %12.0f %8.1f %6s %6s %s\n",
			c.Kind, c.Codec, c.Batch, c.Tuples, c.Seconds, c.TuplesPerSec, c.BytesPerTuple, exact, once, note)
	}
	b.WriteString("(wire = loopback TCP; the gate is batched-vs-gob tuples/s at batch >= 64; runtime = in-process topology with ledger + exactly-once checks)\n")
	return b.String()
}

// Markdown renders the sweep as a GitHub-flavored table.
func (r *ThroughputReport) Markdown() string {
	var b strings.Builder
	b.WriteString("| kind | codec | batch | tuples | tuples/sec | bytes/tuple | speedup | accounting | exactly-once | notes |\n")
	b.WriteString("|---|---|---:|---:|---:|---:|---:|:---:|:---:|---|\n")
	var gobRate float64
	for _, c := range r.Cells {
		if c.Kind == ThroughputWire && c.Codec == CodecNameGob && c.Error == "" {
			gobRate = c.TuplesPerSec
		}
	}
	for _, c := range r.Cells {
		note := c.Notes
		if c.Error != "" {
			note = "ERR " + c.Error
		}
		speedup := "—"
		if gobRate > 0 && c.Kind == ThroughputWire && c.Codec == CodecNameBatch {
			speedup = fmt.Sprintf("%.1f×", c.TuplesPerSec/gobRate)
		}
		exact, once := "—", "—"
		if c.Kind == ThroughputRuntime {
			exact, once = "✗", "✗"
			if c.AccountingExact {
				exact = "✓"
			}
			if c.ExactlyOnce {
				once = "✓"
			}
		}
		bpt := "—"
		if c.BytesPerTuple > 0 {
			bpt = fmt.Sprintf("%.1f", c.BytesPerTuple)
		}
		fmt.Fprintf(&b, "| %s | %s | %d | %d | %.0f | %s | %s | %s | %s | %s |\n",
			c.Kind, c.Codec, c.Batch, c.Tuples, c.TuplesPerSec, bpt, speedup, exact, once, note)
	}
	b.WriteString("\n*wire = loopback TCP, persistent connection; speedup is batched tuples/sec over the per-tuple gob baseline; runtime cells check the exact ledger and exactly-once execution with the batched plane on.*\n")
	return b.String()
}
