package bench

import (
	"strings"
	"testing"

	"sr3/internal/metrics"
)

// TestSteadyStateSmall: a scaled-down steady run must produce plausible
// rates and a single scrape carrying runtime, ring and recovery families,
// all labeled by node.
func TestSteadyStateSmall(t *testing.T) {
	cr := metrics.NewClusterRegistry()
	rep, err := SteadyState(SteadyConfig{Tuples: 2000, RingSize: 16, Lookups: 32, Cluster: cr})
	if err != nil {
		t.Fatal(err)
	}
	t.Log(rep.Format())
	if rep.DisabledRate <= 0 || rep.InstrumentedRate <= 0 {
		t.Fatalf("implausible rates: %+v", rep)
	}
	var b strings.Builder
	if err := cr.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	scrape := b.String()
	for _, want := range []string{
		"sr3_stream_tuples_in_total{node=\"runtime\"}",
		"sr3_dht_routes_total{node=\"",
		"sr3_phase_recover_ns_count{node=\"recovery\"}",
	} {
		if !strings.Contains(scrape, want) {
			t.Fatalf("scrape missing %q", want)
		}
	}
}
