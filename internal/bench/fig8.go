package bench

import (
	"fmt"
	"sort"

	"sr3/internal/checkpoint"
	"sr3/internal/recovery"
	"sr3/internal/simnet"
)

// recoverySchemes are the four curves of Figs 8a/8b.
func recoveryTime(env *planEnv, sc Scenario, scheme string) (float64, error) {
	sim := sc.NewSim()
	switch scheme {
	case "checkpointing":
		b := simnet.NewPlanBuilder()
		checkpoint.PlanRecover(b, checkpoint.Spec{
			App:          "app",
			Node:         env.replacement.String(),
			StoreNode:    StoreNode,
			UpstreamNode: UpstreamNode,
			TotalBytes:   float64(env.placement.TotalLen),
			ReplayFactor: ReplayFactor,
			RouteDelay:   sc.RouteDelay,
		})
		res, err := sim.Run(b.Tasks())
		if err != nil {
			return 0, err
		}
		return res.Makespan, nil

	case "star", "line", "tree":
		p := recovery.NewPlanner()
		opts := recovery.DefaultOptions()
		switch scheme {
		case "star":
			p.Star(env.spec(sc), opts)
		case "line":
			opts.LinePathLength = 8
			p.Line(env.spec(sc), opts)
		case "tree":
			opts.TreeFanoutBit = 1
			opts.TreeBranchDepth = 8
			p.Tree(env.spec(sc), opts)
		}
		res, err := sim.Run(p.Tasks())
		if err != nil {
			return 0, err
		}
		return res.Makespan, nil
	}
	return 0, fmt.Errorf("bench: unknown scheme %q", scheme)
}

func fig8Recovery(figID string, sc Scenario) (Figure, error) {
	fig := Figure{
		ID:     figID,
		Title:  fmt.Sprintf("state recovery time vs state size (%s)", sc.Name),
		XLabel: "state MB",
		YLabel: "recovery time (s)",
	}
	schemes := []string{"checkpointing", "star", "line", "tree"}
	for _, scheme := range schemes {
		s := Series{Label: scheme}
		for _, mb := range StateSizesMB {
			env, err := newPlanEnv(envConfig{
				seed:       42,
				totalBytes: mb * MB,
				shards:     16,
				replicas:   2,
			})
			if err != nil {
				return Figure{}, fmt.Errorf("fig %s: %w", figID, err)
			}
			y, err := recoveryTime(env, sc, scheme)
			if err != nil {
				return Figure{}, fmt.Errorf("fig %s %s %dMB: %w", figID, scheme, mb, err)
			}
			s.X = append(s.X, float64(mb))
			s.Y = append(s.Y, y)
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// Fig8a regenerates Fig 8a: recovery time by state size, no bandwidth
// constraint.
func Fig8a() (Figure, error) { return fig8Recovery("fig8a", Unconstrained()) }

// Fig8b regenerates Fig 8b: recovery time by state size under the
// 100 Mb/s upload constraint.
func Fig8b() (Figure, error) { return fig8Recovery("fig8b", Constrained()) }

// Fig8c regenerates Fig 8c: state save time by state size (serial
// leaf-set writes vs one remote checkpoint write).
func Fig8c() (Figure, error) {
	sc := SaveScenario()
	fig := Figure{
		ID:     "fig8c",
		Title:  "state save time vs state size",
		XLabel: "state MB",
		YLabel: "save time (s)",
	}
	ckpt := Series{Label: "checkpointing"}
	sr3 := Series{Label: "SR3_save"}
	for _, mb := range StateSizesMB {
		env, err := newPlanEnv(envConfig{
			seed:       42,
			totalBytes: mb * MB,
			shards:     16,
			replicas:   2,
			keepOwner:  true,
		})
		if err != nil {
			return Figure{}, err
		}

		// Checkpoint save: serialize + one remote write.
		sim := sc.NewSim()
		b := simnet.NewPlanBuilder()
		checkpoint.PlanSave(b, checkpoint.Spec{
			App:        "app",
			Node:       env.owner.String(),
			StoreNode:  StoreNode,
			TotalBytes: float64(mb * MB),
			RouteDelay: sc.RouteDelay,
		})
		res, err := sim.Run(b.Tasks())
		if err != nil {
			return Figure{}, err
		}
		ckpt.X = append(ckpt.X, float64(mb))
		ckpt.Y = append(ckpt.Y, res.Makespan)

		// SR3 save: split+replicate, then serial per-shard pushes with
		// per-write overhead.
		targets := saveTargets(env)
		p := recovery.NewPlanner()
		p.Save(recovery.SaveSpec{
			App:        "app",
			Owner:      env.owner.String(),
			TotalBytes: float64(mb * MB),
			Targets:    targets,
			RouteDelay: PushDelay,
		})
		sim2 := sc.NewSim()
		res2, err := sim2.Run(p.Tasks())
		if err != nil {
			return Figure{}, err
		}
		sr3.X = append(sr3.X, float64(mb))
		sr3.Y = append(sr3.Y, res2.Makespan)
	}
	fig.Series = []Series{ckpt, sr3}
	return fig, nil
}

// saveTargets lists one push per shard replica, in placement order —
// the serial write sequence of the prototype.
func saveTargets(env *planEnv) []recovery.PlanStage {
	p := env.placement
	per := float64(p.TotalLen) / float64(p.M)
	type entry struct {
		key  string
		node string
	}
	entries := make([]entry, 0, len(p.Loc))
	for k, nid := range p.Loc {
		entries = append(entries, entry{key: k.String(), node: nid.String()})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].key < entries[j].key })
	out := make([]recovery.PlanStage, 0, len(entries))
	for _, e := range entries {
		out = append(out, recovery.PlanStage{Node: e.node, Bytes: per})
	}
	return out
}
