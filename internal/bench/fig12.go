package bench

import (
	"fmt"
	"sort"

	"sr3/internal/checkpoint"
	"sr3/internal/dht"
	"sr3/internal/recovery"
	"sr3/internal/simnet"
)

// Fig 12a/12b model constants: idle CPU floor, and per-node memory
// baselines. The paper attributes checkpointing's extra memory to its
// coordination service (Zookeeper connections on every node, §5.4); SR3
// has no coordinator.
const (
	cpuIdlePct       = 15.0
	cpuSpanPct       = 75.0
	memBaseSR3       = 600.0 * MB
	memBaseCkpt      = 950.0 * MB
	keepAlivePeriodS = 30.0
)

// schemePlans builds the 64 MB recovery plan for one scheme and returns
// the tasks plus the simulation result.
func schemeRun(scheme string, sc Scenario) ([]simnet.Task, simnet.Result, error) {
	env, err := newPlanEnv(envConfig{
		seed:       42,
		totalBytes: 64 * MB,
		shards:     16,
		replicas:   2,
	})
	if err != nil {
		return nil, simnet.Result{}, err
	}
	var tasks []simnet.Task
	switch scheme {
	case "checkpointing":
		b := simnet.NewPlanBuilder()
		checkpoint.PlanRecover(b, checkpoint.Spec{
			App: "app", Node: env.replacement.String(),
			StoreNode: StoreNode, UpstreamNode: UpstreamNode,
			TotalBytes: 64 * MB, ReplayFactor: ReplayFactor, RouteDelay: sc.RouteDelay,
		})
		tasks = b.Tasks()
	case "SR3_star", "SR3_line", "SR3_tree":
		p := recovery.NewPlanner()
		opts := recovery.DefaultOptions()
		switch scheme {
		case "SR3_star":
			p.Star(env.spec(sc), opts)
		case "SR3_line":
			opts.LinePathLength = 8
			p.Line(env.spec(sc), opts)
		case "SR3_tree":
			opts.TreeFanoutBit = 2
			opts.TreeBranchDepth = 8
			p.Tree(env.spec(sc), opts)
		}
		tasks = p.Tasks()
	default:
		return nil, simnet.Result{}, fmt.Errorf("bench: unknown scheme %q", scheme)
	}
	res, err := sc.NewSim().Run(tasks)
	if err != nil {
		return nil, simnet.Result{}, err
	}
	return tasks, res, nil
}

var fig12Schemes = []string{"checkpointing", "SR3_star", "SR3_line", "SR3_tree"}

// Fig12a regenerates Fig 12a: per-node CPU usage over time during a
// 64 MB recovery, for checkpointing and the three SR3 mechanisms. CPU%
// is the mean utilization over the nodes participating in the scheme,
// mapped onto an idle floor — checkpointing concentrates all work on
// the standby (plus store), SR3 spreads it across providers.
func Fig12a() (Figure, error) {
	sc := Unconstrained()
	fig := Figure{
		ID:     "fig12a",
		Title:  "CPU usage during 64 MB recovery",
		XLabel: "time (s)",
		YLabel: "CPU usage (%)",
	}
	grid := timeGrid(0, 50, 11)
	for _, scheme := range fig12Schemes {
		_, res, err := schemeRun(scheme, sc)
		if err != nil {
			return Figure{}, err
		}
		participants := participantCount(res)
		s := Series{Label: scheme}
		for _, t := range grid {
			u := utilAt(res, t) / float64(participants)
			s.X = append(s.X, t)
			s.Y = append(s.Y, cpuIdlePct+cpuSpanPct*u)
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// Fig12b regenerates Fig 12b: per-node memory usage over time during a
// 64 MB recovery. Memory is a per-node baseline (higher for the
// checkpointing stack, which keeps a coordination service connected)
// plus the bytes each participating node has received so far, averaged
// over the busiest participant set.
func Fig12b() (Figure, error) {
	sc := Unconstrained()
	fig := Figure{
		ID:     "fig12b",
		Title:  "memory usage during 64 MB recovery",
		XLabel: "time (s)",
		YLabel: "memory (MB)",
	}
	grid := timeGrid(0, 50, 11)
	for _, scheme := range fig12Schemes {
		tasks, res, err := schemeRun(scheme, sc)
		if err != nil {
			return Figure{}, err
		}
		base := memBaseSR3
		if scheme == "checkpointing" {
			base = memBaseCkpt
		}
		s := Series{Label: scheme}
		for _, t := range grid {
			resident := maxResidentAt(tasks, res, t)
			s.X = append(s.X, t)
			s.Y = append(s.Y, (base+resident)/MB)
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// Fig12c regenerates Fig 12c: DHT maintenance traffic per node per
// second versus cluster size — measured from real keep-alive rounds on
// converged overlays (no state stored).
func Fig12c() (Figure, error) {
	fig := Figure{
		ID:     "fig12c",
		Title:  "overlay maintenance traffic per node",
		XLabel: "nodes",
		YLabel: "bytes per node per second",
	}
	s := Series{Label: "SR3 overlay"}
	for _, n := range []int{20, 40, 80, 160, 320, 640, 1280} {
		ring, err := dht.BuildConverged(dht.DefaultConfig(), 11, n)
		if err != nil {
			return Figure{}, err
		}
		ring.Net.ResetTraffic()
		ring.MaintenanceRound()
		tr := ring.Net.Traffic()
		var total int64
		for _, b := range tr.BytesSentPerNode {
			total += b
		}
		perNodePerSec := float64(total) / float64(n) / keepAlivePeriodS
		s.X = append(s.X, float64(n))
		s.Y = append(s.Y, perNodePerSec)
	}
	fig.Series = []Series{s}
	return fig, nil
}

// --- helpers over simnet results ---

func timeGrid(lo, hi float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = lo + (hi-lo)*float64(i)/float64(n-1)
	}
	return out
}

// participantCount counts distinct nodes that were ever busy.
func participantCount(res simnet.Result) int {
	seen := make(map[string]bool)
	for _, sample := range res.Util {
		for node := range sample.PerNode {
			seen[node] = true
		}
	}
	if len(seen) == 0 {
		return 1
	}
	return len(seen)
}

// utilAt sums instantaneous utilization across nodes at time t (0 after
// the run completes).
func utilAt(res simnet.Result, t float64) float64 {
	if len(res.Util) == 0 || t > res.Makespan {
		return 0
	}
	idx := sort.Search(len(res.Util), func(i int) bool { return res.Util[i].Time > t }) - 1
	if idx < 0 {
		idx = 0
	}
	total := 0.0
	for _, u := range res.Util[idx].PerNode {
		total += u
	}
	return total
}

// maxResidentAt returns the largest per-node received-byte total at time
// t, interpolating transfer progress linearly between start and finish.
func maxResidentAt(tasks []simnet.Task, res simnet.Result, t float64) float64 {
	resident := make(map[string]float64)
	for _, task := range tasks {
		if task.Kind != simnet.TransferTask {
			continue
		}
		start, okS := res.Start[task.ID]
		finish, okF := res.Finish[task.ID]
		if !okS || !okF {
			continue
		}
		switch {
		case t <= start:
			// nothing received yet
		case t >= finish:
			resident[task.To] += task.Bytes
		default:
			frac := (t - start) / (finish - start)
			resident[task.To] += task.Bytes * frac
		}
	}
	max := 0.0
	for _, v := range resident {
		if v > max {
			max = v
		}
	}
	return max
}
