// Package bench regenerates every table and figure of the paper's
// evaluation (§5). Each FigXX function runs one experiment and returns
// the same series the paper plots; cmd/sr3bench prints them and
// bench_test.go wraps them as Go benchmarks.
//
// Timing experiments run recovery/save plans derived from real DHT shard
// placements through the simnet fluid-flow model under the calibration
// below; scalability and overhead experiments (Figs 11, 12c) measure the
// real data structures and real maintenance traffic.
package bench

import "sr3/internal/simnet"

// Calibration. The paper's testbed is 50 VMs (4 cores, Gigabit) emulating
// up to 5,000 JVM-hosted Pastry nodes, with `tc` shaping uploads to
// 100 Mb/s per server in the constrained scenario. Two consequences drive
// the absolute numbers:
//
//   - The per-node software path (JVM serialization, Pastry transport,
//     state merge) moves bytes at ~10 MB/s — this, not the Gigabit link,
//     dominates unconstrained recovery (the paper reports tens of
//     seconds for 128 MB).
//   - Each VM hosts ~100 emulated nodes, so a node's effective share of
//     a traffic-shaped 100 Mb/s uplink is a few MB/s at best; we use
//     2 MB/s per node in the constrained scenario.
//
// EXPERIMENTS.md discusses the calibration and its limits.
const (
	// LanBps is the unconstrained per-node link rate (1 Gb/s).
	LanBps = 125e6
	// SoftwareBps is the per-node software-path (serialize/merge) rate.
	SoftwareBps = 10e6
	// SaveBps is the software rate for state saving (splitting and
	// replicating are memcpy-like, cheaper than merge/deserialize).
	SaveBps = 40e6
	// ConstrainedBps is a node's effective link share under `tc` shaping.
	ConstrainedBps = 2e6
	// RemoteStoreBps is the shared remote store's (HDFS-like) per-client
	// throughput.
	RemoteStoreBps = 4e6
	// ReplayFactor scales the upstream volume replayed after a
	// checkpoint restore, relative to state size.
	ReplayFactor = 1.0
	// RouteDelayFree and RouteDelayConstrained model per-message DHT
	// routing and connection setup latency.
	RouteDelayFree        = 0.25
	RouteDelayConstrained = 0.4
	// PushDelay is the per-shard write overhead during SR3 save (serial
	// leaf-set writes; the reason SR3 saving loses on small states,
	// Fig 8c).
	PushDelay = 0.15
	// FailureDetectDelay is the timeout paid per dead replica holder
	// probed during recovery provider selection (Fig 10).
	FailureDetectDelay = 1.0
	// FlowPenalty inflates a receiver's ingest by 1+0.15·ln(flows) when
	// many providers converge on it — star's centralized bottleneck.
	FlowPenalty = 0.15
	// StoreForwardBeta is line recovery's per-link re-buffering fraction.
	StoreForwardBeta = 0.1
)

// Scenario bundles one network environment.
type Scenario struct {
	Name       string
	Node       simnet.Res
	Store      simnet.Res
	RouteDelay float64
}

// Unconstrained is the Fig 8a environment: Gigabit links, software path
// dominant.
func Unconstrained() Scenario {
	return Scenario{
		Name:       "unconstrained",
		Node:       simnet.Res{UpBps: LanBps, DownBps: LanBps, ComputeBps: SoftwareBps},
		Store:      simnet.Res{UpBps: RemoteStoreBps, DownBps: RemoteStoreBps, ComputeBps: 1e15},
		RouteDelay: RouteDelayFree,
	}
}

// Constrained is the Fig 8b environment: 100 Mb/s shaped uplinks shared
// by co-located emulated nodes.
func Constrained() Scenario {
	return Scenario{
		Name:       "constrained",
		Node:       simnet.Res{UpBps: ConstrainedBps, DownBps: ConstrainedBps, ComputeBps: SoftwareBps},
		Store:      simnet.Res{UpBps: ConstrainedBps, DownBps: ConstrainedBps, ComputeBps: 1e15},
		RouteDelay: RouteDelayConstrained,
	}
}

// SaveScenario is the Fig 8c environment (memcpy-grade compute path).
func SaveScenario() Scenario {
	s := Unconstrained()
	s.Node.ComputeBps = SaveBps
	return s
}

// NewSim builds a simulator for the scenario, with the remote store node
// (StoreNode) configured.
func (s Scenario) NewSim() *simnet.Sim {
	sim := simnet.NewSim(s.Node)
	sim.SetNode(StoreNode, s.Store)
	return sim
}

// Simulated special node names.
const (
	// StoreNode is the remote checkpoint store.
	StoreNode = "remote-store"
	// UpstreamNode replays buffered records during checkpoint recovery.
	UpstreamNode = "upstream"
)

// MB is 2^20 bytes.
const MB = 1 << 20

// StateSizesMB is the Fig 8 sweep.
var StateSizesMB = []int{8, 16, 32, 64, 128}
