package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"strings"
	"time"

	"sr3/internal/dht"
	"sr3/internal/id"
	"sr3/internal/metrics"
	"sr3/internal/nettransport"
	"sr3/internal/recovery"
)

// The dataplane experiment measures the recovery data plane end to end
// over real loopback TCP sockets — actual bytes through actual kernels,
// not the virtual-time planner the figure benchmarks use. It sweeps state
// size × mechanism × fetch concurrency and reports recovery goodput, with
// Options.SequentialFetch as the A/B control: one fetch in flight, shard
// data gob-encoded inline — the pre-pipelining wire path.

// DataPlaneConfig parametrizes the sweep. The zero value selects the
// committed BENCH_dataplane.json configuration.
type DataPlaneConfig struct {
	// SizesMB are the state sizes swept, in MB (1e6 bytes).
	SizesMB []int
	// Concurrencies are the fetch-pool widths swept alongside the
	// sequential baseline.
	Concurrencies []int
	// Nodes is the TCP overlay size.
	Nodes int
	// M, R are the shard count and replication factor.
	M, R int
	// Trials is how many times each cell runs; the fastest trial is
	// reported. The default is 1 — a cold one-shot recovery, matching
	// production (recovery happens once, right after a failure, with no
	// warmed heap). Best-of-N>1 warms the allocator across trials, which
	// flatters the gob baseline by amortizing exactly the alloc/GC churn
	// the pooled zero-copy path was built to remove.
	Trials int
}

func (c DataPlaneConfig) withDefaults() DataPlaneConfig {
	if len(c.SizesMB) == 0 {
		c.SizesMB = []int{8, 64}
	}
	if len(c.Concurrencies) == 0 {
		c.Concurrencies = []int{4, 8}
	}
	if c.Nodes == 0 {
		c.Nodes = 14
	}
	if c.M == 0 {
		c.M = 8
	}
	if c.R == 0 {
		c.R = 3
	}
	if c.Trials == 0 {
		c.Trials = 1
	}
	return c
}

// DataPlaneRun is one cell of the sweep.
type DataPlaneRun struct {
	StateMB     int     `json:"state_mb"`
	Mechanism   string  `json:"mechanism"`
	Mode        string  `json:"mode"` // "seq" or "cN"
	Concurrency int     `json:"concurrency"`
	Seconds     float64 `json:"seconds"`
	GoodputMBps float64 `json:"goodput_mbps"`
	// SpeedupVsSeq is this run's goodput over the same (size, mechanism)
	// sequential baseline; 1.0 for the baseline itself.
	SpeedupVsSeq float64 `json:"speedup_vs_seq"`
	// BytesMoved is merged state payload delivered to the replacement.
	BytesMoved int64 `json:"bytes_moved"`
	// RawWireBytes / RawFrames are the transport's chunked-body counters
	// for this run (zero in sequential mode, where data rides gob).
	RawWireBytes int64   `json:"raw_wire_bytes"`
	RawFrames    int64   `json:"raw_frames"`
	PoolHitRate  float64 `json:"pool_hit_rate"`
}

// DataPlaneReport is the full sweep, serialized to BENCH_dataplane.json.
type DataPlaneReport struct {
	GeneratedBy string         `json:"generated_by"`
	Transport   string         `json:"transport"`
	Nodes       int            `json:"nodes"`
	M           int            `json:"m"`
	R           int            `json:"r"`
	Runs        []DataPlaneRun `json:"runs"`
}

// JSON renders the report for the committed artifact.
func (r DataPlaneReport) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Format renders the report as an aligned text table.
func (r DataPlaneReport) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "recovery goodput over %s, %d nodes, m=%d r=%d\n", r.Transport, r.Nodes, r.M, r.R)
	fmt.Fprintf(&b, "%-9s %-6s %-6s %12s %14s %10s %9s\n",
		"state", "mech", "mode", "seconds", "goodput MB/s", "speedup", "pool hit")
	for _, run := range r.Runs {
		fmt.Fprintf(&b, "%-9s %-6s %-6s %12.3f %14.1f %9.2fx %8.0f%%\n",
			fmt.Sprintf("%dMB", run.StateMB), run.Mechanism, run.Mode,
			run.Seconds, run.GoodputMBps, run.SpeedupVsSeq, 100*run.PoolHitRate)
	}
	return b.String()
}

// dataPlaneEnv is one live TCP overlay with a saved state.
type dataPlaneEnv struct {
	net      *nettransport.Network
	replMgr  *recovery.Manager
	snapshot []byte
}

func (e *dataPlaneEnv) close() { e.net.Close() }

// newDataPlaneEnv boots a TCP overlay of cfg.Nodes DHT nodes, saves a
// stateMB-sized snapshot from one owner (m×r sharding over its leaf set),
// then crashes the owner so every later recovery runs the real lost-state
// path over the wire.
func newDataPlaneEnv(cfg DataPlaneConfig, stateMB int) (*dataPlaneEnv, error) {
	dht.RegisterWire()
	recovery.RegisterWire()
	n := nettransport.New()
	dcfg := dht.Config{LeafSetSize: 8, KVReplicas: 2}
	all := make([]*dht.Node, 0, cfg.Nodes)
	mgrs := make(map[id.ID]*recovery.Manager, cfg.Nodes)
	for i := 0; i < cfg.Nodes; i++ {
		node, err := dht.NewNode(id.HashKey(fmt.Sprintf("dataplane-%d-%d", stateMB, i)), n, dcfg)
		if err != nil {
			n.Close()
			return nil, err
		}
		if i == 0 {
			node.Bootstrap()
		} else if err := node.Join(all[0].ID()); err != nil {
			n.Close()
			return nil, fmt.Errorf("join node %d: %w", i, err)
		}
		mgrs[node.ID()] = recovery.NewManager(node)
		all = append(all, node)
	}

	snap := make([]byte, stateMB*1_000_000)
	rand.New(rand.NewSource(int64(stateMB))).Read(snap)
	owner := all[len(all)/2]
	mgr := mgrs[owner.ID()]
	if _, err := mgr.Save("dataplane-app", snap, cfg.M, cfg.R, mgr.NextVersion(1)); err != nil {
		n.Close()
		return nil, fmt.Errorf("save: %w", err)
	}

	n.Fail(owner.ID())
	var replacement *dht.Node
	for _, node := range all {
		if node.ID() != owner.ID() {
			node.MaintenanceTick()
			if replacement == nil {
				replacement = node
			}
		}
	}
	return &dataPlaneEnv{net: n, replMgr: mgrs[replacement.ID()], snapshot: snap}, nil
}

// DataPlaneSweep runs the full experiment and returns the report.
func DataPlaneSweep(cfg DataPlaneConfig) (DataPlaneReport, error) {
	cfg = cfg.withDefaults()
	report := DataPlaneReport{
		GeneratedBy: "sr3bench dataplane",
		Transport:   "loopback TCP (nettransport)",
		Nodes:       cfg.Nodes,
		M:           cfg.M,
		R:           cfg.R,
	}
	type sweepMode struct {
		name string
		conc int
		seq  bool
	}
	modes := []sweepMode{{"seq", 1, true}}
	for _, c := range cfg.Concurrencies {
		modes = append(modes, sweepMode{fmt.Sprintf("c%d", c), c, false})
	}
	mechs := []recovery.Mechanism{recovery.Star, recovery.Line, recovery.Tree}
	for _, sizeMB := range cfg.SizesMB {
		env, err := newDataPlaneEnv(cfg, sizeMB)
		if err != nil {
			return report, fmt.Errorf("dataplane %dMB: %w", sizeMB, err)
		}
		for _, mech := range mechs {
			var baseline metrics.DataPlaneStats
			for _, mode := range modes {
				opts := recovery.DefaultOptions()
				opts.SequentialFetch = mode.seq
				opts.FetchConcurrency = mode.conc
				if mode.seq {
					opts.PipelineDepth = 1
				}
				var stats metrics.DataPlaneStats
				var wire nettransport.DataPlaneStats
				for trial := 0; trial < cfg.Trials; trial++ {
					before := env.net.DataPlane()
					start := time.Now()
					res, err := env.replMgr.RecoverDirect("dataplane-app", mech, opts)
					elapsed := time.Since(start)
					if err != nil {
						env.close()
						return report, fmt.Errorf("dataplane %dMB %s %s: %w", sizeMB, mech, mode.name, err)
					}
					if !bytes.Equal(res.Snapshot, env.snapshot) {
						env.close()
						return report, fmt.Errorf("dataplane %dMB %s %s: recovered state differs", sizeMB, mech, mode.name)
					}
					after := env.net.DataPlane()
					cur := metrics.DataPlaneStats{
						BytesMoved:       int64(len(res.Snapshot)),
						Seconds:          elapsed.Seconds(),
						FetchConcurrency: mode.conc,
						PoolHits:         after.Pool.Hits - before.Pool.Hits,
						PoolMisses:       after.Pool.Misses - before.Pool.Misses,
					}
					if trial == 0 || cur.Seconds < stats.Seconds {
						stats = cur
						wire = nettransport.DataPlaneStats{
							RawBytes:  after.RawBytes - before.RawBytes,
							RawFrames: after.RawFrames - before.RawFrames,
						}
					}
				}
				if mode.seq {
					baseline = stats
				}
				run := DataPlaneRun{
					StateMB:      sizeMB,
					Mechanism:    mech.String(),
					Mode:         mode.name,
					Concurrency:  mode.conc,
					Seconds:      stats.Seconds,
					GoodputMBps:  stats.GoodputMBps(),
					SpeedupVsSeq: stats.Speedup(baseline),
					BytesMoved:   stats.BytesMoved,
					RawWireBytes: wire.RawBytes,
					RawFrames:    wire.RawFrames,
					PoolHitRate:  stats.PoolHitRate(),
				}
				report.Runs = append(report.Runs, run)
			}
		}
		env.close()
	}
	return report, nil
}
