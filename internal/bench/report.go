// Markdown rendering of committed benchmark artifacts, for splicing into
// EXPERIMENTS.md (`sr3bench matrix-report`).
package bench

import (
	"fmt"
	"strings"
)

// Markdown renders the fault-recovery matrix as a GitHub-flavored table.
func (r *MatrixReport) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "| scenario | mechanism | load | tuples | detect | recover | lag p99 | lag max | exactly-once | dup | miss | notes |\n")
	b.WriteString("|---|---|---|---:|---:|---:|---:|---:|:---:|---:|---:|---|\n")
	for _, c := range r.Cells {
		note := c.Notes
		if c.Error != "" {
			note = "ERR " + c.Error
		}
		exact := "✗"
		if c.ExactlyOnce {
			exact = "✓"
		}
		fmt.Fprintf(&b, "| %s | %s | %s | %d | %.1f ms | %.1f ms | %.1f ms | %.1f ms | %s | %d | %d | %s |\n",
			c.Scenario, c.Mechanism, c.Load, c.Tuples, c.DetectMs, c.RecoverMs,
			c.LagP99Ms, c.LagMaxMs, exact, c.Duplicates, c.Missing, note)
	}
	b.WriteString("\n*detect = fault→verdict (0 when manually triggered); exactly-once = no loss + state byte-exact; dup = replay re-deliveries absorbed by the dedupe sink.*\n")
	return b.String()
}

// Markdown renders the overload sweep as a GitHub-flavored table.
func (r *OverloadReport) Markdown() string {
	var b strings.Builder
	b.WriteString("| scenario | load | offered | admitted | shed | shed % | queue hi/cap | recover | drain | exactly-once (admitted) | retry rounds | suppressed | notes |\n")
	b.WriteString("|---|---|---:|---:|---:|---:|---:|---:|---:|:---:|---:|---:|---|\n")
	for _, c := range r.Cells {
		note := c.Notes
		if c.Error != "" {
			note = "ERR " + c.Error
		}
		exact := "—"
		if c.Scenario != OverloadRetryStorm {
			exact = "✗"
			if c.ExactlyOnceAdmitted {
				exact = "✓"
			}
		}
		load := c.Load
		if c.Scenario == OverloadRetryStorm {
			if c.Budgeted {
				load = "budgeted"
			} else {
				load = "unbudgeted"
			}
		}
		fmt.Fprintf(&b, "| %s | %s | %d | %d | %d | %.1f%% | %d/%d | %.1f ms | %.1f ms | %s | %d | %d | %s |\n",
			c.Scenario, load, c.Offered, c.Admitted, c.Shed, 100*c.ShedFraction,
			c.QueueHighWater, c.QueueCap, c.RecoverMs, c.LagDrainMs, exact,
			c.RetryRounds, c.RetrySuppressed, note)
	}
	b.WriteString("\n*offered = admitted + shed holds exactly per cell; queue hi never exceeds cap; exactly-once covers admitted tuples only (shed tuples are accounted, not delivered).*\n")
	return b.String()
}

// SpliceMarked replaces the region between begin/end marker lines in doc
// with body (markers kept). When the markers are absent they are
// appended, so the first splice bootstraps the section.
func SpliceMarked(doc, begin, end, body string) string {
	bi := strings.Index(doc, begin)
	ei := strings.Index(doc, end)
	block := begin + "\n" + body + end
	if bi < 0 || ei < 0 || ei < bi {
		if !strings.HasSuffix(doc, "\n") && doc != "" {
			doc += "\n"
		}
		return doc + "\n" + block + "\n"
	}
	return doc[:bi] + block + doc[ei+len(end):]
}
