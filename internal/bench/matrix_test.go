package bench

import (
	"os"
	"testing"
)

// TestMatrixCrashUnderIngestExactlyOnce is the acceptance gate for the
// ingest family: a crash while the spout keeps pushing must lose nothing
// — the dedupe checker sees every sequence number exactly once and the
// recovered operator state is exact.
func TestMatrixCrashUnderIngestExactlyOnce(t *testing.T) {
	for _, mech := range []string{MechSR3Star, MechCheckpoint} {
		mech := mech
		t.Run(mech, func(t *testing.T) {
			cell, err := RunMatrixCell(MatrixCellSpec{
				Scenario: ScenarioCrashIngest, Mechanism: mech, Load: "sustained-2k",
			}, 7001)
			if err != nil {
				t.Fatalf("cell: %v", err)
			}
			if cell.Missing != 0 {
				t.Fatalf("missing = %d, want 0 (dup=%d)", cell.Missing, cell.Duplicates)
			}
			if !cell.StateExact {
				t.Fatal("recovered operator state not exact")
			}
			if !cell.ExactlyOnce {
				t.Fatal("exactly-once verdict false")
			}
			if cell.RecoverMs <= 0 {
				t.Fatalf("recover_ms = %v, want > 0", cell.RecoverMs)
			}
		})
	}
}

// TestMatrixSlowNodeNoSpuriousKill is the gray-failure acceptance gate:
// the slow-node cell must take the degraded path (demote + reroute) and
// never kill the slow-but-alive holder.
func TestMatrixSlowNodeNoSpuriousKill(t *testing.T) {
	cell, err := RunMatrixCell(MatrixCellSpec{
		Scenario: ScenarioSlowNode, Mechanism: MechSR3Star, Load: "burst",
	}, 7101)
	if err != nil {
		t.Fatalf("cell: %v", err)
	}
	if cell.SpuriousKill {
		t.Fatal("slow-but-alive holder was killed")
	}
	if !cell.DegradedPath {
		t.Fatal("degraded path not taken (no gray.degraded for the holder)")
	}
	if !cell.ExactlyOnce {
		t.Fatalf("exactly-once verdict false (missing=%d state_exact=%v)",
			cell.Missing, cell.StateExact)
	}
	if cell.DetectMs <= 0 || cell.RecoverMs <= cell.DetectMs {
		t.Fatalf("latencies inconsistent: detect=%vms recover=%vms", cell.DetectMs, cell.RecoverMs)
	}
}

// TestMatrixPartitionDuringRecovery: the scheduled partition fires on the
// first collect message and heals; failover retries must complete the
// recovery anyway.
func TestMatrixPartitionDuringRecovery(t *testing.T) {
	cell, err := RunMatrixCell(MatrixCellSpec{
		Scenario: ScenarioPartition, Mechanism: MechSR3Tree, Load: "burst",
	}, 7201)
	if err != nil {
		t.Fatalf("cell: %v", err)
	}
	if !cell.ExactlyOnce {
		t.Fatalf("exactly-once verdict false (missing=%d)", cell.Missing)
	}
}

// TestMatrixTinyPreset runs the CI smoke subset end to end and validates
// the produced report against the schema round-trip.
func TestMatrixTinyPreset(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix sweep in -short mode")
	}
	specs, err := MatrixPreset("tiny")
	if err != nil {
		t.Fatal(err)
	}
	report := MatrixSweep(specs)
	for _, c := range report.Cells {
		if c.Error != "" {
			t.Fatalf("cell %s/%s: %s", c.Scenario, c.Mechanism, c.Error)
		}
		if !c.ExactlyOnce {
			t.Fatalf("cell %s/%s not exactly-once (missing=%d)", c.Scenario, c.Mechanism, c.Missing)
		}
		if c.Scenario == ScenarioSlowNode && (c.SpuriousKill || !c.DegradedPath) {
			t.Fatalf("cell %s/%s: spurious_kill=%v degraded_path=%v",
				c.Scenario, c.Mechanism, c.SpuriousKill, c.DegradedPath)
		}
	}
	blob, err := report.JSON()
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := ValidateMatrix(blob)
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed.Cells) != len(specs) {
		t.Fatalf("round-trip cells = %d, want %d", len(parsed.Cells), len(specs))
	}
}

// TestCommittedMatrixArtifact schema-validates the committed
// BENCH_matrix.json so a stale or hand-edited artifact fails CI.
func TestCommittedMatrixArtifact(t *testing.T) {
	blob, err := os.ReadFile("../../BENCH_matrix.json")
	if err != nil {
		t.Fatalf("committed artifact: %v", err)
	}
	report, err := ValidateMatrix(blob)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Cells) < 12 {
		t.Fatalf("committed matrix has %d cells, want >= 12", len(report.Cells))
	}
	scenarios := map[string]bool{}
	for _, c := range report.Cells {
		scenarios[c.Scenario] = true
		if c.Error != "" {
			t.Errorf("cell %s/%s/%s carries an error: %s", c.Scenario, c.Mechanism, c.Load, c.Error)
			continue
		}
		if !c.ExactlyOnce {
			t.Errorf("cell %s/%s/%s not exactly-once (missing=%d state_exact=%v)",
				c.Scenario, c.Mechanism, c.Load, c.Missing, c.StateExact)
		}
		if c.Scenario == ScenarioSlowNode {
			if c.SpuriousKill {
				t.Errorf("cell %s/%s: slow node was spuriously killed", c.Scenario, c.Mechanism)
			}
			if !c.DegradedPath {
				t.Errorf("cell %s/%s: degraded path not taken", c.Scenario, c.Mechanism)
			}
		}
	}
	for _, want := range []string{ScenarioCrash, ScenarioCrash2, ScenarioPartition,
		ScenarioSlowNode, ScenarioFlakyLink, ScenarioCrashIngest} {
		if !scenarios[want] {
			t.Errorf("committed matrix missing scenario %q", want)
		}
	}
}
