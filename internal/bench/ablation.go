package bench

import (
	"fmt"

	"sr3/internal/recovery"
	"sr3/internal/simnet"
)

// Ablation experiments isolate the model terms behind the headline
// results (DESIGN.md §6): what each design choice contributes to the
// figures.

// AblationSpeculation measures straggler impact on star recovery of a
// 64 MB state: one provider's upload collapses to slowRate; with
// speculation the replacement hedges that stage from a backup replica
// after SpeculationDelay (paper §6 future work).
func AblationSpeculation() (Figure, error) {
	sc := Unconstrained()
	fig := Figure{
		ID:     "ablation-speculation",
		Title:  "star recovery of 64 MB with one straggling provider",
		XLabel: "straggler slowdown (x)",
		YLabel: "recovery time (s)",
	}
	baseline := Series{Label: "no speculation"}
	hedged := Series{Label: "speculation"}
	for _, slowdown := range []float64{1, 4, 16, 64} {
		for _, speculate := range []bool{false, true} {
			env, err := newPlanEnv(envConfig{
				seed: 42, totalBytes: 64 * MB, shards: 16, replicas: 2,
			})
			if err != nil {
				return Figure{}, err
			}
			spec := env.spec(sc)
			spec.SpeculationDelay = 2.0
			// Mark the largest stage as the straggler and give it a
			// backup (any other provider).
			big := 0
			for i := range spec.Stages {
				if spec.Stages[i].Bytes > spec.Stages[big].Bytes {
					big = i
				}
			}
			spec.Stages[big].Straggler = true
			spec.Stages[big].Backup = spec.Stages[(big+1)%len(spec.Stages)].Node

			sim := sc.NewSim()
			sim.SetNode(spec.Stages[big].Node, simnet.Res{
				UpBps:      LanBps / slowdown,
				DownBps:    LanBps,
				ComputeBps: SoftwareBps / slowdown,
			})
			opts := recovery.DefaultOptions()
			opts.Speculate = speculate
			p := recovery.NewPlanner()
			p.Star(spec, opts)
			res, err := sim.Run(p.Tasks())
			if err != nil {
				return Figure{}, err
			}
			if speculate {
				hedged.X = append(hedged.X, slowdown)
				hedged.Y = append(hedged.Y, res.Makespan)
			} else {
				baseline.X = append(baseline.X, slowdown)
				baseline.Y = append(baseline.Y, res.Makespan)
			}
		}
	}
	fig.Series = []Series{baseline, hedged}
	return fig, nil
}

// AblationSpeculationLineTree measures straggler hedging for the line
// and tree mechanisms on a 64 MB state: with Options.Speculate the
// planner lifts the straggling provider out of the chain/tree and
// fetches its shards star-style from a backup replica after
// SpeculationDelay — the same shape the executor's failover ladder takes
// when a stage dies mid-collection.
func AblationSpeculationLineTree() (Figure, error) {
	sc := Unconstrained()
	fig := Figure{
		ID:     "ablation-speculation-linetree",
		Title:  "line/tree recovery of 64 MB with one straggling provider",
		XLabel: "straggler slowdown (x)",
		YLabel: "recovery time (s)",
	}
	for _, scheme := range []string{"line", "tree"} {
		for _, speculate := range []bool{false, true} {
			label := scheme + ", no speculation"
			if speculate {
				label = scheme + ", speculation"
			}
			s := Series{Label: label}
			for _, slowdown := range []float64{1, 4, 16, 64} {
				env, err := newPlanEnv(envConfig{
					seed: 42, totalBytes: 64 * MB, shards: 16, replicas: 2,
				})
				if err != nil {
					return Figure{}, err
				}
				spec := env.spec(sc)
				spec.SpeculationDelay = 2.0
				big := 0
				for i := range spec.Stages {
					if spec.Stages[i].Bytes > spec.Stages[big].Bytes {
						big = i
					}
				}
				spec.Stages[big].Straggler = true
				spec.Stages[big].Backup = spec.Stages[(big+1)%len(spec.Stages)].Node

				sim := sc.NewSim()
				sim.SetNode(spec.Stages[big].Node, simnet.Res{
					UpBps:      LanBps / slowdown,
					DownBps:    LanBps,
					ComputeBps: SoftwareBps / slowdown,
				})
				opts := recovery.DefaultOptions()
				opts.Speculate = speculate
				p := recovery.NewPlanner()
				if scheme == "line" {
					p.Line(spec, opts)
				} else {
					p.Tree(spec, opts)
				}
				res, err := sim.Run(p.Tasks())
				if err != nil {
					return Figure{}, err
				}
				s.X = append(s.X, slowdown)
				s.Y = append(s.Y, res.Makespan)
			}
			fig.Series = append(fig.Series, s)
		}
	}
	return fig, nil
}

// AblationFlowPenalty re-runs the constrained 128 MB recovery with the
// star flow penalty switched off, isolating how much of Fig 8b's
// star-degradation the concurrent-inbound-connection model contributes.
func AblationFlowPenalty() (Figure, error) {
	sc := Constrained()
	fig := Figure{
		ID:     "ablation-flowpenalty",
		Title:  "constrained 128 MB star recovery vs flow-penalty coefficient",
		XLabel: "flow penalty coefficient",
		YLabel: "recovery time (s)",
	}
	s := Series{Label: "star"}
	for _, c := range []float64{0, 0.05, 0.10, 0.15, 0.25} {
		env, err := newPlanEnv(envConfig{
			seed: 42, totalBytes: 128 * MB, shards: 16, replicas: 2,
		})
		if err != nil {
			return Figure{}, err
		}
		spec := env.spec(sc)
		spec.FlowPenalty = c
		p := recovery.NewPlanner()
		p.Star(spec, recovery.DefaultOptions())
		res, err := sc.NewSim().Run(p.Tasks())
		if err != nil {
			return Figure{}, err
		}
		s.X = append(s.X, c)
		s.Y = append(s.Y, res.Makespan)
	}
	fig.Series = []Series{s}
	return fig, nil
}

// AblationMechanismDefaults compares the three mechanisms at their
// selection-heuristic defaults across both scenarios at 64 MB —
// validating that the §3.7 decision table picks the winner in each cell.
func AblationMechanismDefaults() (Figure, error) {
	fig := Figure{
		ID:     "ablation-selection",
		Title:  "64 MB recovery per mechanism in both environments",
		XLabel: "scenario (0 = unconstrained, 1 = constrained)",
		YLabel: "recovery time (s)",
	}
	for _, scheme := range []string{"star", "line", "tree"} {
		s := Series{Label: scheme}
		for i, sc := range []Scenario{Unconstrained(), Constrained()} {
			env, err := newPlanEnv(envConfig{
				seed: 42, totalBytes: 64 * MB, shards: 16, replicas: 2,
			})
			if err != nil {
				return Figure{}, err
			}
			y, err := recoveryTime(env, sc, scheme)
			if err != nil {
				return Figure{}, fmt.Errorf("ablation %s: %w", scheme, err)
			}
			s.X = append(s.X, float64(i))
			s.Y = append(s.Y, y)
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}
