package bench

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"sr3/internal/detector"
	"sr3/internal/dht"
	"sr3/internal/metrics"
	"sr3/internal/recovery"
	"sr3/internal/shard"
	"sr3/internal/supervise"
)

// selfHealSetting is one cell of the self-heal sweep.
type selfHealSetting struct {
	heartbeat time.Duration
	threshold float64
}

// SelfHealReport measures the closed detection→supervise→repair loop:
// for each (heartbeat interval, φ threshold) setting a fresh supervised
// cluster is built, state owners are killed one at a time, and the
// supervisor must notice and heal each death with no manual trigger. The
// report aggregates detection latency (kill → verdict at the supervisor)
// and MTTR (kill → replication restored to r) per setting, exposing the
// paper-style trade-off: shorter heartbeats and lower thresholds detect
// faster but ride closer to false-positive territory.
func SelfHealReport() (string, error) {
	settings := []selfHealSetting{
		{5 * time.Millisecond, 8},
		{10 * time.Millisecond, 8},
		{20 * time.Millisecond, 8},
		{10 * time.Millisecond, 4},
		{10 * time.Millisecond, 12},
	}
	const kills = 3

	var b strings.Builder
	fmt.Fprintf(&b, "self-heal: %d owner kills per setting on a 24-node supervised ring (φ-accrual detection, auto recovery, replica repair)\n", kills)
	fmt.Fprintf(&b, "%-10s %5s %8s %14s %14s %14s %14s %9s\n",
		"heartbeat", "phi", "healed", "detect-mean", "detect-p99", "mttr-mean", "mttr-p99", "failures")
	for _, set := range settings {
		stats, err := selfHealCell(set, kills)
		if err != nil {
			return "", fmt.Errorf("self-heal %v/phi=%g: %w", set.heartbeat, set.threshold, err)
		}
		dMean, _, dP99, _ := stats.DetectionSummary()
		mMean, _, mP99, _ := stats.MTTRSummary()
		fmt.Fprintf(&b, "%-10s %5g %8d %12.1fms %12.1fms %12.1fms %12.1fms %9d\n",
			set.heartbeat, set.threshold, stats.Samples(), dMean, dP99, mMean, mP99, stats.Failures)
	}
	fmt.Fprintf(&b, "(detect = kill→verdict at supervisor; mttr = kill→state recovered and re-replicated at r)\n")
	return b.String(), nil
}

// selfHealCell builds one supervised cluster and runs the kill loop.
func selfHealCell(set selfHealSetting, kills int) (metrics.SelfHealStats, error) {
	var stats metrics.SelfHealStats
	ring, err := dht.BuildConverged(dht.DefaultConfig(), 31, 24)
	if err != nil {
		return stats, err
	}
	cluster := recovery.NewCluster(ring)
	sup := supervise.New(cluster, supervise.Config{
		Detector: detector.Config{
			Interval:  set.heartbeat,
			Threshold: set.threshold,
		},
		RepairInterval: 50 * time.Millisecond,
	})

	// One protected state per planned kill, so every kill hits a live
	// owner of its own app and earlier recoveries keep their replacements.
	rng := rand.New(rand.NewSource(97))
	apps := make([]string, kills)
	for i := range apps {
		apps[i] = fmt.Sprintf("heal-%d", i)
		snap := make([]byte, 64<<10)
		rng.Read(snap)
		mgr := cluster.Manager(ring.IDs()[0])
		if _, err := mgr.Save(apps[i], snap, 8, 2, mgr.NextVersion(int64(i+1))); err != nil {
			return stats, err
		}
		sup.Protect(supervise.StateSpec{App: apps[i], StateBytes: int64(len(snap))})
	}
	if err := sup.Start(); err != nil {
		return stats, err
	}
	defer sup.Stop()

	for _, app := range apps {
		// Look up through a live node — an earlier kill may have taken out
		// the node used for the previous lookup.
		var src *recovery.Manager
		for _, nid := range ring.IDs() {
			if ring.Net.Alive(nid) {
				src = cluster.Manager(nid)
				break
			}
		}
		if src == nil {
			return stats, fmt.Errorf("no live node left for lookup")
		}
		// All apps are saved through the same node, so an earlier kill can
		// have taken this app's owner too; wait for the supervisor to
		// migrate ownership to a live node so every kill is a real one.
		var p shard.Placement
		ownerLive := false
		for wait := time.Now().Add(20 * time.Second); time.Now().Before(wait); {
			if p, err = src.LookupPlacement(app); err == nil && ring.Net.Alive(p.Owner) {
				ownerLive = true
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
		if !ownerLive {
			stats.AddFailure()
			continue
		}
		killedAt := time.Now()
		ring.Fail(p.Owner)

		healed := false
		deadline := time.Now().Add(20 * time.Second)
		for time.Now().Before(deadline) {
			for _, ev := range sup.Events() {
				if ev.App == app && ev.Node == p.Owner && ev.Err == nil && !ev.ReprotectedAt.IsZero() {
					stats.AddSample(
						float64(ev.DetectedAt.Sub(killedAt))/float64(time.Millisecond),
						float64(ev.RecoveredAt.Sub(killedAt))/float64(time.Millisecond),
						float64(ev.ReprotectedAt.Sub(killedAt))/float64(time.Millisecond),
					)
					healed = true
				}
			}
			if healed {
				break
			}
			time.Sleep(2 * time.Millisecond)
		}
		if !healed {
			stats.AddFailure()
		}
	}
	return stats, nil
}
