package bench

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"sr3/internal/detector"
	"sr3/internal/dht"
	"sr3/internal/metrics"
	"sr3/internal/obs"
	"sr3/internal/recovery"
	"sr3/internal/state"
	"sr3/internal/stream"
	"sr3/internal/supervise"
)

// TraceConfig sizes the trace experiment. The zero value is the default
// sweep (32 nodes, 48 tuples of warm state — deliberately tiny so the
// experiment doubles as a CI smoke test).
type TraceConfig struct {
	// Nodes is the overlay size (default 32).
	Nodes int
	// Seed fixes node IDs and placement (default 911).
	Seed int64
	// Tuples is how many input tuples are processed before the
	// checkpoint that the kill must recover (default 48).
	Tuples int
	// Registry, when non-nil, additionally aggregates every span into
	// per-phase latency histograms (the sr3bench -metrics endpoint).
	Registry *metrics.Registry
}

func (c TraceConfig) withDefaults() TraceConfig {
	if c.Nodes <= 0 {
		c.Nodes = 32
	}
	if c.Seed == 0 {
		c.Seed = 911
	}
	if c.Tuples <= 0 {
		c.Tuples = 48
	}
	return c
}

// TraceBreakdown is one traced kill→detect→recover cycle: the phase
// totals of a single coherent distributed trace (the repo's Fig. 9/11
// analogue, reconstructed from spans instead of ad-hoc timers).
type TraceBreakdown struct {
	Mechanism string `json:"mechanism"`
	TraceID   uint64 `json:"trace_id"`
	// Spans counts every span in the trace (collect spans scale with the
	// provider chain/tree, so line and tree produce more than star).
	Spans int `json:"spans"`
	// MTTRMs is the selfheal root span's duration: silence start →
	// state recovered, replayed and re-protected.
	MTTRMs float64 `json:"mttr_ms"`
	// PhaseMs sums span durations by phase within the trace.
	PhaseMs map[string]float64 `json:"phase_ms"`
}

// TraceReport is the trace experiment's result set.
type TraceReport struct {
	Nodes int              `json:"nodes"`
	Seed  int64            `json:"seed"`
	Rows  []TraceBreakdown `json:"rows"`
}

// JSON renders the report as an indented artifact (BENCH_trace.json).
func (r TraceReport) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// tracePhaseOrder fixes the breakdown column order (pipeline order).
var tracePhaseOrder = []string{
	obs.PhaseDetect, obs.PhaseEnqueue, obs.PhasePlan, obs.PhaseFetch,
	obs.PhaseCollect, obs.PhaseMerge, obs.PhaseStall, obs.PhaseReplay,
	obs.PhaseSave, obs.PhaseReprotect,
}

// Format renders the per-phase table.
func (r TraceReport) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace: one supervised kill→detect→recover per mechanism on a %d-node ring (seed %d); phase totals from one distributed trace each\n", r.Nodes, r.Seed)
	fmt.Fprintf(&b, "%-6s %6s %9s", "mech", "spans", "mttr")
	for _, p := range tracePhaseOrder {
		fmt.Fprintf(&b, " %9s", p)
	}
	b.WriteString("\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-6s %6d %7.1fms", row.Mechanism, row.Spans, row.MTTRMs)
		for _, p := range tracePhaseOrder {
			fmt.Fprintf(&b, " %7.1fms", row.PhaseMs[p])
		}
		b.WriteString("\n")
	}
	b.WriteString("(mttr = selfheal root span; fetch is star's transfer phase, collect is line/tree's; phase sums overlap-free per span but concurrent spans can overlap wall-clock)\n")
	return b.String()
}

// TraceSweep runs one traced task-bound self-heal per mechanism —
// star, line, tree — on identically seeded clusters and returns the
// per-phase breakdowns.
func TraceSweep(cfg TraceConfig) (TraceReport, error) {
	cfg = cfg.withDefaults()
	report := TraceReport{Nodes: cfg.Nodes, Seed: cfg.Seed}
	for _, mech := range []recovery.Mechanism{recovery.Star, recovery.Line, recovery.Tree} {
		row, err := traceCell(mech, cfg)
		if err != nil {
			return report, fmt.Errorf("trace %v: %w", mech, err)
		}
		report.Rows = append(report.Rows, row)
	}
	return report, nil
}

// traceCounter is the stateful word-count bolt the trace topology
// protects.
type traceCounter struct{ store *state.MapStore }

func (c *traceCounter) Execute(t stream.Tuple, _ stream.Emit) error {
	w := t.StringAt(0)
	n := 0
	if v, ok := c.store.Get(w); ok {
		if _, err := fmt.Sscanf(string(v), "%d", &n); err != nil {
			return err
		}
	}
	c.store.Put(w, []byte(fmt.Sprintf("%d", n+1)))
	return nil
}

func (c *traceCounter) Store() stream.StateStore { return c.store }

// traceCell runs one supervised kill→heal with tracing on — a live
// word-count topology checkpointing through the SR3 backend, its state
// owner killed, φ-accrual detection, task kill + backend recovery +
// input-log replay + re-protection — and extracts the resulting trace's
// breakdown.
func traceCell(mech recovery.Mechanism, cfg TraceConfig) (TraceBreakdown, error) {
	var row TraceBreakdown
	collector := obs.NewCollector()
	var sink obs.Sink = collector
	if cfg.Registry != nil {
		sink = obs.MultiSink{collector, obs.NewMetricsSink(cfg.Registry, "")}
	}
	tracer := obs.New(sink)

	ring, err := dht.BuildConverged(dht.DefaultConfig(), cfg.Seed, cfg.Nodes)
	if err != nil {
		return row, err
	}
	cluster := recovery.NewCluster(ring)
	cluster.SetTracer(tracer)
	backend := stream.NewSR3Backend(cluster, 6, 2)
	backend.Mechanism = mech

	topoName := "trace-" + mech.String()
	topo := stream.NewTopology(topoName)
	in := make(chan stream.Tuple, cfg.Tuples*2)
	if err := topo.AddSpout("src", stream.SpoutFunc(func() (stream.Tuple, bool) {
		tp, ok := <-in
		return tp, ok
	})); err != nil {
		return row, err
	}
	store := state.NewMapStore()
	if err := topo.AddBolt("count", &traceCounter{store: store}, 1).Fields("src", 0).Err(); err != nil {
		return row, err
	}
	rt, err := stream.NewRuntime(topo, stream.Config{Backend: backend})
	if err != nil {
		return row, err
	}
	rt.Start()

	words := 4
	push := func(n int) {
		for i := 0; i < n; i++ {
			in <- stream.Tuple{Values: []any{fmt.Sprintf("w%d", i%words)}, Ts: int64(i)}
		}
	}
	count := func(w string) int {
		v, ok := store.Get(w)
		if !ok {
			return 0
		}
		n := 0
		fmt.Sscanf(string(v), "%d", &n)
		return n
	}
	waitFor := func(what string, d time.Duration, cond func() bool) error {
		deadline := time.Now().Add(d)
		for time.Now().Before(deadline) {
			if cond() {
				return nil
			}
			time.Sleep(5 * time.Millisecond)
		}
		return fmt.Errorf("timed out waiting for %s", what)
	}

	push(cfg.Tuples)
	target := cfg.Tuples / words
	if err := waitFor("warm state", 20*time.Second, func() bool { return count("w0") >= target }); err != nil {
		return row, err
	}
	if err := rt.SaveAll(); err != nil {
		return row, err
	}

	taskKey := stream.TaskKey(topoName, "count", 0)

	// The wide repair interval keeps the untraced repair-loop backstop
	// from winning the race against φ-accrual detection: the heal must
	// come from a death verdict, which carries the trace root.
	sup := supervise.New(cluster, supervise.Config{
		Detector:       detector.Config{Interval: 15 * time.Millisecond, Threshold: 8},
		RepairInterval: 5 * time.Second,
		Tracer:         tracer,
	})
	sup.BindRuntime(rt)
	sup.Protect(supervise.StateSpec{App: taskKey, TaskBound: true})
	if err := sup.Start(); err != nil {
		return row, err
	}
	defer sup.Stop()

	// A post-checkpoint batch forces real replay work during recovery.
	push(cfg.Tuples)
	if err := waitFor("post-checkpoint batch", 20*time.Second, func() bool { return count("w0") >= 2*target }); err != nil {
		return row, err
	}
	p, err := cluster.Manager(ring.IDs()[0]).LookupPlacement(taskKey)
	if err != nil {
		return row, err
	}
	ring.Fail(p.Owner)

	var traceID uint64
	if err := waitFor("task-bound self-heal", 30*time.Second, func() bool {
		for _, e := range sup.Events() {
			if e.App == taskKey && e.TaskBound && e.Err == nil && !e.ReprotectedAt.IsZero() {
				traceID = e.Trace
				return true
			}
		}
		return false
	}); err != nil {
		return row, err
	}
	sup.Stop()
	close(in)
	if err := rt.Wait(); err != nil {
		return row, err
	}
	if traceID == 0 {
		return row, fmt.Errorf("healed event for %s carries no trace ID", taskKey)
	}
	return extractBreakdown(collector, mech.String(), traceID)
}

// extractBreakdown sums one trace's phases into a breakdown row.
func extractBreakdown(collector *obs.Collector, mech string, traceID uint64) (TraceBreakdown, error) {
	spans := collector.Trace(traceID)
	var mttr int64
	rootSeen := false
	for _, s := range spans {
		if s.Phase == obs.PhaseSelfHeal && s.Parent == 0 {
			rootSeen = true
			mttr = s.Duration()
		}
	}
	if !rootSeen {
		return TraceBreakdown{}, fmt.Errorf("trace %d has no selfheal root (%d spans)", traceID, len(spans))
	}
	phases := make(map[string]float64, len(spans))
	for p, ns := range collector.PhaseTotals(traceID) {
		phases[p] = float64(ns) / float64(time.Millisecond)
	}
	return TraceBreakdown{
		Mechanism: mech,
		TraceID:   traceID,
		Spans:     len(spans),
		MTTRMs:    float64(mttr) / float64(time.Millisecond),
		PhaseMs:   phases,
	}, nil
}
