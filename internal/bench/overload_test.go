package bench

import (
	"os"
	"strings"
	"testing"
)

// TestOverloadCrashCellBoundedAndExact is the acceptance gate for the
// overload tier: at 2x sustained load with a crash mid-stream, recovery
// completes, the queue bound holds, accounting is exact and every
// admitted tuple is delivered exactly once.
func TestOverloadCrashCellBoundedAndExact(t *testing.T) {
	if testing.Short() {
		t.Skip("overload cell in -short mode")
	}
	cell, err := RunOverloadCell(OverloadCellSpec{Scenario: OverloadCrash, Load: "2x", Seconds: 0.4}, 9001)
	if err != nil {
		t.Fatalf("cell: %v", err)
	}
	if !cell.AccountingExact || cell.Offered != cell.Admitted+cell.Shed {
		t.Fatalf("accounting not exact: offered=%d admitted=%d shed=%d", cell.Offered, cell.Admitted, cell.Shed)
	}
	if cell.QueueHighWater > cell.QueueCap {
		t.Fatalf("queue bound violated: high=%d cap=%d", cell.QueueHighWater, cell.QueueCap)
	}
	if !cell.ExactlyOnceAdmitted {
		t.Fatalf("not exactly-once over admitted tuples: missing=%d state_exact=%v", cell.Missing, cell.StateExact)
	}
	if cell.RecoverMs <= 0 {
		t.Fatalf("recover_ms = %v, want > 0", cell.RecoverMs)
	}
}

// TestRetryStormPairCapsRetries: the budgeted storm cell must fund fewer
// failover rounds than the unbudgeted baseline and record suppression;
// the unbudgeted recovery must complete.
func TestRetryStormPairCapsRetries(t *testing.T) {
	base, err := RunOverloadCell(OverloadCellSpec{Scenario: OverloadRetryStorm, Budgeted: false}, 9002)
	if err != nil {
		t.Fatalf("unbudgeted: %v", err)
	}
	capped, err := RunOverloadCell(OverloadCellSpec{Scenario: OverloadRetryStorm, Budgeted: true}, 9002)
	if err != nil {
		t.Fatalf("budgeted: %v", err)
	}
	if !base.RecoverOK {
		t.Fatal("unbudgeted retry-storm recovery did not complete")
	}
	if base.RetryRounds < 2 {
		t.Fatalf("unbudgeted baseline funded only %d rounds; storm did not materialize", base.RetryRounds)
	}
	if capped.RetryRounds >= base.RetryRounds {
		t.Fatalf("budget did not cap retries: budgeted %d >= unbudgeted %d", capped.RetryRounds, base.RetryRounds)
	}
	if capped.RetrySuppressed == 0 {
		t.Fatal("budgeted cell suppressed nothing")
	}
}

// TestOverloadTinyPresetRoundTrip runs the CI smoke preset end to end
// through the validator.
func TestOverloadTinyPresetRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("overload sweep in -short mode")
	}
	specs, err := OverloadPreset("tiny")
	if err != nil {
		t.Fatal(err)
	}
	report := OverloadSweep(specs)
	blob, err := report.JSON()
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := ValidateOverload(blob)
	if err != nil {
		t.Fatalf("%v\n%s", err, report.Format())
	}
	if len(parsed.Cells) != len(specs) {
		t.Fatalf("round-trip cells = %d, want %d", len(parsed.Cells), len(specs))
	}
}

// TestCommittedOverloadArtifact schema-validates the committed
// BENCH_overload.json — the validator embeds the acceptance invariants,
// so a stale or hand-edited artifact fails CI.
func TestCommittedOverloadArtifact(t *testing.T) {
	blob, err := os.ReadFile("../../BENCH_overload.json")
	if err != nil {
		t.Fatalf("committed artifact: %v", err)
	}
	report, err := ValidateOverload(blob)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Cells) < 7 {
		t.Fatalf("committed overload artifact has %d cells, want >= 7", len(report.Cells))
	}
}

// TestSpliceMarked covers both the bootstrap (no markers yet) and the
// replace path of the markdown splicer.
func TestSpliceMarked(t *testing.T) {
	const begin, end = "<!-- x:begin -->", "<!-- x:end -->"
	doc := SpliceMarked("# Doc\n", begin, end, "\nbody-1\n")
	if !strings.Contains(doc, begin) || !strings.Contains(doc, "body-1") {
		t.Fatalf("bootstrap splice missing section:\n%s", doc)
	}
	doc += "\ntrailing text\n"
	doc2 := SpliceMarked(doc, begin, end, "\nbody-2\n")
	if strings.Contains(doc2, "body-1") || !strings.Contains(doc2, "body-2") {
		t.Fatalf("replace splice failed:\n%s", doc2)
	}
	if !strings.Contains(doc2, "trailing text") || strings.Count(doc2, begin) != 1 {
		t.Fatalf("splice damaged surrounding document:\n%s", doc2)
	}
}

// TestOverloadMarkdownRenders sanity-checks the markdown renderers used
// by the matrix-report experiment.
func TestOverloadMarkdownRenders(t *testing.T) {
	r := &OverloadReport{Schema: OverloadSchema, Cells: []OverloadCell{
		{Scenario: OverloadCrash, Load: "2x", Offered: 10, Admitted: 8, Shed: 2, ShedFraction: 0.2,
			QueueCap: 4, QueueHighWater: 4, ExactlyOnceAdmitted: true, AccountingExact: true},
		{Scenario: OverloadRetryStorm, Budgeted: true, RetryRounds: 2, RetrySuppressed: 1},
	}}
	md := r.Markdown()
	if !strings.Contains(md, "| crash | 2x | 10 | 8 | 2 |") || !strings.Contains(md, "budgeted") {
		t.Fatalf("overload markdown malformed:\n%s", md)
	}
	m := &MatrixReport{Schema: MatrixSchema, Cells: []MatrixCell{
		{Scenario: ScenarioCrash, Mechanism: MechSR3Star, Load: "burst", Tuples: 100, ExactlyOnce: true},
	}}
	if md := m.Markdown(); !strings.Contains(md, "| crash | sr3-star | burst | 100 |") {
		t.Fatalf("matrix markdown malformed:\n%s", md)
	}
}
