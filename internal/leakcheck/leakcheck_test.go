package leakcheck_test

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"sr3/internal/detector"
	"sr3/internal/dht"
	"sr3/internal/id"
	"sr3/internal/leakcheck"
	"sr3/internal/nettransport"
	"sr3/internal/recovery"
	"sr3/internal/simnet"
	"sr3/internal/state"
	"sr3/internal/stream"
	"sr3/internal/supervise"
)

// recordTB captures Errorf calls so the self-test can assert the checker
// actually fires.
type recordTB struct {
	failed bool
	msg    string
}

func (r *recordTB) Helper() {}
func (r *recordTB) Errorf(format string, args ...any) {
	r.failed = true
	r.msg = fmt.Sprintf(format, args...)
}

// leakyWorker blocks until released — the deliberate leak for the
// self-test. It lives in repo code (this package path), so the checker
// must classify it as ours.
func leakyWorker(release chan struct{}) { <-release }

func TestVerifyCatchesDeliberateLeak(t *testing.T) {
	rec := &recordTB{}
	check := leakcheck.Verify(rec)
	release := make(chan struct{})
	go leakyWorker(release)
	// The grace loop must spin the full 5s before giving up, so release
	// the goroutine from a timer and confirm BOTH behaviors: first that
	// a shorter probe fails, then that the checker passes once released.
	time.AfterFunc(100*time.Millisecond, func() { close(release) })
	check()
	if rec.failed {
		t.Fatalf("checker fired for a goroutine that exited within grace: %s", rec.msg)
	}

	rec2 := &recordTB{}
	check2 := leakcheck.Verify(rec2)
	release2 := make(chan struct{})
	go leakyWorker(release2)
	done := make(chan struct{})
	go func() { check2(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("checker never returned")
	}
	close(release2)
	if !rec2.failed {
		t.Fatal("checker missed a goroutine leaked past the grace period")
	}
	if !strings.Contains(rec2.msg, "leakyWorker") {
		t.Fatalf("leak report does not name the leaked function:\n%s", rec2.msg)
	}
}

// TestRuntimeShutdownLeakFree: a stream runtime's spout, task executors
// and save machinery must all exit after Wait.
func TestRuntimeShutdownLeakFree(t *testing.T) {
	defer leakcheck.Verify(t)()

	topo := stream.NewTopology("leak")
	in := make(chan stream.Tuple, 64)
	if err := topo.AddSpout("src", stream.SpoutFunc(func() (stream.Tuple, bool) {
		tp, ok := <-in
		return tp, ok
	})); err != nil {
		t.Fatal(err)
	}
	store := state.NewMapStore()
	if err := topo.AddBolt("sink", stream.BoltFunc(func(tp stream.Tuple, _ stream.Emit) error {
		store.Put(tp.StringAt(0), []byte("1"))
		return nil
	}), 2).Shuffle("src").Err(); err != nil {
		t.Fatal(err)
	}
	rt, err := stream.NewRuntime(topo, stream.Config{Backend: stream.NewMemoryBackend()})
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()
	for i := 0; i < 32; i++ {
		in <- stream.Tuple{Values: []any{fmt.Sprintf("k%d", i)}}
	}
	close(in)
	if err := rt.Wait(); err != nil {
		t.Fatal(err)
	}
}

// TestSupervisorShutdownLeakFree: Stop must reap every per-node
// detector, the verdict worker and the repair ticker — including after
// real verdict traffic.
func TestSupervisorShutdownLeakFree(t *testing.T) {
	defer leakcheck.Verify(t)()

	ring, err := dht.BuildConverged(dht.DefaultConfig(), 61, 16)
	if err != nil {
		t.Fatal(err)
	}
	cluster := recovery.NewCluster(ring)
	sup := supervise.New(cluster, supervise.Config{
		Detector:       detector.Config{Interval: 10 * time.Millisecond, Threshold: 8},
		RepairInterval: 25 * time.Millisecond,
	})
	if err := sup.Start(); err != nil {
		t.Fatal(err)
	}
	// Let heartbeats, repair ticks and at least one real failure flow
	// before shutdown, so Stop reaps workers that have actually worked.
	time.Sleep(50 * time.Millisecond)
	ring.Fail(ring.IDs()[3])
	time.Sleep(50 * time.Millisecond)
	sup.Stop()
	// Stop must be idempotent without re-spawning anything.
	sup.Stop()
}

// TestNetworkShutdownLeakFree: Close must terminate every accept loop
// and per-connection server goroutine.
func TestNetworkShutdownLeakFree(t *testing.T) {
	defer leakcheck.Verify(t)()

	n := nettransport.New()
	a, b := id.HashKey("leak-a"), id.HashKey("leak-b")
	echo := func(_ id.ID, msg simnet.Message) (simnet.Message, error) {
		return simnet.Message{Kind: "echo", Size: msg.Size, Payload: msg.Payload}, nil
	}
	if err := n.Register(a, echo); err != nil {
		t.Fatal(err)
	}
	if err := n.Register(b, echo); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := n.Call(a, b, simnet.Message{Kind: "ping", Size: 8, Payload: "x"}); err != nil {
			t.Fatal(err)
		}
	}
	n.Close()
}

// TestDetectorShutdownLeakFree: a lone detector's probe loop must exit
// on Stop even while its probes are in flight.
func TestDetectorShutdownLeakFree(t *testing.T) {
	defer leakcheck.Verify(t)()

	ring, err := dht.BuildConverged(dht.DefaultConfig(), 62, 8)
	if err != nil {
		t.Fatal(err)
	}
	var ds []*detector.Detector
	for _, nid := range ring.IDs() {
		d := detector.New(ring.Node(nid), detector.Config{Interval: 5 * time.Millisecond, Threshold: 8})
		d.Start()
		ds = append(ds, d)
	}
	time.Sleep(40 * time.Millisecond)
	for _, d := range ds {
		d.Stop()
	}
}
