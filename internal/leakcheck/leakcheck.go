// Package leakcheck is a hand-rolled goroutine-leak detector for tests:
// it snapshots the live goroutines before a test body runs and fails the
// test if goroutines executing this repo's code outlive the body. Shut
// down paths (Runtime.Wait, Supervisor.Stop, Network.Close,
// Detector.Stop) are the intended customers — a leaked worker goroutine
// is a shutdown bug even when no assertion notices.
package leakcheck

import (
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// TB is the slice of testing.TB the checker needs.
type TB interface {
	Helper()
	Errorf(format string, args ...any)
}

// modulePrefixes identify stacks that belong to this repo. Goroutines
// from the runtime, the testing framework, or the net/http helpers of a
// test are not ours to police.
var modulePrefixes = []string{"sr3/internal/", "sr3."}

// grace is how long a goroutine gets to finish winding down after the
// test body returns: Stop/Close calls return before their workers'
// final context switch, so an immediate snapshot would flake.
const grace = 5 * time.Second

// Verify snapshots the current goroutines and returns a function to
// defer: it fails t if, after the grace period, any goroutine running
// repo code exists that was not alive at the Verify call.
//
//	defer leakcheck.Verify(t)()
func Verify(t TB) func() {
	baseline := ids(snapshot())
	return func() {
		t.Helper()
		deadline := time.Now().Add(grace)
		var leaked []goroutine
		for {
			leaked = leaked[:0]
			for _, g := range snapshot() {
				if !baseline[g.id] && g.ours() {
					leaked = append(leaked, g)
				}
			}
			if len(leaked) == 0 {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(20 * time.Millisecond)
		}
		var b strings.Builder
		for _, g := range leaked {
			fmt.Fprintf(&b, "goroutine %d:\n%s\n", g.id, g.stack)
		}
		t.Errorf("leakcheck: %d goroutine(s) leaked after %v grace:\n%s", len(leaked), grace, b.String())
	}
}

// goroutine is one parsed entry of a full runtime.Stack dump.
type goroutine struct {
	id    int64
	stack string
}

// ours reports whether the goroutine is executing repo code. The
// leakcheck frames themselves are excluded (the caller's goroutine
// always contains them).
func (g goroutine) ours() bool {
	if strings.Contains(g.stack, "sr3/internal/leakcheck.") {
		return false
	}
	for _, p := range modulePrefixes {
		if strings.Contains(g.stack, p) {
			return true
		}
	}
	return false
}

// snapshot parses runtime.Stack(all=true) into goroutines.
func snapshot() []goroutine {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, len(buf)*2)
	}
	var out []goroutine
	for _, block := range strings.Split(string(buf), "\n\n") {
		if g, ok := parse(block); ok {
			out = append(out, g)
		}
	}
	return out
}

// parse extracts the ID from one "goroutine N [state]:" block.
func parse(block string) (goroutine, bool) {
	const prefix = "goroutine "
	if !strings.HasPrefix(block, prefix) {
		return goroutine{}, false
	}
	rest := block[len(prefix):]
	sp := strings.IndexByte(rest, ' ')
	if sp < 0 {
		return goroutine{}, false
	}
	id, err := strconv.ParseInt(rest[:sp], 10, 64)
	if err != nil {
		return goroutine{}, false
	}
	return goroutine{id: id, stack: block}, true
}

func ids(gs []goroutine) map[int64]bool {
	m := make(map[int64]bool, len(gs))
	for _, g := range gs {
		m[g.id] = true
	}
	return m
}
