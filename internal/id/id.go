// Package id implements the 128-bit circular identifier space used by the
// SR3 overlay. Identifiers are Pastry-style: a sequence of 32 base-16 digits
// (b = 4 bits per digit), compared as unsigned big-endian integers, with ring
// (modular) distance semantics.
package id

import (
	"crypto/sha1"
	"encoding/hex"
	"errors"
	"fmt"
	"math/rand"
)

const (
	// Bytes is the identifier width in bytes (128 bits).
	Bytes = 16
	// Digits is the number of base-16 digits in an identifier (128/4).
	Digits = 32
	// Base is the digit radix (2^b with b = 4).
	Base = 16
)

// ID is a 128-bit identifier on the ring, stored big-endian.
type ID [Bytes]byte

// Zero is the all-zero identifier.
var Zero ID

// ErrBadLength reports an attempt to build an ID from a byte slice whose
// length is not exactly Bytes.
var ErrBadLength = errors.New("id: byte slice must be exactly 16 bytes")

// FromBytes builds an ID from exactly 16 bytes.
func FromBytes(b []byte) (ID, error) {
	if len(b) != Bytes {
		return Zero, ErrBadLength
	}
	var out ID
	copy(out[:], b)
	return out, nil
}

// FromHex parses a 32-character hex string into an ID.
func FromHex(s string) (ID, error) {
	raw, err := hex.DecodeString(s)
	if err != nil {
		return Zero, fmt.Errorf("id: parse hex: %w", err)
	}
	return FromBytes(raw)
}

// HashKey maps an arbitrary key onto the ring by hashing it (SHA-1
// truncated to 128 bits), the standard Pastry/Scribe key placement.
func HashKey(key string) ID {
	sum := sha1.Sum([]byte(key))
	var out ID
	copy(out[:], sum[:Bytes])
	return out
}

// Random draws a uniformly random ID from rng.
func Random(rng *rand.Rand) ID {
	var out ID
	for i := 0; i < Bytes; i += 8 {
		v := rng.Uint64()
		for j := 0; j < 8; j++ {
			out[i+j] = byte(v >> (8 * (7 - j)))
		}
	}
	return out
}

// String returns the hex form of the identifier.
func (a ID) String() string { return hex.EncodeToString(a[:]) }

// Short returns the first 8 hex digits, for logs.
func (a ID) Short() string { return hex.EncodeToString(a[:4]) }

// Digit returns the i-th base-16 digit (0 = most significant).
func (a ID) Digit(i int) byte {
	b := a[i/2]
	if i%2 == 0 {
		return b >> 4
	}
	return b & 0x0f
}

// WithDigit returns a copy of a with digit i replaced by d.
func (a ID) WithDigit(i int, d byte) ID {
	out := a
	if i%2 == 0 {
		out[i/2] = (out[i/2] & 0x0f) | (d << 4)
	} else {
		out[i/2] = (out[i/2] & 0xf0) | (d & 0x0f)
	}
	return out
}

// CommonPrefixLen returns the number of leading base-16 digits shared by a
// and b; it is Digits when a == b.
func CommonPrefixLen(a, b ID) int {
	for i := 0; i < Bytes; i++ {
		x := a[i] ^ b[i]
		if x == 0 {
			continue
		}
		if x&0xf0 != 0 {
			return 2 * i
		}
		return 2*i + 1
	}
	return Digits
}

// Cmp compares a and b as unsigned big-endian integers: -1, 0 or +1.
func (a ID) Cmp(b ID) int {
	for i := 0; i < Bytes; i++ {
		switch {
		case a[i] < b[i]:
			return -1
		case a[i] > b[i]:
			return 1
		}
	}
	return 0
}

// Less reports a < b in plain integer order.
func (a ID) Less(b ID) bool { return a.Cmp(b) < 0 }

// Sub returns (a - b) mod 2^128, the clockwise distance from b to a.
func (a ID) Sub(b ID) ID {
	var out ID
	var borrow uint16
	for i := Bytes - 1; i >= 0; i-- {
		d := uint16(a[i]) - uint16(b[i]) - borrow
		out[i] = byte(d)
		borrow = (d >> 8) & 1
	}
	return out
}

// Add returns (a + b) mod 2^128.
func (a ID) Add(b ID) ID {
	var out ID
	var carry uint16
	for i := Bytes - 1; i >= 0; i-- {
		s := uint16(a[i]) + uint16(b[i]) + carry
		out[i] = byte(s)
		carry = s >> 8
	}
	return out
}

// Distance returns the shorter ring distance between a and b, i.e.
// min((a-b) mod 2^128, (b-a) mod 2^128).
func Distance(a, b ID) ID {
	d1 := a.Sub(b)
	d2 := b.Sub(a)
	if d1.Cmp(d2) <= 0 {
		return d1
	}
	return d2
}

// Closer reports whether x is strictly closer to target than y in ring
// distance, breaking ties by plain integer order of the candidates so the
// relation is a strict weak ordering.
func Closer(target, x, y ID) bool {
	dx, dy := Distance(x, target), Distance(y, target)
	if c := dx.Cmp(dy); c != 0 {
		return c < 0
	}
	return x.Less(y)
}

// BetweenRightIncl reports whether x lies in the clockwise interval (a, b],
// wrapping around the ring. When a == b the interval is the full ring.
func BetweenRightIncl(x, a, b ID) bool {
	if a.Cmp(b) == 0 {
		return true
	}
	// Clockwise from a: x in (a,b]  <=>  (x-a) mod 2^128 <= (b-a) mod 2^128
	// and x != a.
	if x.Cmp(a) == 0 {
		return false
	}
	return x.Sub(a).Cmp(b.Sub(a)) <= 0
}

// Uint64 returns the low 64 bits; handy for quick bucketing in tests.
func (a ID) Uint64() uint64 {
	var v uint64
	for i := Bytes - 8; i < Bytes; i++ {
		v = v<<8 | uint64(a[i])
	}
	return v
}
