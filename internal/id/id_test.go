package id

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFromBytesLength(t *testing.T) {
	if _, err := FromBytes(make([]byte, 15)); err != ErrBadLength {
		t.Fatalf("want ErrBadLength, got %v", err)
	}
	if _, err := FromBytes(make([]byte, 16)); err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestFromHexRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		a := Random(rng)
		b, err := FromHex(a.String())
		if err != nil {
			t.Fatalf("parse: %v", err)
		}
		if a != b {
			t.Fatalf("round trip mismatch: %v vs %v", a, b)
		}
	}
}

func TestFromHexRejectsGarbage(t *testing.T) {
	for _, s := range []string{"", "zz", "0123", "g0000000000000000000000000000000"} {
		if _, err := FromHex(s); err == nil {
			t.Errorf("FromHex(%q) should fail", s)
		}
	}
}

func TestDigitRoundTrip(t *testing.T) {
	a, err := FromHex("0123456789abcdef0123456789abcdef")
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{0x0, 0x1, 0x2, 0x3, 0x4, 0x5, 0x6, 0x7, 0x8, 0x9, 0xa, 0xb, 0xc, 0xd, 0xe, 0xf}
	for i := 0; i < Digits; i++ {
		if got := a.Digit(i); got != want[i%16] {
			t.Fatalf("digit %d: got %x want %x", i, got, want[i%16])
		}
	}
}

func TestWithDigit(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 100; i++ {
		a := Random(rng)
		pos := rng.Intn(Digits)
		d := byte(rng.Intn(Base))
		b := a.WithDigit(pos, d)
		if b.Digit(pos) != d {
			t.Fatalf("digit not set: got %x want %x", b.Digit(pos), d)
		}
		for j := 0; j < Digits; j++ {
			if j != pos && a.Digit(j) != b.Digit(j) {
				t.Fatalf("digit %d disturbed", j)
			}
		}
	}
}

func TestCommonPrefixLen(t *testing.T) {
	a, _ := FromHex("abcdef00000000000000000000000000")
	tests := []struct {
		hex  string
		want int
	}{
		{"abcdef00000000000000000000000000", Digits},
		{"abcdef00000000000000000000000001", Digits - 1},
		{"bbcdef00000000000000000000000000", 0},
		{"abcdee00000000000000000000000000", 5},
		{"abcd0f00000000000000000000000000", 4},
	}
	for _, tt := range tests {
		b, _ := FromHex(tt.hex)
		if got := CommonPrefixLen(a, b); got != tt.want {
			t.Errorf("CommonPrefixLen(%s): got %d want %d", tt.hex, got, tt.want)
		}
	}
}

func TestAddSubInverse(t *testing.T) {
	f := func(ab [2][16]byte) bool {
		a, b := ID(ab[0]), ID(ab[1])
		return a.Add(b).Sub(b) == a && a.Sub(b).Add(b) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDistanceSymmetric(t *testing.T) {
	f := func(ab [2][16]byte) bool {
		a, b := ID(ab[0]), ID(ab[1])
		return Distance(a, b) == Distance(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDistanceZeroIffEqual(t *testing.T) {
	f := func(ab [2][16]byte) bool {
		a, b := ID(ab[0]), ID(ab[1])
		return (Distance(a, b) == Zero) == (a == b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCloserStrict(t *testing.T) {
	// Closer must be irreflexive and asymmetric for distinct x, y.
	f := func(txy [3][16]byte) bool {
		tgt, x, y := ID(txy[0]), ID(txy[1]), ID(txy[2])
		if Closer(tgt, x, x) {
			return false
		}
		if x != y && Closer(tgt, x, y) && Closer(tgt, y, x) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBetweenRightIncl(t *testing.T) {
	a, _ := FromHex("10000000000000000000000000000000")
	b, _ := FromHex("20000000000000000000000000000000")
	mid, _ := FromHex("18000000000000000000000000000000")
	out, _ := FromHex("30000000000000000000000000000000")
	if !BetweenRightIncl(mid, a, b) {
		t.Error("mid should be in (a,b]")
	}
	if !BetweenRightIncl(b, a, b) {
		t.Error("b should be in (a,b] (right inclusive)")
	}
	if BetweenRightIncl(a, a, b) {
		t.Error("a should not be in (a,b]")
	}
	if BetweenRightIncl(out, a, b) {
		t.Error("out should not be in (a,b]")
	}
	// Wrap-around interval (b, a] contains out.
	if !BetweenRightIncl(out, b, a) {
		t.Error("out should be in wrap-around (b,a]")
	}
	// Degenerate interval is the full ring.
	if !BetweenRightIncl(out, a, a) {
		t.Error("(a,a] should be the full ring")
	}
}

func TestHashKeyDeterministic(t *testing.T) {
	if HashKey("foo") != HashKey("foo") {
		t.Error("HashKey not deterministic")
	}
	if HashKey("foo") == HashKey("bar") {
		t.Error("HashKey collision on trivially distinct keys")
	}
}

func TestRandomUniformishDigits(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	counts := make([]int, Base)
	const n = 2000
	for i := 0; i < n; i++ {
		counts[Random(rng).Digit(0)]++
	}
	for d, c := range counts {
		if c < n/Base/4 {
			t.Errorf("digit %x badly underrepresented: %d", d, c)
		}
	}
}

func TestCmpTotalOrder(t *testing.T) {
	f := func(ab [2][16]byte) bool {
		a, b := ID(ab[0]), ID(ab[1])
		return a.Cmp(b) == -b.Cmp(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUint64LowBits(t *testing.T) {
	a, _ := FromHex("00000000000000000000000000000102")
	if a.Uint64() != 0x102 {
		t.Fatalf("got %x", a.Uint64())
	}
}

func TestSubWraparound(t *testing.T) {
	one := Zero
	one[Bytes-1] = 1
	// 0 - 1 = 2^128 - 1 (all 0xff).
	got := Zero.Sub(one)
	for i := 0; i < Bytes; i++ {
		if got[i] != 0xff {
			t.Fatalf("byte %d = %x, want ff", i, got[i])
		}
	}
	// max + 1 = 0.
	if got.Add(one) != Zero {
		t.Fatal("max+1 should wrap to zero")
	}
}

func TestBetweenRightInclProperty(t *testing.T) {
	// For any a != b, every x is in exactly one of (a,b] and (b,a].
	f := func(abx [3][16]byte) bool {
		a, b, x := ID(abx[0]), ID(abx[1]), ID(abx[2])
		if a == b {
			return BetweenRightIncl(x, a, b) // full ring
		}
		if x == a || x == b {
			// Boundary: x is in the interval it right-closes only.
			return BetweenRightIncl(x, a, b) != BetweenRightIncl(x, b, a)
		}
		in1 := BetweenRightIncl(x, a, b)
		in2 := BetweenRightIncl(x, b, a)
		return in1 != in2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCloserPrefersPrefixNeighbors(t *testing.T) {
	// A node sharing a long prefix with the key is usually closer than a
	// random one; verify on constructed cases.
	key, _ := FromHex("ab000000000000000000000000000000")
	near, _ := FromHex("ab000000000000000000000000000001")
	far, _ := FromHex("10000000000000000000000000000000")
	if !Closer(key, near, far) {
		t.Fatal("near should be closer")
	}
	if Closer(key, far, near) {
		t.Fatal("far should not be closer")
	}
}

func TestDigitWithDigitInverseProperty(t *testing.T) {
	f := func(raw [16]byte, posRaw, dRaw uint8) bool {
		a := ID(raw)
		pos := int(posRaw) % Digits
		d := dRaw % Base
		return a.WithDigit(pos, d).Digit(pos) == d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
