package replication

import (
	"errors"
	"fmt"
	"testing"

	"sr3/internal/simnet"
)

func TestFailoverKeepsState(t *testing.T) {
	p := NewPair()
	for i := 0; i < 100; i++ {
		if err := p.Put(fmt.Sprintf("k%d", i), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.FailPrimary(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		v, ok, err := p.Get(fmt.Sprintf("k%d", i))
		if err != nil || !ok || v[0] != byte(i) {
			t.Fatalf("k%d after failover: %v %v %v", i, v, ok, err)
		}
	}
	// Updates keep flowing to the survivor.
	if err := p.Put("post", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := p.Get("post"); !ok {
		t.Fatal("post-failover update lost")
	}
}

func TestBothFailuresFatal(t *testing.T) {
	p := NewPair()
	_ = p.Put("k", []byte("v"))
	if err := p.FailPrimary(); err != nil {
		t.Fatal(err)
	}
	if err := p.FailSecondary(); !errors.Is(err, ErrBothDown) {
		t.Fatalf("got %v, want ErrBothDown", err)
	}
	if err := p.Put("k2", []byte("v")); !errors.Is(err, ErrBothDown) {
		t.Fatalf("put: got %v", err)
	}
	if _, _, err := p.Get("k"); !errors.Is(err, ErrBothDown) {
		t.Fatalf("get: got %v", err)
	}
}

func TestDoubleFailRejected(t *testing.T) {
	p := NewPair()
	_ = p.FailPrimary()
	if err := p.FailPrimary(); !errors.Is(err, ErrPrimaryDown) {
		t.Fatalf("got %v", err)
	}
}

func TestRestorePrimaryFromSecondary(t *testing.T) {
	p := NewPair()
	_ = p.Put("k", []byte("v"))
	_ = p.FailPrimary()
	_ = p.Put("k2", []byte("v2"))
	if err := p.RestorePrimary(); err != nil {
		t.Fatal(err)
	}
	// Secondary can now fail; restored primary holds everything.
	if err := p.FailSecondary(); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"k", "k2"} {
		if _, ok, err := p.Get(k); err != nil || !ok {
			t.Fatalf("restored primary missing %q (%v)", k, err)
		}
	}
}

func TestPlanRecoverNearlyInstant(t *testing.T) {
	b := simnet.NewPlanBuilder()
	PlanRecover(b, Spec{App: "app", Secondary: "standby"})
	sim := simnet.NewSim(simnet.Res{UpBps: 125e6, DownBps: 125e6, ComputeBps: 10e6})
	res, err := sim.Run(b.Tasks())
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan > 0.01 {
		t.Fatalf("replication failover took %v s, should be ~instant", res.Makespan)
	}
	if ResourceFactor != 2.0 {
		t.Fatal("replication must cost 2x hardware")
	}
}

// TestActiveTracksFailover: Active serves the primary while it lives,
// the secondary after failover, and errors with both down.
func TestActiveTracksFailover(t *testing.T) {
	p := NewPair()
	if err := p.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	a, err := p.Active()
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := a.Get("k"); string(v) != "v" {
		t.Fatalf("primary active missing write: %q", v)
	}
	if err := p.FailPrimary(); err != nil {
		t.Fatal(err)
	}
	b, err := p.Active()
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("Active did not switch replicas after primary failure")
	}
	if v, _ := b.Get("k"); string(v) != "v" {
		t.Fatalf("standby active missing mirrored write: %q", v)
	}
	if err := p.FailSecondary(); !errors.Is(err, ErrBothDown) {
		t.Fatalf("second failure = %v, want ErrBothDown", err)
	}
	if _, err := p.Active(); !errors.Is(err, ErrBothDown) {
		t.Fatalf("Active with both down = %v", err)
	}
}

// TestFailureOrderSecondaryFirst: losing the standby first leaves the
// primary serving; losing the primary after is fatal.
func TestFailureOrderSecondaryFirst(t *testing.T) {
	p := NewPair()
	if err := p.FailSecondary(); err != nil {
		t.Fatal(err)
	}
	if err := p.FailSecondary(); !errors.Is(err, ErrSecondaryDown) {
		t.Fatalf("repeat secondary failure = %v", err)
	}
	if err := p.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if v, ok, err := p.Get("k"); err != nil || !ok || string(v) != "v" {
		t.Fatalf("primary-only get = %q %v %v", v, ok, err)
	}
	if err := p.FailPrimary(); !errors.Is(err, ErrBothDown) {
		t.Fatalf("final failure = %v, want ErrBothDown", err)
	}
}

// TestRestorePrimaryNeedsLiveSecondary: rebuilding the primary from a
// dead standby must fail; after a good restore the pair survives a
// SECOND primary failure.
func TestRestorePrimaryNeedsLiveSecondary(t *testing.T) {
	p := NewPair()
	_ = p.Put("k", []byte("v1"))
	if err := p.FailPrimary(); err != nil {
		t.Fatal(err)
	}
	if err := p.FailSecondary(); !errors.Is(err, ErrBothDown) {
		t.Fatal(err)
	}
	if err := p.RestorePrimary(); !errors.Is(err, ErrSecondaryDown) {
		t.Fatalf("restore from dead secondary = %v", err)
	}

	q := NewPair()
	_ = q.Put("k", []byte("v1"))
	if err := q.FailPrimary(); err != nil {
		t.Fatal(err)
	}
	_ = q.Put("k", []byte("v2")) // applied to the surviving secondary only
	if err := q.RestorePrimary(); err != nil {
		t.Fatal(err)
	}
	// The rebuilt primary is active again and carries the post-failover write.
	if err := q.FailSecondary(); err != nil {
		t.Fatal(err)
	}
	if v, ok, err := q.Get("k"); err != nil || !ok || string(v) != "v2" {
		t.Fatalf("rebuilt primary state = %q %v %v, want v2", v, ok, err)
	}
}
