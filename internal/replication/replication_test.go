package replication

import (
	"errors"
	"fmt"
	"testing"

	"sr3/internal/simnet"
)

func TestFailoverKeepsState(t *testing.T) {
	p := NewPair()
	for i := 0; i < 100; i++ {
		if err := p.Put(fmt.Sprintf("k%d", i), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.FailPrimary(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		v, ok, err := p.Get(fmt.Sprintf("k%d", i))
		if err != nil || !ok || v[0] != byte(i) {
			t.Fatalf("k%d after failover: %v %v %v", i, v, ok, err)
		}
	}
	// Updates keep flowing to the survivor.
	if err := p.Put("post", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := p.Get("post"); !ok {
		t.Fatal("post-failover update lost")
	}
}

func TestBothFailuresFatal(t *testing.T) {
	p := NewPair()
	_ = p.Put("k", []byte("v"))
	if err := p.FailPrimary(); err != nil {
		t.Fatal(err)
	}
	if err := p.FailSecondary(); !errors.Is(err, ErrBothDown) {
		t.Fatalf("got %v, want ErrBothDown", err)
	}
	if err := p.Put("k2", []byte("v")); !errors.Is(err, ErrBothDown) {
		t.Fatalf("put: got %v", err)
	}
	if _, _, err := p.Get("k"); !errors.Is(err, ErrBothDown) {
		t.Fatalf("get: got %v", err)
	}
}

func TestDoubleFailRejected(t *testing.T) {
	p := NewPair()
	_ = p.FailPrimary()
	if err := p.FailPrimary(); !errors.Is(err, ErrPrimaryDown) {
		t.Fatalf("got %v", err)
	}
}

func TestRestorePrimaryFromSecondary(t *testing.T) {
	p := NewPair()
	_ = p.Put("k", []byte("v"))
	_ = p.FailPrimary()
	_ = p.Put("k2", []byte("v2"))
	if err := p.RestorePrimary(); err != nil {
		t.Fatal(err)
	}
	// Secondary can now fail; restored primary holds everything.
	if err := p.FailSecondary(); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"k", "k2"} {
		if _, ok, err := p.Get(k); err != nil || !ok {
			t.Fatalf("restored primary missing %q (%v)", k, err)
		}
	}
}

func TestPlanRecoverNearlyInstant(t *testing.T) {
	b := simnet.NewPlanBuilder()
	PlanRecover(b, Spec{App: "app", Secondary: "standby"})
	sim := simnet.NewSim(simnet.Res{UpBps: 125e6, DownBps: 125e6, ComputeBps: 10e6})
	res, err := sim.Run(b.Tasks())
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan > 0.01 {
		t.Fatalf("replication failover took %v s, should be ~instant", res.Makespan)
	}
	if ResourceFactor != 2.0 {
		t.Fatal("replication must cost 2x hardware")
	}
}
