// Package replication implements the replication-recovery baseline
// (paper §2.2, Flux/Borealis style): a hot standby processes the same
// stream in parallel with the primary, so failover is nearly instant but
// the hardware requirement doubles.
package replication

import (
	"errors"
	"sync"

	"sr3/internal/simnet"
	"sr3/internal/state"
)

// ResourceFactor is the hardware multiplier replication pays (Table 1:
// "High cost").
const ResourceFactor = 2.0

// Errors.
var (
	ErrPrimaryDown   = errors.New("replication: primary already failed")
	ErrSecondaryDown = errors.New("replication: secondary already failed")
	ErrBothDown      = errors.New("replication: both replicas failed")
)

// Pair is a primary/secondary hot pair over MapStore state. Every update
// is applied to both replicas, mirroring dual processing of the input
// stream.
type Pair struct {
	mu            sync.Mutex
	primary       *state.MapStore
	secondary     *state.MapStore
	primaryDead   bool
	secondaryDead bool
}

// NewPair returns a fresh hot pair.
func NewPair() *Pair {
	return &Pair{primary: state.NewMapStore(), secondary: state.NewMapStore()}
}

// Put applies an update to every live replica.
func (p *Pair) Put(key string, value []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.primaryDead && p.secondaryDead {
		return ErrBothDown
	}
	if !p.primaryDead {
		p.primary.Put(key, value)
	}
	if !p.secondaryDead {
		p.secondary.Put(key, value)
	}
	return nil
}

// Get reads from the active replica.
func (p *Pair) Get(key string) ([]byte, bool, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	st, err := p.activeLocked()
	if err != nil {
		return nil, false, err
	}
	v, ok := st.Get(key)
	return v, ok, nil
}

// Active returns the replica currently serving.
func (p *Pair) Active() (*state.MapStore, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.activeLocked()
}

func (p *Pair) activeLocked() (*state.MapStore, error) {
	switch {
	case !p.primaryDead:
		return p.primary, nil
	case !p.secondaryDead:
		return p.secondary, nil
	default:
		return nil, ErrBothDown
	}
}

// FailPrimary crashes the primary; the secondary takes over immediately.
func (p *Pair) FailPrimary() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.primaryDead {
		return ErrPrimaryDown
	}
	p.primaryDead = true
	if p.secondaryDead {
		return ErrBothDown
	}
	return nil
}

// FailSecondary crashes the standby.
func (p *Pair) FailSecondary() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.secondaryDead {
		return ErrSecondaryDown
	}
	p.secondaryDead = true
	if p.primaryDead {
		return ErrBothDown
	}
	return nil
}

// RestorePrimary rebuilds a fresh primary from the secondary's state
// (re-establishing the pair after failover).
func (p *Pair) RestorePrimary() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.secondaryDead {
		return ErrSecondaryDown
	}
	snap, err := p.secondary.Snapshot()
	if err != nil {
		return err
	}
	fresh := state.NewMapStore()
	if err := fresh.Restore(snap); err != nil {
		return err
	}
	p.primary = fresh
	p.primaryDead = false
	return nil
}

// Spec parameterizes the timed replication plans.
type Spec struct {
	App        string
	Secondary  string
	RouteDelay float64
}

// PlanRecover emits the failover plan: replication's recovery is just the
// switchover signal — nearly instant, which is why Table 1 rates it fast
// but at 2× hardware.
func PlanRecover(b *simnet.PlanBuilder, spec Spec) simnet.TaskID {
	return b.Compute(spec.Secondary, 1, spec.App+"/repl/failover")
}
