package stream

import (
	"errors"
	"fmt"
	"sync"

	"sr3/internal/checkpoint"
	"sr3/internal/dht"
	"sr3/internal/fp4s"
	"sr3/internal/id"
	"sr3/internal/obs"
	"sr3/internal/recovery"
	"sr3/internal/replication"
	"sr3/internal/state"
)

// SR3Backend stores task state through the SR3 recovery cluster: each
// task's snapshot is owned by the DHT node closest to the task key and
// scattered as shards over that node's leaf set. Recovery runs the
// configured mechanism (or, with Mechanism == 0, the §3.7 selection
// heuristic per task).
type SR3Backend struct {
	cluster  *recovery.Cluster
	shards   int
	replicas int
	// Mechanism forces one mechanism; 0 selects per state size.
	Mechanism recovery.Mechanism
	Options   recovery.Options
	// BandwidthConstrained and LatencySensitive feed the selection
	// heuristic when Mechanism == 0.
	BandwidthConstrained bool
	LatencySensitive     bool

	mu    sync.Mutex
	sizes map[string]int
}

var _ StateBackend = (*SR3Backend)(nil)

// NewSR3Backend wires task state saving onto an SR3 cluster.
func NewSR3Backend(cluster *recovery.Cluster, shards, replicas int) *SR3Backend {
	return &SR3Backend{
		cluster:  cluster,
		shards:   shards,
		replicas: replicas,
		Options:  recovery.DefaultOptions(),
		sizes:    make(map[string]int),
	}
}

// Save scatters the snapshot over the owner's leaf set.
func (b *SR3Backend) Save(taskKey string, snapshot []byte, v state.Version) error {
	owner, err := b.ownerFor(taskKey)
	if err != nil {
		return err
	}
	mgr := b.cluster.Manager(owner)
	if _, err := mgr.Save(taskKey, snapshot, b.shards, b.replicas, v); err != nil {
		return fmt.Errorf("sr3 backend: %w", err)
	}
	b.mu.Lock()
	b.sizes[taskKey] = len(snapshot)
	b.mu.Unlock()
	return nil
}

// Recover rebuilds the snapshot with the configured or selected
// mechanism.
func (b *SR3Backend) Recover(taskKey string) ([]byte, error) {
	return b.RecoverTraced(taskKey, nil, obs.SpanContext{})
}

// RecoverTraced is Recover with the cluster recovery's spans parented on
// the caller's trace (the supervisor's selfheal root) — the TracedBackend
// hookup.
func (b *SR3Backend) RecoverTraced(taskKey string, tr *obs.Tracer, parent obs.SpanContext) ([]byte, error) {
	mech := b.Mechanism
	opts := b.Options
	if mech == 0 {
		b.mu.Lock()
		size := b.sizes[taskKey]
		b.mu.Unlock()
		d := recovery.Select(recovery.Requirements{
			StateBytes:           int64(size),
			BandwidthConstrained: b.BandwidthConstrained,
			LatencySensitive:     b.LatencySensitive,
		})
		mech, opts = d.Mechanism, d.Options
	}
	if tr != nil {
		opts.Tracer = tr
		opts.TraceParent = parent
	}
	res, err := b.cluster.Recover(taskKey, mech, opts)
	if err != nil {
		return nil, fmt.Errorf("sr3 backend: %w", err)
	}
	return res.Snapshot, nil
}

// ownerFor maps a task to its owning DHT node: the live node whose ID is
// closest to the task key's hash.
func (b *SR3Backend) ownerFor(taskKey string) (ownerID, error) {
	nid, ok := b.cluster.Ring.ClosestLive(hashTask(taskKey))
	if !ok {
		return ownerID{}, fmt.Errorf("sr3 backend: no live node for %q", taskKey)
	}
	return nid, nil
}

// CheckpointBackend is the baseline: snapshots go to the shared remote
// store (paper §2.2 checkpointing recovery).
type CheckpointBackend struct {
	store *checkpoint.Store
}

var _ StateBackend = (*CheckpointBackend)(nil)

// NewCheckpointBackend wraps a remote store.
func NewCheckpointBackend(store *checkpoint.Store) *CheckpointBackend {
	return &CheckpointBackend{store: store}
}

// Save checkpoints the snapshot remotely.
func (b *CheckpointBackend) Save(taskKey string, snapshot []byte, v state.Version) error {
	b.store.Save(taskKey, snapshot, v)
	return nil
}

// Recover fetches the latest checkpoint.
func (b *CheckpointBackend) Recover(taskKey string) ([]byte, error) {
	snap, _, err := b.store.Fetch(taskKey)
	if err != nil {
		return nil, fmt.Errorf("checkpoint backend: %w", err)
	}
	return snap, nil
}

// ReplicationBackend is the hot-standby baseline (paper §2.2,
// Flux/Borealis style): every snapshot is applied to a primary/secondary
// pair, and recovery is a failover to the standby — nearly instant, at
// double the hardware. Each task gets its own pair, mirroring one
// standby per stateful operator.
type ReplicationBackend struct {
	mu    sync.Mutex
	pairs map[string]*replication.Pair
}

var _ StateBackend = (*ReplicationBackend)(nil)

// NewReplicationBackend returns an empty replication baseline.
func NewReplicationBackend() *ReplicationBackend {
	return &ReplicationBackend{pairs: make(map[string]*replication.Pair)}
}

const replSnapshotKey = "snapshot"

func (b *ReplicationBackend) pair(taskKey string) *replication.Pair {
	b.mu.Lock()
	defer b.mu.Unlock()
	p, ok := b.pairs[taskKey]
	if !ok {
		p = replication.NewPair()
		b.pairs[taskKey] = p
	}
	return p
}

// Save applies the snapshot to both replicas of the task's pair.
func (b *ReplicationBackend) Save(taskKey string, snapshot []byte, _ state.Version) error {
	if err := b.pair(taskKey).Put(replSnapshotKey, snapshot); err != nil {
		return fmt.Errorf("replication backend: %w", err)
	}
	return nil
}

// Recover simulates the primary's crash and fails over to the standby,
// then re-establishes the pair so a later failure is survivable again.
func (b *ReplicationBackend) Recover(taskKey string) ([]byte, error) {
	p := b.pair(taskKey)
	if err := p.FailPrimary(); err != nil && !errors.Is(err, replication.ErrPrimaryDown) {
		return nil, fmt.Errorf("replication backend: %w", err)
	}
	snap, ok, err := p.Get(replSnapshotKey)
	if err != nil {
		return nil, fmt.Errorf("replication backend: %w", err)
	}
	if !ok {
		return nil, fmt.Errorf("replication backend: no snapshot for %q", taskKey)
	}
	if err := p.RestorePrimary(); err != nil {
		return nil, fmt.Errorf("replication backend: %w", err)
	}
	return snap, nil
}

// FP4SBackend stores task state through the FP4S baseline (paper §2.3):
// snapshots are RS-coded into n blocks scattered over the owner's leaf
// set, and recovery star-fetches any k of them. It shares the DHT ring
// with the SR3 cluster so matrix cells compare mechanisms on identical
// topology and chaos.
type FP4SBackend struct {
	ring *dht.Ring
	mech *fp4s.Mechanism

	mu      sync.Mutex
	mgrs    map[id.ID]*fp4s.Manager
	holders map[string][]id.ID
}

var _ StateBackend = (*FP4SBackend)(nil)

// NewFP4SBackend attaches an FP4S (k, n) agent to every ring node.
func NewFP4SBackend(ring *dht.Ring, k, n int) (*FP4SBackend, error) {
	mech, err := fp4s.New(k, n)
	if err != nil {
		return nil, fmt.Errorf("fp4s backend: %w", err)
	}
	fp4s.RegisterWire()
	b := &FP4SBackend{
		ring:    ring,
		mech:    mech,
		mgrs:    make(map[id.ID]*fp4s.Manager),
		holders: make(map[string][]id.ID),
	}
	for _, nid := range ring.IDs() {
		b.mgrs[nid] = fp4s.NewManager(ring.Node(nid), mech)
	}
	return b, nil
}

// Save fragments the snapshot on the task's owner and records the block
// holders for recovery.
func (b *FP4SBackend) Save(taskKey string, snapshot []byte, v state.Version) error {
	owner, ok := b.ring.ClosestLive(hashTask(taskKey))
	if !ok {
		return fmt.Errorf("fp4s backend: no live node for %q", taskKey)
	}
	b.mu.Lock()
	mgr := b.mgrs[owner]
	b.mu.Unlock()
	holders, err := mgr.Save(taskKey, snapshot, v)
	if err != nil {
		return fmt.Errorf("fp4s backend: %w", err)
	}
	b.mu.Lock()
	b.holders[taskKey] = holders
	b.mu.Unlock()
	return nil
}

// Recover star-fetches any k blocks from a live agent and RS-decodes.
func (b *FP4SBackend) Recover(taskKey string) ([]byte, error) {
	b.mu.Lock()
	holders, ok := b.holders[taskKey]
	b.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("fp4s backend: no blocks for %q", taskKey)
	}
	coord, live := b.ring.ClosestLive(hashTask(taskKey))
	if !live {
		return nil, fmt.Errorf("fp4s backend: no live node for %q", taskKey)
	}
	b.mu.Lock()
	mgr := b.mgrs[coord]
	b.mu.Unlock()
	snap, err := mgr.Recover(taskKey, holders)
	if err != nil {
		return nil, fmt.Errorf("fp4s backend: %w", err)
	}
	return snap, nil
}

// MemoryBackend keeps snapshots in-process — the trivial backend for
// unit tests and the quickstart example.
type MemoryBackend struct {
	mu    sync.Mutex
	snaps map[string][]byte
}

var _ StateBackend = (*MemoryBackend)(nil)

// NewMemoryBackend returns an empty in-memory backend.
func NewMemoryBackend() *MemoryBackend {
	return &MemoryBackend{snaps: make(map[string][]byte)}
}

// Save stores the snapshot.
func (b *MemoryBackend) Save(taskKey string, snapshot []byte, _ state.Version) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.snaps[taskKey] = append([]byte(nil), snapshot...)
	return nil
}

// Recover returns the stored snapshot.
func (b *MemoryBackend) Recover(taskKey string) ([]byte, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	snap, ok := b.snaps[taskKey]
	if !ok {
		return nil, fmt.Errorf("memory backend: no snapshot for %q", taskKey)
	}
	return append([]byte(nil), snap...), nil
}

// ownerID aliases the overlay ID type to keep the backend's signature
// readable.
type ownerID = id.ID

func hashTask(taskKey string) id.ID { return id.HashKey(taskKey) }
