package stream

import (
	"fmt"
	"strconv"
	"sync"
	"testing"
	"testing/quick"

	"sr3/internal/state"
)

// TestWindowPartitionProperty: tumbling windows partition the stream —
// every tuple lands in exactly one window, so window counts sum to the
// input count.
func TestWindowPartitionProperty(t *testing.T) {
	f := func(tsRaw []uint16, sizeRaw uint8) bool {
		if len(tsRaw) == 0 {
			return true
		}
		size := int64(sizeRaw)%50 + 1
		w := NewTumblingWindow(size, func(win []Tuple) []any { return []any{len(win)} })
		var out []Tuple
		emit := func(tp Tuple) { out = append(out, tp) }
		for _, ts := range tsRaw {
			if err := w.Execute(Tuple{Values: []any{1}, Ts: int64(ts)}, emit); err != nil {
				return false
			}
		}
		if err := w.Flush(emit); err != nil {
			return false
		}
		total := 0
		seen := make(map[int64]bool)
		for _, o := range out {
			start := o.Values[0].(int64)
			end := o.Values[1].(int64)
			if end-start != size || start%size != 0 {
				return false
			}
			if seen[start] {
				return false // window emitted twice
			}
			seen[start] = true
			total += o.Values[2].(int)
		}
		// Windows partition the non-late stream; late tuples are counted.
		return total+int(w.Dropped()) == len(tsRaw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestSessionWindowConservesTuples: sessions also partition the stream.
func TestSessionWindowConservesTuples(t *testing.T) {
	f := func(events []uint8, gapRaw uint8) bool {
		if len(events) == 0 {
			return true
		}
		gap := int64(gapRaw)%20 + 1
		w := NewSessionWindow(gap, 0, func(win []Tuple) []any { return []any{len(win)} })
		var out []Tuple
		emit := func(tp Tuple) { out = append(out, tp) }
		ts := int64(0)
		for _, e := range events {
			ts += int64(e % 7)
			key := fmt.Sprintf("u%d", e%3)
			if err := w.Execute(Tuple{Values: []any{key}, Ts: ts}, emit); err != nil {
				return false
			}
		}
		if err := w.Flush(emit); err != nil {
			return false
		}
		total := 0
		for _, o := range out {
			total += o.Values[3].(int)
		}
		return total == len(events)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestManyStatefulTasksUnderLoad: a wide topology with several stateful
// bolts saving periodically under concurrent traffic, with staggered
// kills and recoveries, ends exactly correct.
func TestManyStatefulTasksUnderLoad(t *testing.T) {
	const (
		bolts  = 5
		tuples = 4000
		keys   = 40
	)
	backend := NewMemoryBackend()
	topo := NewTopology("stress")
	spout := newChanSpout()
	if err := topo.AddSpout("src", spout); err != nil {
		t.Fatal(err)
	}
	counters := make([]*countBolt, bolts)
	for i := range counters {
		counters[i] = newCountBolt()
		if err := topo.AddBolt(fmt.Sprintf("c%d", i), counters[i], 1).
			Fields("src", 0).Err(); err != nil {
			t.Fatal(err)
		}
	}
	rt, err := NewRuntime(topo, Config{Backend: backend, SaveEveryTuples: 500})
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < tuples; i++ {
			spout.push(Tuple{Values: []any{fmt.Sprintf("k%d", i%keys)}})
		}
		spout.close()
	}()

	// Staggered kills/recoveries while traffic flows. An explicit save
	// before each kill guarantees a recoverable snapshot exists even if
	// the periodic one has not fired yet.
	for i := 0; i < bolts; i += 2 {
		name := fmt.Sprintf("c%d", i)
		if err := rt.Save(name, 0); err != nil {
			t.Fatal(err)
		}
		if err := rt.Kill(name, 0); err != nil {
			t.Fatal(err)
		}
		if err := rt.RecoverTask(name, 0); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	if err := rt.Wait(); err != nil {
		t.Fatal(err)
	}

	for bi, c := range counters {
		total := int64(0)
		for k := 0; k < keys; k++ {
			v, ok := c.store.Get(fmt.Sprintf("k%d", k))
			if !ok {
				t.Fatalf("bolt %d missing k%d", bi, k)
			}
			n, err := strconv.ParseInt(string(v), 10, 64)
			if err != nil {
				t.Fatal(err)
			}
			want := int64(tuples / keys)
			if n != want {
				t.Fatalf("bolt %d k%d = %d, want %d", bi, k, n, want)
			}
			total += n
		}
		if total != tuples {
			t.Fatalf("bolt %d total %d, want %d", bi, total, tuples)
		}
	}
}

// TestDeepTopologyChain: a 6-stage pipeline drains fully and each stage
// sees every tuple exactly once.
func TestDeepTopologyChain(t *testing.T) {
	const depth = 6
	const n = 500
	topo := NewTopology("deep")
	var tuples []Tuple
	for i := 0; i < n; i++ {
		tuples = append(tuples, Tuple{Values: []any{i}})
	}
	_ = topo.AddSpout("src", newSliceSpout(tuples))
	prev := "src"
	for d := 0; d < depth; d++ {
		name := fmt.Sprintf("stage%d", d)
		pass := BoltFunc(func(tp Tuple, emit Emit) error {
			emit(Tuple{Values: tp.Values, Ts: tp.Ts})
			return nil
		})
		if err := topo.AddBolt(name, pass, 1).Shuffle(prev).Err(); err != nil {
			t.Fatal(err)
		}
		prev = name
	}
	rt, err := NewRuntime(topo, Config{})
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()
	if err := rt.Wait(); err != nil {
		t.Fatal(err)
	}
	for d := 0; d < depth; d++ {
		h, err := rt.Handled(fmt.Sprintf("stage%d", d), 0)
		if err != nil {
			t.Fatal(err)
		}
		if h != n {
			t.Fatalf("stage %d handled %d, want %d", d, h, n)
		}
	}
}

// TestBoltErrorsCountedNotFatal: a failing bolt doesn't wedge the
// runtime; errors are counted.
func TestBoltErrorsCountedNotFatal(t *testing.T) {
	topo := NewTopology("err")
	_ = topo.AddSpout("src", newSliceSpout(wordTuples("a", "b", "c")))
	bad := BoltFunc(func(tp Tuple, _ Emit) error {
		return fmt.Errorf("boom on %v", tp.Values)
	})
	if err := topo.AddBolt("bad", bad, 1).Shuffle("src").Err(); err != nil {
		t.Fatal(err)
	}
	rt, _ := NewRuntime(topo, Config{})
	rt.Start()
	if err := rt.Wait(); err != nil {
		t.Fatal(err)
	}
	if rt.ExecuteErrors() != 3 {
		t.Fatalf("errors = %d, want 3", rt.ExecuteErrors())
	}
}

// TestRecoverFromStaleSnapshotReplaysGap: the snapshot is old; the input
// log replays everything since.
func TestRecoverFromStaleSnapshotReplaysGap(t *testing.T) {
	backend := NewMemoryBackend()
	topo := NewTopology("gap")
	spout := newChanSpout()
	_ = topo.AddSpout("src", spout)
	counter := newCountBolt()
	if err := topo.AddBolt("count", counter, 1).Fields("src", 0).Err(); err != nil {
		t.Fatal(err)
	}
	rt, _ := NewRuntime(topo, Config{Backend: backend})
	rt.Start()

	spout.push(wordTuples("x")...)
	settle(rt)
	if err := rt.Save("count", 0); err != nil { // snapshot: x=1
		t.Fatal(err)
	}
	spout.push(wordTuples("x", "x", "x", "x")...) // gap of 4, logged
	spout.close()
	settle(rt)

	if err := rt.Kill("count", 0); err != nil {
		t.Fatal(err)
	}
	// Wipe in-memory state to simulate real loss.
	if err := counter.store.Restore(mustSnapshot(t, state.NewMapStore())); err != nil {
		t.Fatal(err)
	}
	if err := rt.RecoverTask("count", 0); err != nil {
		t.Fatal(err)
	}
	if err := rt.Wait(); err != nil {
		t.Fatal(err)
	}
	v, ok := counter.store.Get("x")
	if !ok || string(v) != "5" {
		t.Fatalf("count[x] = %s, want 5 (snapshot 1 + replay 4)", v)
	}
}
