package stream

import (
	"strings"
	"testing"

	"sr3/internal/metrics"
	"sr3/internal/obs"
)

// steadyTopo builds spout -> pass(shuffle) -> count(fields, stateful).
func steadyTopo(t testing.TB, tuples []Tuple) *Topology {
	topo := NewTopology("steady")
	if err := topo.AddSpout("src", newSliceSpout(tuples)); err != nil {
		t.Fatal(err)
	}
	pass := BoltFunc(func(tu Tuple, emit Emit) error {
		emit(Tuple{Values: tu.Values, Ts: tu.Ts})
		return nil
	})
	if err := topo.AddBolt("pass", pass, 2).Shuffle("src").Err(); err != nil {
		t.Fatal(err)
	}
	if err := topo.AddBolt("count", newCountBolt(), 1).Fields("pass", 0).Err(); err != nil {
		t.Fatal(err)
	}
	return topo
}

// TestRuntimeInstruments: the steady-state counters, gauges and
// histograms must account for every tuple across a full run including a
// save, a kill and a replayed recovery.
func TestRuntimeInstruments(t *testing.T) {
	tuples := make([]Tuple, 40)
	words := []string{"a", "b", "c", "d"}
	for i := range tuples {
		tuples[i] = Tuple{Values: []any{words[i%len(words)]}}
	}
	reg := metrics.NewRegistry()
	fr := obs.NewFlightRecorder(64)
	rt, err := NewRuntime(steadyTopo(t, tuples[:20]), Config{
		Backend: NewMemoryBackend(),
		Metrics: reg,
		Flight:  fr,
	})
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()
	rt.spoutWG.Wait() // finite spout: all 20 tuples routed after this
	rt.Drain()

	if got := reg.Counter("sr3_stream_spout_tuples_total").Value(); got != 20 {
		t.Fatalf("spout tuples = %d, want 20", got)
	}
	// Every spout tuple lands on pass, every pass emission on count.
	if got := reg.Counter("sr3_stream_tuples_in_total").Value(); got != 40 {
		t.Fatalf("tuples in = %d, want 40", got)
	}
	// pass emits 20 and countBolt emits a count tuple per input: 40.
	if got := reg.Counter("sr3_stream_tuples_out_total").Value(); got != 40 {
		t.Fatalf("tuples out = %d, want 40", got)
	}
	if got := reg.Counter("sr3_stream_acks_total").Value(); got != 40 {
		t.Fatalf("acks = %d, want 40", got)
	}
	if got := reg.Histogram("sr3_stream_proc_ns").Count(); got != 40 {
		t.Fatalf("proc histogram count = %d, want 40", got)
	}
	// Per-task families exist with the key baked into the name.
	if got := reg.Counter("sr3_stream_task_steady/pass/0_tuples_in_total").Value() +
		reg.Counter("sr3_stream_task_steady/pass/1_tuples_in_total").Value(); got != 20 {
		t.Fatalf("per-task pass tuples in = %d, want 20", got)
	}

	// Save samples the state-size gauge on some count task.
	if err := rt.SaveAll(); err != nil {
		t.Fatal(err)
	}
	if reg.Gauge("sr3_stream_task_steady/count/0_state_bytes").Value()+
		reg.Gauge("sr3_stream_task_steady/count/1_state_bytes").Value() <= 0 {
		t.Fatal("state-size gauges not sampled on save")
	}

	// Kill one count task, feed it more tuples, recover: the replay
	// counter must cover the logged tuples.
	if err := rt.Kill("count", 0); err != nil {
		t.Fatal(err)
	}
	for _, tu := range tuples[20:] {
		tu.Stream = "src"
		rt.route("src", tu, ClassIngest, nil)
	}
	rt.Drain()
	if err := rt.RecoverTask("count", 0); err != nil {
		t.Fatal(err)
	}
	replayed := reg.Counter("sr3_stream_task_steady/count/0_replays_total").Value()
	if replayed <= 0 {
		t.Fatalf("replays = %d, want > 0", replayed)
	}
	if got := reg.Counter("sr3_stream_replays_total").Value(); got != replayed {
		t.Fatalf("runtime replay roll-up = %d, want %d", got, replayed)
	}

	if err := rt.Wait(); err != nil {
		t.Fatal(err)
	}

	// High-water gauges ratchet and never exceed capacity.
	hw := reg.Gauge("sr3_stream_task_steady/count/0_queue_high_water").Value()
	if hw < 0 || hw > 256 {
		t.Fatalf("high water = %d out of range", hw)
	}

	// Flight journal saw the lifecycle: start, kill, recover, stop.
	kinds := map[string]bool{}
	for _, ev := range fr.Events() {
		kinds[ev.Kind] = true
	}
	for _, k := range []string{obs.FlightTopologyStart, obs.FlightTaskKill, obs.FlightTaskRecover, obs.FlightTopologyStop} {
		if !kinds[k] {
			t.Fatalf("flight journal missing %s: %+v", k, fr.Events())
		}
	}

	// The exposition renders the per-task families with sanitized names.
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "sr3_stream_task_steady_count_0_replays_total") {
		t.Fatalf("sanitized per-task family missing:\n%s", b.String())
	}
}

// TestRuntimeDebugView: the /debug/sr3 snapshot reflects topology shape
// and progress.
func TestRuntimeDebugView(t *testing.T) {
	tuples := []Tuple{{Values: []any{"x"}}, {Values: []any{"y"}}}
	rt, err := NewRuntime(steadyTopo(t, tuples), Config{Backend: NewMemoryBackend()})
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()
	rt.spoutWG.Wait()
	rt.Drain()
	d := rt.DebugView()
	if d.Name != "steady" || len(d.Spouts) != 1 || d.Spouts[0] != "src" {
		t.Fatalf("debug view head = %+v", d)
	}
	if len(d.Tasks) != 3 {
		t.Fatalf("tasks = %d, want 3", len(d.Tasks))
	}
	var handled int64
	stateful := 0
	for _, task := range d.Tasks {
		handled += task.Handled
		if task.Stateful {
			stateful++
		}
		if task.QueueCap != 256 {
			t.Fatalf("queue cap = %d, want 256", task.QueueCap)
		}
	}
	if handled != 4 || stateful != 1 {
		t.Fatalf("handled=%d stateful=%d, want 4/1", handled, stateful)
	}
	if err := rt.Wait(); err != nil {
		t.Fatal(err)
	}
}

// noopSpout never produces: the benchmarks drive route() directly.
type noopSpout struct{}

func (noopSpout) Next() (Tuple, bool) { return Tuple{}, false }

func benchRuntime(b *testing.B, reg *metrics.Registry) *Runtime {
	topo := NewTopology("bench")
	if err := topo.AddSpout("src", noopSpout{}); err != nil {
		b.Fatal(err)
	}
	drop := BoltFunc(func(Tuple, Emit) error { return nil })
	if err := topo.AddBolt("sink", drop, 1).Shuffle("src").Err(); err != nil {
		b.Fatal(err)
	}
	rt, err := NewRuntime(topo, Config{Metrics: reg})
	if err != nil {
		b.Fatal(err)
	}
	rt.Start()
	return rt
}

// BenchmarkRuntimeDisabled measures the hot path with metrics off — the
// acceptance bar is 0 allocs/op (the nil-instrument checks are free).
func BenchmarkRuntimeDisabled(b *testing.B) {
	rt := benchRuntime(b, nil)
	tuple := Tuple{Stream: "src", Values: []any{"w"}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt.route("src", tuple, ClassIngest, nil)
	}
	rt.Drain()
	b.StopTimer()
	_ = rt.Wait()
}

// BenchmarkRuntimeInstrumented is the same path with live instruments;
// the delta against Disabled is the per-tuple cost of observability.
func BenchmarkRuntimeInstrumented(b *testing.B) {
	rt := benchRuntime(b, metrics.NewRegistry())
	tuple := Tuple{Stream: "src", Values: []any{"w"}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt.route("src", tuple, ClassIngest, nil)
	}
	rt.Drain()
	b.StopTimer()
	_ = rt.Wait()
}
