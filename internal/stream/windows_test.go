package stream

import (
	"testing"
)

func countAgg(window []Tuple) []any { return []any{len(window)} }

func sumAgg(window []Tuple) []any {
	var s float64
	for _, t := range window {
		s += t.FloatAt(0)
	}
	return []any{s}
}

// runWindow drives a window bolt directly with tuples and flush.
func runWindow(t *testing.T, b Bolt, tuples []Tuple) []Tuple {
	t.Helper()
	var out []Tuple
	emit := func(tp Tuple) { out = append(out, tp) }
	for _, tp := range tuples {
		if err := b.Execute(tp, emit); err != nil {
			t.Fatalf("execute: %v", err)
		}
	}
	if f, ok := b.(Flusher); ok {
		if err := f.Flush(emit); err != nil {
			t.Fatalf("flush: %v", err)
		}
	}
	return out
}

func TestTumblingWindowBoundaries(t *testing.T) {
	w := NewTumblingWindow(10, countAgg)
	var tuples []Tuple
	for ts := int64(0); ts < 35; ts += 5 {
		tuples = append(tuples, Tuple{Values: []any{1.0}, Ts: ts})
	}
	out := runWindow(t, w, tuples)
	// Windows [0,10) [10,20) [20,30) [30,40): counts 2,2,2,1.
	if len(out) != 4 {
		t.Fatalf("got %d windows: %v", len(out), out)
	}
	wantCounts := []int{2, 2, 2, 1}
	for i, o := range out {
		if got := o.Values[2].(int); got != wantCounts[i] {
			t.Fatalf("window %d count %d, want %d", i, got, wantCounts[i])
		}
		start := o.Values[0].(int64)
		end := o.Values[1].(int64)
		if end-start != 10 {
			t.Fatalf("window %d bounds [%d,%d)", i, start, end)
		}
	}
}

func TestTumblingWindowEmitsOnWatermark(t *testing.T) {
	w := NewTumblingWindow(10, countAgg)
	var out []Tuple
	emit := func(tp Tuple) { out = append(out, tp) }
	_ = w.Execute(Tuple{Values: []any{1}, Ts: 3}, emit)
	_ = w.Execute(Tuple{Values: []any{1}, Ts: 7}, emit)
	if len(out) != 0 {
		t.Fatal("window closed before watermark passed its end")
	}
	_ = w.Execute(Tuple{Values: []any{1}, Ts: 12}, emit)
	if len(out) != 1 {
		t.Fatalf("watermark 12 should close [0,10): %v", out)
	}
}

func TestTumblingWindowRejectsBadSize(t *testing.T) {
	w := NewTumblingWindow(0, countAgg)
	if err := w.Execute(Tuple{Ts: 1}, func(Tuple) {}); err == nil {
		t.Fatal("zero size should error")
	}
}

func TestSlidingWindowOverlap(t *testing.T) {
	w := NewSlidingWindow(10, 5, sumAgg)
	var tuples []Tuple
	for ts := int64(0); ts < 20; ts++ {
		tuples = append(tuples, Tuple{Values: []any{1.0}, Ts: ts})
	}
	out := runWindow(t, w, tuples)
	if len(out) < 3 {
		t.Fatalf("too few windows: %d", len(out))
	}
	// A full interior window [5,15) must contain 10 tuples.
	found := false
	for _, o := range out {
		if o.Values[0].(int64) == 5 && o.Values[1].(int64) == 15 {
			found = true
			if s := o.Values[2].(float64); s != 10 {
				t.Fatalf("window [5,15) sum %v, want 10", s)
			}
		}
	}
	if !found {
		t.Fatalf("window [5,15) missing: %v", out)
	}
}

func TestSessionWindowGap(t *testing.T) {
	w := NewSessionWindow(5, 0, countAgg)
	tuples := []Tuple{
		{Values: []any{"u1"}, Ts: 0},
		{Values: []any{"u1"}, Ts: 3},
		{Values: []any{"u2"}, Ts: 4},
		{Values: []any{"u1"}, Ts: 20}, // closes u1's first session (gap 17)
		{Values: []any{"u2"}, Ts: 21},
	}
	out := runWindow(t, w, tuples)
	// Sessions: u1[0..3] (closed by watermark), u2[4] (closed), then
	// flush closes u1[20] and u2[21].
	if len(out) != 4 {
		t.Fatalf("got %d sessions: %v", len(out), out)
	}
	// First closed session must be u1 with 2 tuples.
	first := out[0]
	if first.Values[0].(string) != "u1" || first.Values[3].(int) != 2 {
		t.Fatalf("first session %v", first)
	}
}

func TestSessionWindowKeyIsolation(t *testing.T) {
	w := NewSessionWindow(100, 0, countAgg)
	tuples := []Tuple{
		{Values: []any{"a"}, Ts: 0},
		{Values: []any{"b"}, Ts: 1},
		{Values: []any{"a"}, Ts: 2},
	}
	out := runWindow(t, w, tuples)
	if len(out) != 2 {
		t.Fatalf("got %d sessions", len(out))
	}
	counts := map[string]int{}
	for _, o := range out {
		counts[o.Values[0].(string)] = o.Values[3].(int)
	}
	if counts["a"] != 2 || counts["b"] != 1 {
		t.Fatalf("session counts %v", counts)
	}
}

func TestWindowBoltsInTopology(t *testing.T) {
	// Windowed aggregation wired through the runtime.
	var tuples []Tuple
	for ts := int64(0); ts < 100; ts += 2 {
		tuples = append(tuples, Tuple{Values: []any{1.0}, Ts: ts})
	}
	topo := NewTopology("win")
	_ = topo.AddSpout("src", newSliceSpout(tuples))
	if err := topo.AddBolt("window", NewTumblingWindow(20, countAgg), 1).
		Global("src").Err(); err != nil {
		t.Fatal(err)
	}
	out := &sink{}
	if err := topo.AddBolt("sink", out, 1).Global("window").Err(); err != nil {
		t.Fatal(err)
	}
	rt, err := NewRuntime(topo, Config{})
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()
	if err := rt.Wait(); err != nil {
		t.Fatal(err)
	}
	got := out.tuples()
	if len(got) != 5 {
		t.Fatalf("got %d windows, want 5", len(got))
	}
	for _, o := range got {
		if o.Values[2].(int) != 10 {
			t.Fatalf("window count %v, want 10", o.Values[2])
		}
	}
}
