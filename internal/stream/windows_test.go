package stream

import (
	"testing"
)

func countAgg(window []Tuple) []any { return []any{len(window)} }

func sumAgg(window []Tuple) []any {
	var s float64
	for _, t := range window {
		s += t.FloatAt(0)
	}
	return []any{s}
}

// runWindow drives a window bolt directly with tuples and flush.
func runWindow(t *testing.T, b Bolt, tuples []Tuple) []Tuple {
	t.Helper()
	var out []Tuple
	emit := func(tp Tuple) { out = append(out, tp) }
	for _, tp := range tuples {
		if err := b.Execute(tp, emit); err != nil {
			t.Fatalf("execute: %v", err)
		}
	}
	if f, ok := b.(Flusher); ok {
		if err := f.Flush(emit); err != nil {
			t.Fatalf("flush: %v", err)
		}
	}
	return out
}

func TestTumblingWindowBoundaries(t *testing.T) {
	w := NewTumblingWindow(10, countAgg)
	var tuples []Tuple
	for ts := int64(0); ts < 35; ts += 5 {
		tuples = append(tuples, Tuple{Values: []any{1.0}, Ts: ts})
	}
	out := runWindow(t, w, tuples)
	// Windows [0,10) [10,20) [20,30) [30,40): counts 2,2,2,1.
	if len(out) != 4 {
		t.Fatalf("got %d windows: %v", len(out), out)
	}
	wantCounts := []int{2, 2, 2, 1}
	for i, o := range out {
		if got := o.Values[2].(int); got != wantCounts[i] {
			t.Fatalf("window %d count %d, want %d", i, got, wantCounts[i])
		}
		start := o.Values[0].(int64)
		end := o.Values[1].(int64)
		if end-start != 10 {
			t.Fatalf("window %d bounds [%d,%d)", i, start, end)
		}
	}
}

func TestTumblingWindowEmitsOnWatermark(t *testing.T) {
	w := NewTumblingWindow(10, countAgg)
	var out []Tuple
	emit := func(tp Tuple) { out = append(out, tp) }
	_ = w.Execute(Tuple{Values: []any{1}, Ts: 3}, emit)
	_ = w.Execute(Tuple{Values: []any{1}, Ts: 7}, emit)
	if len(out) != 0 {
		t.Fatal("window closed before watermark passed its end")
	}
	_ = w.Execute(Tuple{Values: []any{1}, Ts: 12}, emit)
	if len(out) != 1 {
		t.Fatalf("watermark 12 should close [0,10): %v", out)
	}
}

func TestTumblingWindowRejectsBadSize(t *testing.T) {
	w := NewTumblingWindow(0, countAgg)
	if err := w.Execute(Tuple{Ts: 1}, func(Tuple) {}); err == nil {
		t.Fatal("zero size should error")
	}
}

func TestSlidingWindowOverlap(t *testing.T) {
	w := NewSlidingWindow(10, 5, sumAgg)
	var tuples []Tuple
	for ts := int64(0); ts < 20; ts++ {
		tuples = append(tuples, Tuple{Values: []any{1.0}, Ts: ts})
	}
	out := runWindow(t, w, tuples)
	if len(out) < 3 {
		t.Fatalf("too few windows: %d", len(out))
	}
	// A full interior window [5,15) must contain 10 tuples.
	found := false
	for _, o := range out {
		if o.Values[0].(int64) == 5 && o.Values[1].(int64) == 15 {
			found = true
			if s := o.Values[2].(float64); s != 10 {
				t.Fatalf("window [5,15) sum %v, want 10", s)
			}
		}
	}
	if !found {
		t.Fatalf("window [5,15) missing: %v", out)
	}
}

func TestSessionWindowGap(t *testing.T) {
	w := NewSessionWindow(5, 0, countAgg)
	tuples := []Tuple{
		{Values: []any{"u1"}, Ts: 0},
		{Values: []any{"u1"}, Ts: 3},
		{Values: []any{"u2"}, Ts: 4},
		{Values: []any{"u1"}, Ts: 20}, // closes u1's first session (gap 17)
		{Values: []any{"u2"}, Ts: 21},
	}
	out := runWindow(t, w, tuples)
	// Sessions: u1[0..3] (closed by watermark), u2[4] (closed), then
	// flush closes u1[20] and u2[21].
	if len(out) != 4 {
		t.Fatalf("got %d sessions: %v", len(out), out)
	}
	// First closed session must be u1 with 2 tuples.
	first := out[0]
	if first.Values[0].(string) != "u1" || first.Values[3].(int) != 2 {
		t.Fatalf("first session %v", first)
	}
}

func TestSessionWindowKeyIsolation(t *testing.T) {
	w := NewSessionWindow(100, 0, countAgg)
	tuples := []Tuple{
		{Values: []any{"a"}, Ts: 0},
		{Values: []any{"b"}, Ts: 1},
		{Values: []any{"a"}, Ts: 2},
	}
	out := runWindow(t, w, tuples)
	if len(out) != 2 {
		t.Fatalf("got %d sessions", len(out))
	}
	counts := map[string]int{}
	for _, o := range out {
		counts[o.Values[0].(string)] = o.Values[3].(int)
	}
	if counts["a"] != 2 || counts["b"] != 1 {
		t.Fatalf("session counts %v", counts)
	}
}

func TestWindowBoltsInTopology(t *testing.T) {
	// Windowed aggregation wired through the runtime.
	var tuples []Tuple
	for ts := int64(0); ts < 100; ts += 2 {
		tuples = append(tuples, Tuple{Values: []any{1.0}, Ts: ts})
	}
	topo := NewTopology("win")
	_ = topo.AddSpout("src", newSliceSpout(tuples))
	if err := topo.AddBolt("window", NewTumblingWindow(20, countAgg), 1).
		Global("src").Err(); err != nil {
		t.Fatal(err)
	}
	out := &sink{}
	if err := topo.AddBolt("sink", out, 1).Global("window").Err(); err != nil {
		t.Fatal(err)
	}
	rt, err := NewRuntime(topo, Config{})
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()
	if err := rt.Wait(); err != nil {
		t.Fatal(err)
	}
	got := out.tuples()
	if len(got) != 5 {
		t.Fatalf("got %d windows, want 5", len(got))
	}
	for _, o := range got {
		if o.Values[2].(int) != 10 {
			t.Fatalf("window count %v, want 10", o.Values[2])
		}
	}
}

// TestSessionWindowOutOfOrderStart: a tuple that arrives late but falls
// inside an open session must join it, and the reported session start is
// the minimum event time — not the first arrival.
func TestSessionWindowOutOfOrderStart(t *testing.T) {
	w := NewSessionWindow(5, 0, countAgg)
	out := runWindow(t, w, []Tuple{
		{Values: []any{"u1"}, Ts: 10},
		{Values: []any{"u1"}, Ts: 7}, // out of order, within gap of the open session
		{Values: []any{"u1"}, Ts: 12},
	})
	if len(out) != 1 {
		t.Fatalf("got %d sessions: %v", len(out), out)
	}
	s := out[0]
	if s.Values[1].(int64) != 7 || s.Values[2].(int64) != 12 {
		t.Fatalf("session bounds [%v,%v], want [7,12]", s.Values[1], s.Values[2])
	}
	if s.Values[3].(int) != 3 {
		t.Fatalf("session count %v, want 3", s.Values[3])
	}
}

// TestSessionWindowGapBoundary: a tuple exactly Gap after the last one
// extends the session; Gap+1 splits it.
func TestSessionWindowGapBoundary(t *testing.T) {
	merged := runWindow(t, NewSessionWindow(5, 0, countAgg), []Tuple{
		{Values: []any{"k"}, Ts: 0},
		{Values: []any{"k"}, Ts: 5}, // exactly the gap: still the same session
	})
	if len(merged) != 1 || merged[0].Values[3].(int) != 2 {
		t.Fatalf("gap-boundary tuple split the session: %v", merged)
	}

	split := runWindow(t, NewSessionWindow(5, 0, countAgg), []Tuple{
		{Values: []any{"k"}, Ts: 0},
		{Values: []any{"k"}, Ts: 6}, // one past the gap: new session
	})
	if len(split) != 2 {
		t.Fatalf("past-gap tuple failed to split: %v", split)
	}
	if split[0].Values[1].(int64) != 0 || split[1].Values[1].(int64) != 6 {
		t.Fatalf("split session starts %v / %v, want 0 / 6", split[0].Values[1], split[1].Values[1])
	}
}

// TestSessionWindowIdleKeyClosedByWatermark: an idle key's session must
// close when ANOTHER key's traffic advances the watermark past its gap —
// before any flush.
func TestSessionWindowIdleKeyClosedByWatermark(t *testing.T) {
	w := NewSessionWindow(5, 0, countAgg)
	var out []Tuple
	emit := func(tp Tuple) { out = append(out, tp) }
	for _, tp := range []Tuple{
		{Values: []any{"idle"}, Ts: 0},
		{Values: []any{"busy"}, Ts: 2},
		{Values: []any{"busy"}, Ts: 6}, // watermark 6: idle not yet expired (6-0=6 > 5... )
	} {
		if err := w.Execute(tp, emit); err != nil {
			t.Fatal(err)
		}
	}
	if len(out) != 1 || out[0].Values[0].(string) != "idle" {
		t.Fatalf("idle session not closed by cross-key watermark: %v", out)
	}
	if out[0].Values[3].(int) != 1 {
		t.Fatalf("idle session count %v", out[0].Values[3])
	}
}

// TestSessionWindowLateTupleAfterClose: a tuple older than the watermark
// arriving after its session already closed must form its own session,
// not resurrect or corrupt the closed one.
func TestSessionWindowLateTupleAfterClose(t *testing.T) {
	w := NewSessionWindow(5, 0, countAgg)
	var out []Tuple
	emit := func(tp Tuple) { out = append(out, tp) }
	for _, tp := range []Tuple{
		{Values: []any{"k"}, Ts: 0},
		{Values: []any{"k"}, Ts: 20}, // closes [0,0], opens a new session
		{Values: []any{"k"}, Ts: 2},  // very late: belongs to the closed era
	} {
		if err := w.Execute(tp, emit); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(emit); err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("got %d sessions: %v", len(out), out)
	}
	// Era 1: [0,0]. The late tuple at Ts=2 starts a fresh session that the
	// standing watermark (20) immediately expires as [2,2]. Era 2: [20,20].
	if out[0].Values[1].(int64) != 0 || out[0].Values[2].(int64) != 0 {
		t.Fatalf("first session %v", out[0])
	}
	starts := []int64{out[1].Values[1].(int64), out[2].Values[1].(int64)}
	if !(starts[0] == 2 && starts[1] == 20) && !(starts[0] == 20 && starts[1] == 2) {
		t.Fatalf("late-era sessions have starts %v, want {2, 20}", starts)
	}
}

// TestSessionWindowKeyFieldClamp: out-of-range key fields (negative or
// beyond the tuple) must degrade to a real column, not panic.
func TestSessionWindowKeyFieldClamp(t *testing.T) {
	for _, field := range []int{-3, 7} {
		w := NewSessionWindow(5, field, countAgg)
		out := runWindow(t, w, []Tuple{
			{Values: []any{"a", "x"}, Ts: 0},
			{Values: []any{"a", "x"}, Ts: 1},
		})
		if len(out) != 1 || out[0].Values[3].(int) != 2 {
			t.Fatalf("KeyField=%d: %v", field, out)
		}
	}
}

// TestSessionWindowRejectsBadGap: non-positive gaps error instead of
// looping or dividing by zero.
func TestSessionWindowRejectsBadGap(t *testing.T) {
	w := NewSessionWindow(0, 0, countAgg)
	if err := w.Execute(Tuple{Values: []any{"k"}, Ts: 1}, func(Tuple) {}); err == nil {
		t.Fatal("zero gap should error")
	}
}

// TestTumblingWindowLateDrop: tuples for an already-emitted window are
// dropped and counted, never re-emitted.
func TestTumblingWindowLateDrop(t *testing.T) {
	w := NewTumblingWindow(10, countAgg)
	var out []Tuple
	emit := func(tp Tuple) { out = append(out, tp) }
	_ = w.Execute(Tuple{Values: []any{1}, Ts: 3}, emit)
	_ = w.Execute(Tuple{Values: []any{1}, Ts: 12}, emit) // closes [0,10)
	if len(out) != 1 {
		t.Fatalf("expected [0,10) closed, got %v", out)
	}
	_ = w.Execute(Tuple{Values: []any{1}, Ts: 4}, emit) // late for [0,10)
	if w.Dropped() != 1 {
		t.Fatalf("dropped = %d, want 1", w.Dropped())
	}
	_ = w.Execute(Tuple{Values: []any{1}, Ts: 25}, emit)
	_ = w.Flush(emit)
	// [0,10) must appear exactly once despite the late arrival.
	seen := 0
	for _, o := range out {
		if o.Values[0].(int64) == 0 {
			seen++
		}
	}
	if seen != 1 {
		t.Fatalf("window [0,10) emitted %d times: %v", seen, out)
	}
}

// TestTumblingWindowNegativeTimestamps: pre-epoch event times must land
// in the correct window (floor division, not truncation).
func TestTumblingWindowNegativeTimestamps(t *testing.T) {
	w := NewTumblingWindow(10, countAgg)
	out := runWindow(t, w, []Tuple{
		{Values: []any{1}, Ts: -5},
		{Values: []any{1}, Ts: -1},
		{Values: []any{1}, Ts: 1},
	})
	if len(out) != 2 {
		t.Fatalf("got %d windows: %v", len(out), out)
	}
	if out[0].Values[0].(int64) != -10 || out[0].Values[2].(int) != 2 {
		t.Fatalf("pre-epoch window %v, want start -10 count 2", out[0])
	}
}
