package stream

import (
	"sort"
	"time"

	"sr3/internal/metrics"
)

// instruments are the runtime-wide steady-state metric handles, resolved
// once at NewRuntime so the hot path never does a registry map lookup.
// A nil *instruments (metrics disabled) costs one pointer check per
// recording site and allocates nothing — the same discipline as the
// nil-receiver Tracer in internal/obs.
type instruments struct {
	tuplesIn    *metrics.Counter
	tuplesOut   *metrics.Counter
	acks        *metrics.Counter
	replays     *metrics.Counter
	spoutTuples *metrics.Counter
	emitBlocked *metrics.Counter
	execErrors  *metrics.Counter
	shed        *metrics.Counter
	degraded    *metrics.Gauge
	procNs      *metrics.LatencyHistogram
	blockWaitNs *metrics.LatencyHistogram
}

func newInstruments(reg *metrics.Registry) *instruments {
	return &instruments{
		tuplesIn:    reg.Counter("sr3_stream_tuples_in_total"),
		tuplesOut:   reg.Counter("sr3_stream_tuples_out_total"),
		acks:        reg.Counter("sr3_stream_acks_total"),
		replays:     reg.Counter("sr3_stream_replays_total"),
		spoutTuples: reg.Counter("sr3_stream_spout_tuples_total"),
		emitBlocked: reg.Counter("sr3_stream_emit_blocked_ns_total"),
		execErrors:  reg.Counter("sr3_stream_execute_errors_total"),
		shed:        reg.Counter("sr3_stream_shed_total"),
		degraded:    reg.Gauge("sr3_stream_degraded"),
		procNs:      reg.Histogram("sr3_stream_proc_ns"),
		blockWaitNs: reg.Histogram("sr3_stream_emit_block_wait_ns"),
	}
}

func (in *instruments) noteSpout() {
	if in == nil {
		return
	}
	in.spoutTuples.Inc()
}

// noteDegraded tracks the degraded-service mode gauge (1 while shed
// mode is held).
func (in *instruments) noteDegraded(on bool) {
	if in == nil {
		return
	}
	if on {
		in.degraded.Set(1)
	} else {
		in.degraded.Set(0)
	}
}

// taskInstruments are one task's metric handles plus the runtime-wide
// roll-ups, so each event is recorded at both granularities with no
// lookup. Per-task metric names embed the task key (the registry has no
// label support; promName maps the key's slashes to underscores), e.g.
// sr3_stream_task_wordcount_counter_0_proc_ns.
type taskInstruments struct {
	rt          *instruments
	tuplesIn    *metrics.Counter
	tuplesOut   *metrics.Counter
	acks        *metrics.Counter
	replays     *metrics.Counter
	shed        *metrics.Counter
	procNs      *metrics.LatencyHistogram
	blockWaitNs *metrics.LatencyHistogram
	depth       *metrics.Gauge
	highWater   *metrics.Gauge
	stateBytes  *metrics.Gauge
	emitBlocked *metrics.Counter
}

func newTaskInstruments(rt *instruments, reg *metrics.Registry, key string) *taskInstruments {
	p := "sr3_stream_task_" + key
	return &taskInstruments{
		rt:          rt,
		tuplesIn:    reg.Counter(p + "_tuples_in_total"),
		tuplesOut:   reg.Counter(p + "_tuples_out_total"),
		acks:        reg.Counter(p + "_acks_total"),
		replays:     reg.Counter(p + "_replays_total"),
		shed:        reg.Counter(p + "_shed_total"),
		procNs:      reg.Histogram(p + "_proc_ns"),
		blockWaitNs: reg.Histogram(p + "_emit_block_wait_ns"),
		depth:       reg.Gauge(p + "_queue_depth"),
		highWater:   reg.Gauge(p + "_queue_high_water"),
		stateBytes:  reg.Gauge(p + "_state_bytes"),
		emitBlocked: reg.Counter(p + "_emit_blocked_ns_total"),
	}
}

// noteIn records one tuple landing on the input channel and samples its
// depth as the backpressure signal (depth is the post-send occupancy, the
// high-water gauge ratchets).
func (ti *taskInstruments) noteIn(depth int) {
	if ti == nil {
		return
	}
	ti.tuplesIn.Inc()
	ti.rt.tuplesIn.Inc()
	d := int64(depth)
	ti.depth.Set(d)
	ti.highWater.SetMax(d)
}

// noteBlocked accounts time a sender spent blocked on this task's full
// input queue — emit-side backpressure. The counter accumulates total
// blocked nanoseconds; the histogram keeps the per-wait distribution so
// quantiles of backpressure stalls are observable, not just their sum.
func (ti *taskInstruments) noteBlocked(ns int64) {
	if ti == nil {
		return
	}
	ti.emitBlocked.Add(ns)
	ti.rt.emitBlocked.Add(ns)
	ti.blockWaitNs.Record(ns)
	ti.rt.blockWaitNs.Record(ns)
}

// noteShedN records n data tuples dropped by the queue policy or
// degraded-mode admission — n > 1 when a whole batch frame is shed (the
// ledger counts tuples, never frames).
func (ti *taskInstruments) noteShedN(n int) {
	if ti == nil || n == 0 {
		return
	}
	ti.shed.Add(int64(n))
	ti.rt.shed.Add(int64(n))
}

// noteInN records n tuples landing on the input queue in one frame and
// samples its depth, the batched counterpart of noteIn.
func (ti *taskInstruments) noteInN(n, depth int) {
	if ti == nil {
		return
	}
	ti.tuplesIn.Add(int64(n))
	ti.rt.tuplesIn.Add(int64(n))
	d := int64(depth)
	ti.depth.Set(d)
	ti.highWater.SetMax(d)
}

// noteEmit records one tuple emitted by this task's bolt.
func (ti *taskInstruments) noteEmit() {
	if ti == nil {
		return
	}
	ti.tuplesOut.Inc()
	ti.rt.tuplesOut.Inc()
}

// noteAck records a fully processed tuple and its processing latency.
func (ti *taskInstruments) noteAck(start time.Time) {
	if ti == nil {
		return
	}
	ns := time.Since(start).Nanoseconds()
	ti.acks.Inc()
	ti.rt.acks.Inc()
	ti.procNs.Record(ns)
	ti.rt.procNs.Record(ns)
}

// noteExecError records a bolt Execute call that returned an error.
func (ti *taskInstruments) noteExecError() {
	if ti == nil {
		return
	}
	ti.rt.execErrors.Inc()
}

// noteReplay records tuples re-executed from the input log on recovery.
func (ti *taskInstruments) noteReplay(n int) {
	if ti == nil || n == 0 {
		return
	}
	ti.replays.Add(int64(n))
	ti.rt.replays.Add(int64(n))
}

// noteState samples the size of the last saved snapshot.
func (ti *taskInstruments) noteState(bytes int) {
	if ti == nil {
		return
	}
	ti.stateBytes.Set(int64(bytes))
}

// TaskDebug is one task's row in the /debug/sr3 introspection view.
type TaskDebug struct {
	Key        string `json:"key"`
	Bolt       string `json:"bolt"`
	Index      int    `json:"index"`
	Stateful   bool   `json:"stateful"`
	Handled    int64  `json:"handled"`
	QueueDepth int    `json:"queue_depth"`
	QueueCap   int    `json:"queue_cap"`
	Offered    int64  `json:"offered"`
	Shed       int64  `json:"shed,omitempty"`
}

// TopologyDebug is a live point-in-time view of a running topology.
type TopologyDebug struct {
	Name          string      `json:"name"`
	Spouts        []string    `json:"spouts"`
	Tasks         []TaskDebug `json:"tasks"`
	Pending       int64       `json:"pending"`
	ExecuteErrors int64       `json:"execute_errors"`
	Degraded      bool        `json:"degraded,omitempty"`
	Shed          int64       `json:"shed,omitempty"`
}

// DebugView snapshots the runtime for the /debug/sr3 endpoint. Safe to
// call concurrently with processing: it reads only atomics and channel
// occupancy.
func (rt *Runtime) DebugView() TopologyDebug {
	d := TopologyDebug{
		Name:          rt.topo.name,
		Pending:       rt.pending.Load(),
		ExecuteErrors: rt.failures.Load(),
		Degraded:      rt.Degraded(),
		Shed:          rt.shedAll.Load(),
	}
	for id := range rt.topo.spouts {
		d.Spouts = append(d.Spouts, id)
	}
	sort.Strings(d.Spouts)
	for _, id := range rt.topo.sortedBolts() {
		for _, t := range rt.tasks[id] {
			d.Tasks = append(d.Tasks, TaskDebug{
				Key:        t.key,
				Bolt:       t.boltID,
				Index:      t.index,
				Stateful:   t.decl.stateful,
				Handled:    t.handled.Load(),
				QueueDepth: t.in.depth(),
				QueueCap:   t.in.capacity(),
				Offered:    t.offered.Load(),
				Shed:       t.shed.Load(),
			})
		}
	}
	return d
}
