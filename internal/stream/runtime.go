package stream

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"sr3/internal/metrics"
	"sr3/internal/obs"
	"sr3/internal/state"
)

// StateBackend persists and recovers task state. SR3 and the
// checkpointing baseline both implement it (backend.go).
type StateBackend interface {
	Save(taskKey string, snapshot []byte, v state.Version) error
	Recover(taskKey string) ([]byte, error)
}

// TracedBackend is the traced extension of StateBackend: the recovery's
// spans parent on the caller's trace. SR3Backend implements it; backends
// that don't are recovered untraced.
type TracedBackend interface {
	RecoverTraced(taskKey string, tr *obs.Tracer, parent obs.SpanContext) ([]byte, error)
}

// Config tunes a runtime.
type Config struct {
	// Backend stores stateful task snapshots; nil disables state saving.
	Backend StateBackend
	// SaveEveryTuples triggers an automatic state save after a stateful
	// task processes that many tuples (0 disables; SaveAll still works).
	SaveEveryTuples int
	// ChannelDepth is the per-task input queue capacity. Streams need
	// more than the usual one-slot buffer: the queue absorbs grouping
	// skew and provides backpressure; 256 matches Storm's small executor
	// queues. The capacity is exact — a task's data queue never holds
	// more than ChannelDepth tuples, and overflow is resolved by
	// QueuePolicy.
	ChannelDepth int
	// QueuePolicy selects the full-queue behavior: QueueBlock (default,
	// credit-based backpressure — the producer waits for a slot),
	// QueueShedOldest, or QueueShedPriority. Shed policies never drop
	// replay-class tuples; exactly-once for admitted tuples is preserved
	// under every policy.
	QueuePolicy QueuePolicy
	// ShedWatermark is the degraded-mode admission bound as a fraction
	// of ChannelDepth (default 0.75): while the runtime is in
	// degraded-service mode (EnterDegraded), new ingest-class tuples are
	// shed once a queue is filled past the watermark, reserving the
	// headroom above it for replay and recovery traffic.
	ShedWatermark float64
	// IngestWindow caps the in-flight (routed but unprocessed) tuple
	// count seen by spout pumps: a pump pauses when pending >= window —
	// ingest admission control, the credit-based upstream half of
	// backpressure. 0 disables the gate.
	IngestWindow int
	// BatchSize enables the batched tuple plane: producers coalesce up
	// to this many same-class tuples per destination task into one
	// pooled frame before offering it to the task queue, amortizing the
	// per-tuple queue cost. <= 1 (the default) keeps per-tuple delivery.
	// Every overload invariant survives batching: a batch carries one
	// traffic class, replay batches are never shed, and the offered/
	// shed ledger is settled per tuple.
	BatchSize int
	// BatchLinger bounds how long a partial batch may buffer before the
	// background flusher pushes it (default 1ms when batching is on) —
	// the latency cost ceiling of batching under low rates.
	BatchLinger time.Duration
	// Codec selects the tuple encoding for frames that cross a process
	// boundary (the sr3bench throughput wire harness and any remote
	// shuffle built on nettransport.BatchConn): CodecGob is the
	// per-tuple gob baseline and universal fallback, CodecBatch the
	// compact length-prefixed binary batch codec. In-process queues
	// pass tuples by reference and never encode.
	Codec Codec
	// Now supplies timestamps for state versions (injected for tests).
	Now func() int64
	// Metrics enables steady-state instruments (per-task tuple counters,
	// processing-latency histograms, queue-depth/backpressure gauges) in
	// the given registry. Nil disables them; the disabled hot path costs
	// one nil check per site and allocates nothing.
	Metrics *metrics.Registry
	// Flight, when set, journals topology lifecycle and task kill/recover
	// events into the always-on flight recorder.
	Flight *obs.FlightRecorder
}

func (c Config) withDefaults() Config {
	if c.ChannelDepth <= 0 {
		c.ChannelDepth = 256
	}
	if c.ShedWatermark <= 0 || c.ShedWatermark > 1 {
		c.ShedWatermark = 0.75
	}
	if c.Now == nil {
		c.Now = func() int64 { return time.Now().UnixMilli() }
	}
	if c.BatchSize > 1 && c.BatchLinger <= 0 {
		c.BatchLinger = time.Millisecond
	}
	return c
}

// Runtime errors.
var (
	ErrUnknownTask   = errors.New("stream: unknown task")
	ErrNotStateful   = errors.New("stream: bolt is not stateful")
	ErrTaskDead      = errors.New("stream: task is dead")
	ErrTaskAlive     = errors.New("stream: task is alive")
	ErrNoBackend     = errors.New("stream: no state backend configured")
	ErrAlreadyWaited = errors.New("stream: runtime already drained")
)

type ctlKind int

const (
	ctlTuple ctlKind = iota + 1
	ctlBatch
	ctlSave
	ctlKill
	ctlRecover
	ctlFlush
	ctlStop
)

type envelope struct {
	kind  ctlKind
	tuple Tuple
	batch *tupleBatch  // ctlBatch only: a pooled frame of same-class tuples
	class TrafficClass // ctlTuple/ctlBatch: ingest vs replay admission class
	done  chan error
	// tr/traceParent ride on ctlRecover envelopes so the backend recovery
	// and the input-log replay land in the caller's trace.
	tr          *obs.Tracer
	traceParent obs.SpanContext
}

// task is one executor instance of a bolt.
type task struct {
	key      string
	boltID   string
	index    int
	slot     int // dense runtime-wide index, addressing batcher buffers
	decl     *boltDecl
	in       *taskQueue
	log      []Tuple // tuples since last save (executor goroutine only)
	dead     bool
	saveSeq  uint64
	sinceSav int
	handled  atomic.Int64
	offered  atomic.Int64 // data tuples routed at this task
	shed     atomic.Int64 // data tuples dropped by queue policy / degraded mode
	// curClass is the class of the tuple the executor is currently
	// processing (executor goroutine only): emissions inherit it, so the
	// descendants of a replayed tuple stay replay-class downstream.
	curClass TrafficClass
	instr    *taskInstruments // nil when Config.Metrics is unset
}

// Runtime executes one topology.
type Runtime struct {
	topo *Topology
	cfg  Config

	tasks    map[string][]*task // boltID -> tasks
	slots    []*task            // all tasks by dense slot (batcher addressing)
	subs     map[string][]subscription
	shuffle  map[string]*atomic.Int64 // per (bolt|input) round-robin
	pending  atomic.Int64
	execWG   sync.WaitGroup
	spoutWG  sync.WaitGroup
	waited   bool
	stopped  chan struct{} // closed once Wait has shut the executors down
	failures atomic.Int64  // bolt Execute errors (reported, not fatal)
	instr    *instruments  // nil when Config.Metrics is unset

	offeredAll atomic.Int64 // data tuples routed, all tasks
	shedAll    atomic.Int64 // data tuples shed, all tasks

	// Degraded-service mode (admission control during recovery): a
	// refcount so overlapping recoveries nest, plus the offered/shed
	// snapshot taken at entry so the exit flight event carries the exact
	// accounting for the window.
	degraded   atomic.Int32
	degMu      sync.Mutex
	degOffered int64
	degShed    int64

	// Batched tuple plane (Config.BatchSize > 1): the frame pool, the
	// registry of producer batchers the linger flusher sweeps, and the
	// flusher's lifecycle handles.
	batchPool sync.Pool
	batchMu   sync.Mutex
	batchers  []*batcher
	flushStop chan struct{}
	flushWG   sync.WaitGroup
}

// TaskKey names a task for backends and failure injection.
func TaskKey(topo, bolt string, index int) string {
	return fmt.Sprintf("%s/%s/%d", topo, bolt, index)
}

// NewRuntime validates the topology and materializes its tasks.
func NewRuntime(topo *Topology, cfg Config) (*Runtime, error) {
	if err := topo.validate(); err != nil {
		return nil, fmt.Errorf("stream: %w", err)
	}
	cfg = cfg.withDefaults()
	rt := &Runtime{
		topo:    topo,
		cfg:     cfg,
		tasks:   make(map[string][]*task),
		subs:    make(map[string][]subscription),
		shuffle: make(map[string]*atomic.Int64),
		stopped: make(chan struct{}),
	}
	if cfg.Metrics != nil {
		rt.instr = newInstruments(cfg.Metrics)
	}
	batchCap := cfg.BatchSize
	rt.batchPool.New = func() any {
		return &tupleBatch{tuples: make([]Tuple, 0, batchCap)}
	}
	for _, id := range topo.order {
		decl, ok := topo.bolts[id]
		if !ok {
			continue
		}
		watermark := int(float64(cfg.ChannelDepth) * cfg.ShedWatermark)
		ts := make([]*task, decl.parallel)
		for i := range ts {
			ts[i] = &task{
				key:    TaskKey(topo.name, id, i),
				boltID: id,
				index:  i,
				slot:   len(rt.slots),
				decl:   decl,
				in:     newTaskQueue(cfg.ChannelDepth, cfg.QueuePolicy, watermark),
			}
			rt.slots = append(rt.slots, ts[i])
			if rt.instr != nil {
				ts[i].instr = newTaskInstruments(rt.instr, cfg.Metrics, ts[i].key)
			}
		}
		rt.tasks[id] = ts
		for _, in := range decl.inputs {
			rt.subs[in.from] = append(rt.subs[in.from], subscription{decl: decl, in: in})
			rt.shuffle[id+"|"+in.from] = &atomic.Int64{}
		}
	}
	return rt, nil
}

// Start launches executors and spout pumps (plus the batch linger
// flusher when the batched tuple plane is enabled).
func (rt *Runtime) Start() {
	if rt.cfg.BatchSize > 1 {
		rt.flushStop = make(chan struct{})
		rt.flushWG.Add(1)
		go rt.runFlusher()
	}
	n := 0
	for _, ts := range rt.tasks {
		for _, t := range ts {
			rt.execWG.Add(1)
			go rt.runTask(t)
			n++
		}
	}
	rt.cfg.Flight.Note(obs.FlightTopologyStart, "", rt.topo.name,
		fmt.Sprintf("tasks=%d spouts=%d", n, len(rt.topo.spouts)), nil)
	for id, s := range rt.topo.spouts {
		rt.spoutWG.Add(1)
		go func(id string, sp Spout) {
			defer rt.spoutWG.Done()
			ob := rt.newBatcher() // nil when batching is off
			window := int64(rt.cfg.IngestWindow)
			for {
				tuple, ok := sp.Next()
				if !ok {
					ob.flushAll()
					return
				}
				// Ingest admission gate: hold new spout tuples while the
				// in-flight count is at the window — upstream credit-based
				// backpressure, so overload queues at the source instead
				// of fanning out into the topology. Buffered batches count
				// against the window, so flush them while gated or the
				// gate would wait on tuples only we can release.
				for window > 0 && rt.pending.Load() >= window {
					ob.flushAll()
					time.Sleep(100 * time.Microsecond)
				}
				tuple.Stream = id
				rt.instr.noteSpout()
				rt.route(id, tuple, ClassIngest, ob)
			}
		}(id, s.spout)
	}
}

// subscription is one (bolt, input) edge.
type subscription struct {
	decl *boltDecl
	in   input
}

// ErrUnknownStream reports an Inject for a component this runtime never
// declared (spout, source, or bolt).
var ErrUnknownStream = errors.New("stream: unknown source component")

// Inject delivers one externally produced tuple as if component from had
// emitted it locally, under the given admission class — the ingress path
// of a multi-process deployment: a peer node's relay pushes batch frames
// across the wire and the receiving daemon injects each tuple here, so
// local grouping subscriptions (fields/shuffle/global/all) route it to
// the right task. Replay-class injections keep their shed immunity.
// Blocks for queue backpressure exactly like a local emission.
func (rt *Runtime) Inject(from string, tuple Tuple, class TrafficClass) error {
	if !rt.topo.has(from) {
		return fmt.Errorf("inject from %q: %w", from, ErrUnknownStream)
	}
	tuple.Stream = from
	rt.route(from, tuple, class, nil)
	return nil
}

// InjectTo is Inject restricted to a single subscribing bolt: the tuple
// routes only through toBolt's subscription to from, under that edge's
// grouping. Relays are per-edge — a node hosting two subscribers of the
// same upstream component runs one ingress per edge — so the unfiltered
// Inject would double-deliver to whichever subscriber the other relay
// also feeds.
func (rt *Runtime) InjectTo(from, toBolt string, tuple Tuple, class TrafficClass) error {
	if !rt.topo.has(from) {
		return fmt.Errorf("inject from %q: %w", from, ErrUnknownStream)
	}
	if _, ok := rt.tasks[toBolt]; !ok {
		return fmt.Errorf("inject to %q: %w", toBolt, ErrUnknownTask)
	}
	tuple.Stream = from
	for _, sub := range rt.subs[from] {
		if sub.decl.id != toBolt {
			continue
		}
		rt.routeSub(sub, from, tuple, class, nil)
	}
	return nil
}

// route delivers a tuple from a component to all subscribing bolts,
// tagging every delivery with the traffic class of its origin. ob is
// the producer's batcher (nil selects the per-tuple enqueue path);
// grouping decisions stay per-tuple — batching happens after the
// destination task is chosen, so Fields/Shuffle/Global semantics are
// untouched.
func (rt *Runtime) route(from string, tuple Tuple, class TrafficClass, ob *batcher) {
	for _, sub := range rt.subs[from] {
		rt.routeSub(sub, from, tuple, class, ob)
	}
}

// routeSub applies one subscription's grouping to pick the destination
// task(s) and delivers.
func (rt *Runtime) routeSub(sub subscription, from string, tuple Tuple, class TrafficClass, ob *batcher) {
	ts := rt.tasks[sub.decl.id]
	switch sub.in.grouping {
	case ShuffleGrouping:
		ctr := rt.shuffle[sub.decl.id+"|"+from]
		idx := int(ctr.Add(1)-1) % len(ts)
		rt.deliver(ts[idx], tuple, class, ob)
	case FieldsGrouping:
		var key any
		if sub.in.field < len(tuple.Values) {
			key = tuple.Values[sub.in.field]
		}
		rt.deliver(ts[hashField(key, len(ts))], tuple, class, ob)
	case GlobalGrouping:
		rt.deliver(ts[0], tuple, class, ob)
	case AllGrouping:
		for _, t := range ts {
			rt.deliver(t, tuple, class, ob)
		}
	}
}

// deliver hands one tuple to a task: buffered into the producer's
// batcher when batching is on, queued directly otherwise. Either way
// the tuple counts pending immediately, so Drain covers buffered
// tuples.
func (rt *Runtime) deliver(t *task, tuple Tuple, class TrafficClass, ob *batcher) {
	if ob == nil {
		rt.enqueue(t, tuple, class)
		return
	}
	rt.pending.Add(1)
	ob.add(t, tuple, class)
}

// enqueue offers one data tuple to a task's queue, keeping the
// offered/shed accounting exact: every tuple counts as offered, and
// every shed tuple (the incoming one or an evicted older one) counts as
// shed exactly once, so admitted = offered − shed always holds.
func (rt *Runtime) enqueue(t *task, tuple Tuple, class TrafficClass) {
	rt.pending.Add(1)
	t.offered.Add(1)
	rt.offeredAll.Add(1)
	degraded := rt.degraded.Load() > 0
	env := envelope{kind: ctlTuple, tuple: tuple, class: class}
	if t.instr == nil {
		outcome, evicted, _ := t.in.pushData(env, degraded)
		rt.settlePush(t, outcome, env, evicted)
		return
	}
	// Instrumented path: time the push — if it had to wait for a slot,
	// that wait is the backpressure signal.
	start := time.Now()
	outcome, evicted, waited := t.in.pushData(env, degraded)
	if waited {
		t.instr.noteBlocked(time.Since(start).Nanoseconds())
	}
	rt.settlePush(t, outcome, env, evicted)
	t.instr.noteIn(t.in.depth())
}

// settlePush settles the ledger for one pushData outcome in tuples:
// under shed-self the offered envelope's own tuples are debited, under
// shed-oldest the evicted envelope's. Shed batch frames are recycled
// here — their tuples will never reach an executor.
func (rt *Runtime) settlePush(t *task, outcome pushOutcome, env, evicted envelope) {
	switch outcome {
	case pushShedSelf:
		rt.noteShed(t, env.tupleCount())
		if env.batch != nil {
			rt.putBatch(env.batch)
		}
	case pushShedOldest:
		rt.noteShed(t, evicted.tupleCount())
		if evicted.batch != nil {
			rt.putBatch(evicted.batch)
		}
	}
}

// noteShed debits n shed tuples: they will never be processed, so they
// leave the pending count and join the shed tally.
func (rt *Runtime) noteShed(t *task, n int) {
	if n == 0 {
		return
	}
	rt.pending.Add(int64(-n))
	t.shed.Add(int64(n))
	rt.shedAll.Add(int64(n))
	t.instr.noteShedN(n)
}

// runTask is the executor loop: a single goroutine owns the task's log,
// state and liveness, so control operations serialize naturally with
// tuple processing.
func (rt *Runtime) runTask(t *task) {
	defer rt.execWG.Done()
	ob := rt.newBatcher() // this executor's output batcher; nil when off
	emit := func(out Tuple) {
		out.Stream = t.boltID
		t.instr.noteEmit()
		// Emissions inherit the class of the tuple being processed, so
		// replay descendants keep their shed immunity downstream.
		rt.route(t.boltID, out, t.curClass, ob)
	}
	for {
		env, ok := t.in.tryPop()
		if !ok {
			// Idle: nothing to process, so nothing new will fill our
			// partial output batches — push them downstream before
			// parking, then block for the next envelope.
			ob.flushAll()
			env = t.in.pop()
		}
		switch env.kind {
		case ctlTuple:
			rt.execTuple(t, env.tuple, env.class, emit)
			rt.pending.Add(-1)

		case ctlBatch:
			// One admitted frame: every carried tuple runs through the
			// identical per-tuple path (log, execute, periodic save), so
			// recovery replay and exactly-once semantics cannot tell
			// batched delivery from per-tuple delivery.
			for _, tuple := range env.batch.tuples {
				rt.execTuple(t, tuple, env.batch.class, emit)
				rt.pending.Add(-1)
			}
			rt.putBatch(env.batch)

		case ctlSave:
			env.done <- rt.saveTask(t)

		case ctlKill:
			t.dead = true
			rt.cfg.Flight.Note(obs.FlightTaskKill, "", rt.topo.name, t.key, nil)
			env.done <- nil

		case ctlRecover:
			err := rt.recoverTask(t, emit, env.tr, env.traceParent)
			// Barrier flush: replayed emissions must be visible before
			// the recovery reply, not parked until the next idle sweep.
			ob.flushAll()
			env.done <- err

		case ctlFlush:
			var err error
			if f, ok := t.decl.bolt.(Flusher); ok && !t.dead {
				err = f.Flush(emit)
			}
			ob.flushAll()
			env.done <- err

		case ctlStop:
			env.done <- nil
			return
		}
	}
}

// execTuple is the per-tuple executor body, shared by the per-tuple and
// batched delivery paths: input-log append, execute, periodic save.
func (rt *Runtime) execTuple(t *task, tuple Tuple, class TrafficClass, emit Emit) {
	t.curClass = class
	if t.decl.stateful {
		t.log = append(t.log, tuple)
	}
	if t.dead {
		return
	}
	var start time.Time
	if t.instr != nil {
		start = time.Now()
	}
	var err error
	if cb, ok := t.decl.bolt.(ClassedBolt); ok {
		err = cb.ExecuteClassed(tuple, class, emit)
	} else {
		err = t.decl.bolt.Execute(tuple, emit)
	}
	if err != nil {
		rt.failures.Add(1)
		t.instr.noteExecError()
	}
	t.instr.noteAck(start)
	t.handled.Add(1)
	t.sinceSav++
	if rt.cfg.SaveEveryTuples > 0 && t.decl.stateful &&
		t.sinceSav >= rt.cfg.SaveEveryTuples {
		_ = rt.saveTask(t) // periodic save failure is not fatal
	}
}

// saveTask snapshots the bolt's state into the backend and truncates the
// input log (executor goroutine only).
func (rt *Runtime) saveTask(t *task) error {
	if !t.decl.stateful {
		return fmt.Errorf("save %s: %w", t.key, ErrNotStateful)
	}
	if rt.cfg.Backend == nil {
		return fmt.Errorf("save %s: %w", t.key, ErrNoBackend)
	}
	if t.dead {
		return fmt.Errorf("save %s: %w", t.key, ErrTaskDead)
	}
	sb, ok := t.decl.bolt.(StatefulBolt)
	if !ok {
		return fmt.Errorf("save %s: %w", t.key, ErrNotStateful)
	}
	snap, err := sb.Store().Snapshot()
	if err != nil {
		return fmt.Errorf("save %s: %w", t.key, err)
	}
	t.saveSeq++
	v := state.Version{Timestamp: rt.cfg.Now(), Seq: t.saveSeq}
	if err := rt.cfg.Backend.Save(t.key, snap, v); err != nil {
		return fmt.Errorf("save %s: %w", t.key, err)
	}
	t.instr.noteState(len(snap))
	t.log = nil
	t.sinceSav = 0
	return nil
}

// recoverTask restores the last saved snapshot and replays the input log
// (executor goroutine only). With a tracer, the backend recovery parents
// its spans on parent and the replay is one PhaseReplay span.
func (rt *Runtime) recoverTask(t *task, emit Emit, tr *obs.Tracer, parent obs.SpanContext) error {
	if !t.dead {
		return fmt.Errorf("recover %s: %w", t.key, ErrTaskAlive)
	}
	sb, ok := t.decl.bolt.(StatefulBolt)
	if !ok {
		return fmt.Errorf("recover %s: %w", t.key, ErrNotStateful)
	}
	if rt.cfg.Backend == nil {
		return fmt.Errorf("recover %s: %w", t.key, ErrNoBackend)
	}
	var snap []byte
	var err error
	if tb, ok := rt.cfg.Backend.(TracedBackend); ok && tr.Enabled() && parent.Valid() {
		snap, err = tb.RecoverTraced(t.key, tr, parent)
	} else {
		snap, err = rt.cfg.Backend.Recover(t.key)
	}
	if err != nil {
		return fmt.Errorf("recover %s: %w", t.key, err)
	}
	if err := sb.Store().Restore(snap); err != nil {
		return fmt.Errorf("recover %s: %w", t.key, err)
	}
	var sp *obs.Span
	if parent.Valid() {
		sp = tr.StartSpan(parent, obs.PhaseReplay)
		sp.SetStr("task", t.key)
		sp.SetInt("tuples", int64(len(t.log)))
	}
	// Replayed tuples — and everything they emit downstream — are
	// replay-class: shed policies and degraded mode may not drop them.
	t.curClass = ClassReplay
	for _, tuple := range t.log {
		if err := t.decl.bolt.Execute(tuple, emit); err != nil {
			rt.failures.Add(1)
			t.instr.noteExecError()
		}
		t.handled.Add(1)
	}
	t.curClass = ClassIngest
	t.instr.noteReplay(len(t.log))
	sp.End()
	t.dead = false
	rt.cfg.Flight.Note(obs.FlightTaskRecover, "", rt.topo.name,
		fmt.Sprintf("%s replayed=%d", t.key, len(t.log)), nil)
	return nil
}

// control sends one control envelope to a task's executor. Control
// envelopes ride the queue's unbounded control lane — the executor
// drains it before data, so a kill or recover never waits behind a
// backlog of tuples (the weighted dequeue that keeps recovery responsive
// under overload). The reply races against runtime shutdown: a
// supervisor may issue a kill/recover after Wait has already stopped the
// executor, and blocking on a reply nobody will send would deadlock the
// caller. The stopped channel turns that into ErrAlreadyWaited instead.
func (rt *Runtime) control(bolt string, index int, kind ctlKind) error {
	return rt.controlEnv(bolt, index, envelope{kind: kind})
}

func (rt *Runtime) controlEnv(bolt string, index int, env envelope) error {
	ts, ok := rt.tasks[bolt]
	if !ok || index < 0 || index >= len(ts) {
		return fmt.Errorf("%s[%d]: %w", bolt, index, ErrUnknownTask)
	}
	select {
	case <-rt.stopped:
		return fmt.Errorf("%s[%d]: %w", bolt, index, ErrAlreadyWaited)
	default:
	}
	done := make(chan error, 1)
	env.done = done
	ts[index].in.pushCtl(env)
	select {
	case err := <-done:
		return err
	case <-rt.stopped:
		return fmt.Errorf("%s[%d]: %w", bolt, index, ErrAlreadyWaited)
	}
}

// Save snapshots one stateful task's state through the backend.
func (rt *Runtime) Save(bolt string, index int) error {
	return rt.control(bolt, index, ctlSave)
}

// SaveAll snapshots every stateful task.
func (rt *Runtime) SaveAll() error {
	for _, id := range rt.topo.order {
		decl, ok := rt.topo.bolts[id]
		if !ok || !decl.stateful {
			continue
		}
		for i := range rt.tasks[id] {
			if err := rt.Save(id, i); err != nil {
				return err
			}
		}
	}
	return nil
}

// Kill crashes a task: it stops processing (its in-memory state is
// considered lost) but keeps logging arriving tuples for replay.
func (rt *Runtime) Kill(bolt string, index int) error {
	return rt.control(bolt, index, ctlKill)
}

// RecoverTask restores a killed task from the backend and replays its
// input log.
func (rt *Runtime) RecoverTask(bolt string, index int) error {
	return rt.control(bolt, index, ctlRecover)
}

// taskByKey resolves a task key ("topo/bolt/idx") to its bolt and index.
func (rt *Runtime) taskByKey(key string) (string, int, error) {
	for bolt, ts := range rt.tasks {
		for _, t := range ts {
			if t.key == key {
				return bolt, t.index, nil
			}
		}
	}
	return "", 0, fmt.Errorf("%s: %w", key, ErrUnknownTask)
}

// KillByKey crashes the task with the given task key — the supervisor's
// entry point, which knows tasks by the keys the state backend uses.
func (rt *Runtime) KillByKey(key string) error {
	bolt, index, err := rt.taskByKey(key)
	if err != nil {
		return err
	}
	return rt.Kill(bolt, index)
}

// RecoverTaskByKey restores a killed task by its task key (backend
// recovery plus input-log replay), for the supervisor.
func (rt *Runtime) RecoverTaskByKey(key string) error {
	bolt, index, err := rt.taskByKey(key)
	if err != nil {
		return err
	}
	return rt.RecoverTask(bolt, index)
}

// RecoverTaskByKeyTraced is RecoverTaskByKey with the recovery and
// replay spans parented on the caller's trace — the supervisor's traced
// restore path (supervise.TracedTaskRuntime).
func (rt *Runtime) RecoverTaskByKeyTraced(key string, tr *obs.Tracer, parent obs.SpanContext) error {
	bolt, index, err := rt.taskByKey(key)
	if err != nil {
		return err
	}
	return rt.controlEnv(bolt, index, envelope{kind: ctlRecover, tr: tr, traceParent: parent})
}

// StatefulTaskKeys lists the task keys of all stateful tasks, in
// topological bolt order — what a supervisor protects.
func (rt *Runtime) StatefulTaskKeys() []string {
	var out []string
	for _, id := range rt.topo.sortedBolts() {
		decl, ok := rt.topo.bolts[id]
		if !ok || !decl.stateful {
			continue
		}
		for _, t := range rt.tasks[id] {
			out = append(out, t.key)
		}
	}
	return out
}

// Flusher lets windowed bolts emit buffered results when the stream
// ends. Wait calls Flush on each bolt in topological order.
type Flusher interface {
	Flush(emit Emit) error
}

// Wait blocks until all spouts are exhausted and every in-flight tuple is
// processed, flushes windowed bolts in dependency order, then stops the
// executors. Call exactly once.
func (rt *Runtime) Wait() error {
	if rt.waited {
		return ErrAlreadyWaited
	}
	rt.waited = true
	rt.spoutWG.Wait()
	rt.Drain()
	// Flush upstream before downstream so flushed emissions are seen.
	for _, id := range rt.topo.sortedBolts() {
		for _, t := range rt.tasks[id] {
			done := make(chan error, 1)
			t.in.pushCtl(envelope{kind: ctlFlush, done: done})
			if err := <-done; err != nil {
				rt.failures.Add(1)
			}
		}
		rt.Drain()
	}
	for _, ts := range rt.tasks {
		for _, t := range ts {
			done := make(chan error, 1)
			t.in.pushCtl(envelope{kind: ctlStop, done: done})
			<-done
		}
	}
	rt.execWG.Wait()
	if rt.flushStop != nil {
		close(rt.flushStop)
		rt.flushWG.Wait()
	}
	close(rt.stopped)
	rt.cfg.Flight.Note(obs.FlightTopologyStop, "", rt.topo.name,
		fmt.Sprintf("errors=%d", rt.failures.Load()), nil)
	return nil
}

// Drain waits for all currently in-flight tuples to be processed without
// stopping the runtime (spouts may still be running; use between phases
// in tests and failure-injection scenarios).
func (rt *Runtime) Drain() {
	for rt.pending.Load() != 0 {
		time.Sleep(200 * time.Microsecond)
	}
}

// Handled returns the number of tuples a task has processed (including
// replays).
func (rt *Runtime) Handled(bolt string, index int) (int64, error) {
	ts, ok := rt.tasks[bolt]
	if !ok || index < 0 || index >= len(ts) {
		return 0, fmt.Errorf("%s[%d]: %w", bolt, index, ErrUnknownTask)
	}
	return ts[index].handled.Load(), nil
}

// ExecuteErrors returns how many bolt executions returned errors.
func (rt *Runtime) ExecuteErrors() int64 { return rt.failures.Load() }

// Parallelism returns a bolt's task count.
func (rt *Runtime) Parallelism(bolt string) int { return len(rt.tasks[bolt]) }

// TaskStats is a point-in-time view of one task.
type TaskStats struct {
	Key      string
	Bolt     string
	Index    int
	Handled  int64
	Stateful bool
}

// Stats returns a snapshot of every task's progress, sorted by task key —
// the runtime's observability surface.
func (rt *Runtime) Stats() []TaskStats {
	var out []TaskStats
	for _, id := range rt.topo.sortedBolts() {
		for _, t := range rt.tasks[id] {
			out = append(out, TaskStats{
				Key:      t.key,
				Bolt:     t.boltID,
				Index:    t.index,
				Handled:  t.handled.Load(),
				Stateful: t.decl.stateful,
			})
		}
	}
	return out
}

// Pending reports the tuples currently routed but not yet processed.
func (rt *Runtime) Pending() int64 { return rt.pending.Load() }

// EnterDegraded flips the runtime into degraded-service mode: new
// ingest-class tuples are shed once a task queue fills past the
// watermark, reserving the remaining capacity for replay and recovery
// traffic. Calls nest (refcount) so overlapping recoveries each hold the
// mode; the first entry journals an overload.shed_start flight event
// carrying the reason.
func (rt *Runtime) EnterDegraded(reason string) {
	if rt.degraded.Add(1) != 1 {
		return
	}
	rt.degMu.Lock()
	rt.degOffered = rt.offeredAll.Load()
	rt.degShed = rt.shedAll.Load()
	rt.degMu.Unlock()
	rt.instr.noteDegraded(true)
	rt.cfg.Flight.Note(obs.FlightShedStart, "", rt.topo.name,
		fmt.Sprintf("reason=%s policy=%s watermark=%.2f", reason, rt.cfg.QueuePolicy, rt.cfg.ShedWatermark), nil)
}

// ExitDegraded releases one EnterDegraded hold. The last exit drains
// shed mode and journals an overload.shed_stop flight event with the
// exact offered/shed/admitted accounting for the degraded window.
func (rt *Runtime) ExitDegraded() {
	if rt.degraded.Add(-1) != 0 {
		return
	}
	rt.degMu.Lock()
	offered := rt.offeredAll.Load() - rt.degOffered
	shed := rt.shedAll.Load() - rt.degShed
	rt.degMu.Unlock()
	rt.instr.noteDegraded(false)
	rt.cfg.Flight.Note(obs.FlightShedStop, "", rt.topo.name,
		fmt.Sprintf("offered=%d shed=%d admitted=%d", offered, shed, offered-shed), nil)
}

// Degraded reports whether the runtime is in degraded-service mode.
func (rt *Runtime) Degraded() bool { return rt.degraded.Load() > 0 }

// TaskOverloadStats is one task's exact admission accounting.
type TaskOverloadStats struct {
	Key string
	// Offered counts data tuples routed at this task.
	Offered int64
	// Shed counts tuples dropped (queue policy or degraded mode).
	Shed int64
	// Admitted = Offered − Shed; every admitted tuple is processed
	// exactly once (modulo recovery replay, which re-executes from the
	// input log by design).
	Admitted int64
	// QueueCap is the data queue's exact capacity bound.
	QueueCap int
	// QueueHighWater is the largest queue occupancy ever observed —
	// never exceeds QueueCap.
	QueueHighWater int
}

// OverloadStats is the runtime-wide admission accounting snapshot.
type OverloadStats struct {
	Offered  int64
	Shed     int64
	Admitted int64
	Degraded bool
	Tasks    []TaskOverloadStats
}

// Overload snapshots the exact offered/shed/admitted accounting, per
// task and rolled up. The invariant offered = admitted + shed holds by
// construction at every level.
func (rt *Runtime) Overload() OverloadStats {
	s := OverloadStats{
		Offered:  rt.offeredAll.Load(),
		Shed:     rt.shedAll.Load(),
		Degraded: rt.Degraded(),
	}
	s.Admitted = s.Offered - s.Shed
	for _, id := range rt.topo.sortedBolts() {
		for _, t := range rt.tasks[id] {
			off, sh := t.offered.Load(), t.shed.Load()
			s.Tasks = append(s.Tasks, TaskOverloadStats{
				Key:            t.key,
				Offered:        off,
				Shed:           sh,
				Admitted:       off - sh,
				QueueCap:       t.in.capacity(),
				QueueHighWater: t.in.high(),
			})
		}
	}
	return s
}
