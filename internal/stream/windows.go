package stream

import (
	"fmt"
	"math"
	"sort"
)

// Aggregator reduces the tuples of one closed window to output values.
type Aggregator func(window []Tuple) []any

// TumblingWindowBolt groups tuples into fixed, non-overlapping event-time
// windows of Size milliseconds and emits one aggregate per window when
// the watermark (max event time seen) passes the window end.
type TumblingWindowBolt struct {
	Size      int64
	Aggregate Aggregator

	buckets   map[int64][]Tuple
	watermark int64
	// closedBefore is the start of the earliest still-open window; late
	// tuples older than this are dropped (allowed lateness zero) and
	// counted in dropped.
	closedBefore int64
	dropped      int64
}

var (
	_ Bolt    = (*TumblingWindowBolt)(nil)
	_ Flusher = (*TumblingWindowBolt)(nil)
)

// NewTumblingWindow builds a tumbling window of the given size (ms).
func NewTumblingWindow(sizeMs int64, agg Aggregator) *TumblingWindowBolt {
	return &TumblingWindowBolt{
		Size:      sizeMs,
		Aggregate: agg,
		buckets:   make(map[int64][]Tuple),
		// Pre-epoch event times are valid; the zero value would treat
		// every negative-timestamp tuple as late and drop it.
		closedBefore: math.MinInt64,
		watermark:    math.MinInt64,
	}
}

// Execute implements Bolt.
func (w *TumblingWindowBolt) Execute(t Tuple, emit Emit) error {
	if w.Size <= 0 {
		return fmt.Errorf("stream: tumbling window size %d must be positive", w.Size)
	}
	start := t.Ts - mod(t.Ts, w.Size)
	if start < w.closedBefore {
		w.dropped++ // late arrival for an already-emitted window
		return nil
	}
	w.buckets[start] = append(w.buckets[start], t)
	if t.Ts > w.watermark {
		w.watermark = t.Ts
	}
	w.emitClosed(emit, false)
	return nil
}

// Dropped reports how many late tuples were discarded.
func (w *TumblingWindowBolt) Dropped() int64 { return w.dropped }

// Flush implements Flusher: the stream ended, close every open window.
func (w *TumblingWindowBolt) Flush(emit Emit) error {
	w.emitClosed(emit, true)
	return nil
}

func (w *TumblingWindowBolt) emitClosed(emit Emit, all bool) {
	starts := make([]int64, 0, len(w.buckets))
	for s := range w.buckets {
		if all || s+w.Size <= w.watermark {
			starts = append(starts, s)
		}
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
	for _, s := range starts {
		vals := w.Aggregate(w.buckets[s])
		emit(Tuple{Values: append([]any{s, s + w.Size}, vals...), Ts: s + w.Size})
		delete(w.buckets, s)
		if s+w.Size > w.closedBefore {
			w.closedBefore = s + w.Size
		}
	}
}

// SlidingWindowBolt evaluates overlapping windows of Size ms advancing by
// Slide ms; each tuple belongs to Size/Slide windows.
type SlidingWindowBolt struct {
	Size      int64
	Slide     int64
	Aggregate Aggregator

	tuples    []Tuple
	watermark int64
	nextEnd   int64
}

var (
	_ Bolt    = (*SlidingWindowBolt)(nil)
	_ Flusher = (*SlidingWindowBolt)(nil)
)

// NewSlidingWindow builds a sliding window (sizeMs, slideMs).
func NewSlidingWindow(sizeMs, slideMs int64, agg Aggregator) *SlidingWindowBolt {
	return &SlidingWindowBolt{Size: sizeMs, Slide: slideMs, Aggregate: agg}
}

// Execute implements Bolt.
func (w *SlidingWindowBolt) Execute(t Tuple, emit Emit) error {
	if w.Size <= 0 || w.Slide <= 0 {
		return fmt.Errorf("stream: sliding window needs positive size and slide")
	}
	w.tuples = append(w.tuples, t)
	if t.Ts > w.watermark {
		w.watermark = t.Ts
	}
	if w.nextEnd == 0 {
		w.nextEnd = t.Ts - mod(t.Ts, w.Slide) + w.Slide
	}
	w.emitDue(emit, false)
	return nil
}

// Flush implements Flusher.
func (w *SlidingWindowBolt) Flush(emit Emit) error {
	if len(w.tuples) > 0 {
		// Close the remaining windows that contain data.
		last := w.watermark
		for w.nextEnd <= last+w.Size {
			w.emitWindow(emit, w.nextEnd)
			w.nextEnd += w.Slide
		}
	}
	return nil
}

func (w *SlidingWindowBolt) emitDue(emit Emit, all bool) {
	for w.nextEnd != 0 && (all || w.nextEnd <= w.watermark) {
		w.emitWindow(emit, w.nextEnd)
		w.nextEnd += w.Slide
	}
}

func (w *SlidingWindowBolt) emitWindow(emit Emit, end int64) {
	start := end - w.Size
	var in []Tuple
	kept := w.tuples[:0]
	for _, t := range w.tuples {
		if t.Ts >= start && t.Ts < end {
			in = append(in, t)
		}
		if t.Ts >= start+w.Slide { // still needed by later windows
			kept = append(kept, t)
		}
	}
	w.tuples = append([]Tuple(nil), kept...)
	if len(in) == 0 {
		return
	}
	vals := w.Aggregate(in)
	emit(Tuple{Values: append([]any{start, end}, vals...), Ts: end})
}

// SessionWindowBolt groups tuples per key (field KeyField) into sessions
// separated by Gap ms of event-time inactivity; each closed session emits
// one aggregate.
type SessionWindowBolt struct {
	Gap       int64
	KeyField  int
	Aggregate Aggregator

	sessions  map[string][]Tuple
	lastSeen  map[string]int64
	watermark int64
}

var (
	_ Bolt    = (*SessionWindowBolt)(nil)
	_ Flusher = (*SessionWindowBolt)(nil)
)

// NewSessionWindow builds a gap-based session window keyed by a field.
func NewSessionWindow(gapMs int64, keyField int, agg Aggregator) *SessionWindowBolt {
	return &SessionWindowBolt{
		Gap:       gapMs,
		KeyField:  keyField,
		Aggregate: agg,
		sessions:  make(map[string][]Tuple),
		lastSeen:  make(map[string]int64),
		// See NewTumblingWindow: the zero watermark would instantly expire
		// any session whose events are pre-epoch.
		watermark: math.MinInt64,
	}
}

// sessionStart is the minimum event time in a key's open session.
func (w *SessionWindowBolt) sessionStart(k string) int64 {
	tuples := w.sessions[k]
	start := int64(math.MaxInt64)
	for _, t := range tuples {
		if t.Ts < start {
			start = t.Ts
		}
	}
	return start
}

// Execute implements Bolt.
func (w *SessionWindowBolt) Execute(t Tuple, emit Emit) error {
	if w.Gap <= 0 {
		return fmt.Errorf("stream: session gap %d must be positive", w.Gap)
	}
	key := ""
	if len(t.Values) > 0 {
		key = fmt.Sprintf("%v", t.Values[clampIndex(w.KeyField, len(t.Values))])
	}
	if last, ok := w.lastSeen[key]; ok {
		switch {
		case t.Ts-last > w.Gap:
			// An event arriving after the gap starts a new session: close
			// the old one first rather than extending it.
			w.closeKey(key, emit)
		case w.sessionStart(key)-t.Ts > w.Gap:
			// A straggler more than one gap OLDER than everything in the
			// open session cannot belong to it: emit it as its own,
			// already-expired singleton session instead of stretching the
			// open session backwards across the gap.
			emit(Tuple{
				Values: append([]any{key, t.Ts, t.Ts}, w.Aggregate([]Tuple{t})...),
				Ts:     t.Ts,
			})
			return nil
		}
	}
	w.sessions[key] = append(w.sessions[key], t)
	if last, ok := w.lastSeen[key]; !ok || t.Ts > last {
		w.lastSeen[key] = t.Ts
	}
	if t.Ts > w.watermark {
		w.watermark = t.Ts
	}
	w.closeExpired(emit, false)
	return nil
}

// Flush implements Flusher.
func (w *SessionWindowBolt) Flush(emit Emit) error {
	w.closeExpired(emit, true)
	return nil
}

func (w *SessionWindowBolt) closeExpired(emit Emit, all bool) {
	keys := make([]string, 0, len(w.sessions))
	for k := range w.sessions {
		if all || w.watermark-w.lastSeen[k] > w.Gap {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		w.closeKey(k, emit)
	}
}

// closeKey emits and discards one key's open session. The session start
// is the minimum event time in the session, not the first arrival: an
// out-of-order tuple that joins an open session can predate it.
func (w *SessionWindowBolt) closeKey(k string, emit Emit) {
	tuples := w.sessions[k]
	if len(tuples) == 0 {
		return
	}
	start := tuples[0].Ts
	for _, t := range tuples[1:] {
		if t.Ts < start {
			start = t.Ts
		}
	}
	vals := w.Aggregate(tuples)
	emit(Tuple{
		Values: append([]any{k, start, w.lastSeen[k]}, vals...),
		Ts:     w.lastSeen[k],
	})
	delete(w.sessions, k)
	delete(w.lastSeen, k)
}

func mod(a, b int64) int64 {
	m := a % b
	if m < 0 {
		m += b
	}
	return m
}

// clampIndex bounds a configured field index into [0, n): a negative or
// oversized KeyField degrades to a usable column instead of panicking.
func clampIndex(i, n int) int {
	if i < 0 {
		return 0
	}
	if i >= n {
		return n - 1
	}
	return i
}
