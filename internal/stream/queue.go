package stream

import (
	"sync"
)

// QueuePolicy selects what a bounded task queue does when a data tuple
// arrives and the queue is full.
type QueuePolicy int

const (
	// QueueBlock makes the sender wait for a free slot — credit-based
	// backpressure: each queue slot is a credit, the producer stalls
	// until the consumer returns one. The default, matching the
	// pre-overload-control runtime.
	QueueBlock QueuePolicy = iota
	// QueueShedOldest drops the oldest queued ingest-class tuple to
	// admit the new one (newest data wins; bounded staleness). Replay-
	// class tuples are never shed — they are required for exactly-once
	// recovery — so when only replay tuples are queued the incoming
	// ingest tuple is shed instead.
	QueueShedOldest
	// QueueShedPriority sheds by traffic class: an incoming replay-
	// class tuple evicts the oldest queued ingest-class tuple; an
	// incoming ingest-class tuple is shed when the queue is full
	// (queued work wins ties).
	QueueShedPriority
)

func (p QueuePolicy) String() string {
	switch p {
	case QueueBlock:
		return "block"
	case QueueShedOldest:
		return "shed-oldest"
	case QueueShedPriority:
		return "shed-priority"
	default:
		return "unknown"
	}
}

// TrafficClass labels a tuple's provenance for admission decisions.
// Replay traffic (input-log replay during recovery, and everything it
// emits downstream) outranks new ingest: shedding it would break the
// exactly-once recovery contract, while shedding fresh ingest under
// overload is exactly what load shedding is for.
type TrafficClass int8

const (
	// ClassIngest marks new spout tuples and their descendants.
	ClassIngest TrafficClass = iota
	// ClassReplay marks input-log replay tuples and their descendants.
	ClassReplay
)

// pushOutcome reports what the queue did with one offered data tuple.
type pushOutcome int

const (
	pushAdmitted   pushOutcome = iota // tuple queued, nothing displaced
	pushShedSelf                      // incoming tuple dropped
	pushShedOldest                    // incoming queued, one older ingest tuple dropped
)

// taskQueue is one task's input queue: an unbounded control lane plus a
// bounded data ring. The executor always drains the control lane first
// (weighted dequeue: kill/recover/save/flush/stop never sit behind a
// backlog of data tuples), then the data ring. The data ring enforces
// the configured capacity exactly — its length can never exceed cap —
// and overflow is resolved by the queue policy.
//
// The pre-overload-control runtime used one Go channel for both lanes;
// that made capacity a soft limit (control ops consumed data slots) and
// made shed-oldest impossible without racing the consumer. A mutex+cond
// ring gives exact accounting and class-aware eviction.
type taskQueue struct {
	mu       sync.Mutex
	notEmpty sync.Cond
	notFull  sync.Cond

	ctl  []envelope // control lane, FIFO, unbounded
	data []envelope // data ring
	head int
	n    int

	policy    QueuePolicy
	watermark int // degraded-mode ingest admission bound (slots)

	highWater int // largest data occupancy ever observed
}

func newTaskQueue(capacity int, policy QueuePolicy, watermark int) *taskQueue {
	if capacity <= 0 {
		capacity = 1
	}
	if watermark <= 0 || watermark > capacity {
		watermark = capacity
	}
	q := &taskQueue{
		data:      make([]envelope, capacity),
		policy:    policy,
		watermark: watermark,
	}
	q.notEmpty.L = &q.mu
	q.notFull.L = &q.mu
	return q
}

func (q *taskQueue) capacity() int { return len(q.data) }

// pushCtl appends a control envelope; it never blocks and never sheds.
func (q *taskQueue) pushCtl(env envelope) {
	q.mu.Lock()
	q.ctl = append(q.ctl, env)
	q.mu.Unlock()
	q.notEmpty.Signal()
}

// pushData offers one data envelope (a single tuple or a whole batch)
// under the queue policy. degraded applies the watermark admission bound
// to ingest-class envelopes (the runtime's degraded-service shed mode).
// The returned outcome is exact — exactly one of admitted / shed-self /
// admitted-with-one-eviction — and on shed-oldest the evicted envelope
// is returned so the caller can settle the ledger in *tuples* (a batch
// envelope carries many) and recycle its batch. waited reports whether
// the caller had to block for a free slot (the emit-block backpressure
// signal).
func (q *taskQueue) pushData(env envelope, degraded bool) (outcome pushOutcome, evicted envelope, waited bool) {
	q.mu.Lock()
	defer q.mu.Unlock()

	// Degraded-service mode: new ingest is admitted only below the
	// watermark, leaving the headroom above it for replay and recovery
	// traffic. Replay-class tuples are exempt.
	if degraded && env.class == ClassIngest && q.n >= q.watermark {
		return pushShedSelf, evicted, waited
	}

	for q.n >= len(q.data) {
		switch q.policy {
		case QueueBlock:
			// Replay tuples always block too — the policy only differs
			// for shed modes below.
			waited = true
			q.notFull.Wait()
			continue
		case QueueShedOldest:
			if victim, ok := q.evictOldestIngestLocked(); ok {
				q.appendLocked(env)
				return pushShedOldest, victim, waited
			}
			// Queue full of replay tuples: shed incoming ingest, block
			// incoming replay (replay is never dropped).
			if env.class == ClassIngest {
				return pushShedSelf, evicted, waited
			}
			waited = true
			q.notFull.Wait()
			continue
		case QueueShedPriority:
			if env.class == ClassReplay {
				if victim, ok := q.evictOldestIngestLocked(); ok {
					q.appendLocked(env)
					return pushShedOldest, victim, waited
				}
				waited = true
				q.notFull.Wait()
				continue
			}
			return pushShedSelf, evicted, waited
		default:
			waited = true
			q.notFull.Wait()
			continue
		}
	}
	q.appendLocked(env)
	return pushAdmitted, evicted, waited
}

// appendLocked inserts at the tail; caller holds q.mu and has verified
// a free slot.
func (q *taskQueue) appendLocked(env envelope) {
	q.data[(q.head+q.n)%len(q.data)] = env
	q.n++
	if q.n > q.highWater {
		q.highWater = q.n
	}
	q.notEmpty.Signal()
}

// evictOldestIngestLocked removes and returns the oldest ingest-class
// envelope from the ring, reporting whether one existed. The envelope —
// not just a bool — comes back so the caller can count the tuples it
// carried (a shed batch must debit the ledger once per tuple, not once
// per envelope). Caller holds q.mu.
func (q *taskQueue) evictOldestIngestLocked() (envelope, bool) {
	for i := 0; i < q.n; i++ {
		idx := (q.head + i) % len(q.data)
		if q.data[idx].class != ClassIngest {
			continue
		}
		victim := q.data[idx]
		// Shift the newer entries down one slot to close the gap,
		// preserving order. O(n) but only on the overflow path.
		for j := i; j < q.n-1; j++ {
			from := (q.head + j + 1) % len(q.data)
			to := (q.head + j) % len(q.data)
			q.data[to] = q.data[from]
		}
		q.data[(q.head+q.n-1)%len(q.data)] = envelope{}
		q.n--
		return victim, true
	}
	return envelope{}, false
}

// pop blocks until an envelope is available and returns it, control
// lane first.
func (q *taskQueue) pop() envelope {
	q.mu.Lock()
	for len(q.ctl) == 0 && q.n == 0 {
		q.notEmpty.Wait()
	}
	return q.popLocked()
}

// tryPop returns the next envelope without blocking; ok is false when
// both lanes are empty. The executor uses it to detect idleness: a
// failed tryPop is the moment to flush its partial output batches
// before parking in pop, so buffered tuples never wait on an idle
// pipeline.
func (q *taskQueue) tryPop() (envelope, bool) {
	q.mu.Lock()
	if len(q.ctl) == 0 && q.n == 0 {
		q.mu.Unlock()
		return envelope{}, false
	}
	return q.popLocked(), true
}

// popLocked dequeues control-lane-first; caller holds q.mu (released
// here) and has verified an envelope exists.
func (q *taskQueue) popLocked() envelope {
	if len(q.ctl) > 0 {
		env := q.ctl[0]
		q.ctl[0] = envelope{}
		q.ctl = q.ctl[1:]
		q.mu.Unlock()
		return env
	}
	env := q.data[q.head]
	q.data[q.head] = envelope{}
	q.head = (q.head + 1) % len(q.data)
	q.n--
	q.mu.Unlock()
	q.notFull.Signal()
	return env
}

// depth reports the current data occupancy (control lane excluded —
// capacity and shedding govern data tuples only).
func (q *taskQueue) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.n
}

// high reports the largest data occupancy ever observed.
func (q *taskQueue) high() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.highWater
}
