package stream

import (
	"sync"
	"time"
)

// The batched tuple plane: producers (spout pumps and bolt executors)
// coalesce emitted tuples into per-destination pooled frames instead of
// offering them to the task queue one at a time. A full frame costs one
// queue push (one mutex acquisition, one ring slot) for BatchSize
// tuples, which is where the per-tuple overhead of the two-lane queue
// goes under high rates.
//
// Flush triggers — a buffered tuple can only be waiting on one of:
//   - size: the buffer reaches Config.BatchSize (flushed inline by add);
//   - class change: a batch carries exactly ONE traffic class, so an
//     ingest tuple arriving on a buffer holding replay tuples (or vice
//     versa) flushes the old batch first — shed policies keep their
//     per-class decisions without inspecting batch interiors;
//   - idle: an executor flushes all its buffers the moment its own input
//     queue is empty, before parking in pop (tryPop-miss), so a quiet
//     pipeline never strands tuples behind a timer;
//   - linger: a runtime-wide background flusher sweeps every batcher at
//     Config.BatchLinger intervals, bounding the buffering delay for
//     producers that block outside the runtime (a spout stuck in Next
//     holds no locks the flusher needs);
//   - barrier: checkpoint/flush/recover control operations flush the
//     executor's buffers before replying, so a save barrier never
//     overtakes the tuples emitted before it.
//
// Invariants preserved from the per-tuple plane: every tuple counts
// pending from the moment it enters a buffer (Drain cannot return while
// one is buffered), offered/shed are settled per *tuple* at queue
// admission (a shed batch debits the ledger once per tuple it carried),
// and replay-class batches are never shed — the envelope carries the
// batch's single class, so the queue policies apply unchanged.

// tupleBatch is one pooled frame of same-class tuples bound for a
// single task. Batches recycle through Runtime.batchPool; the executor
// returns a frame after processing it, so steady-state emission
// allocates nothing.
type tupleBatch struct {
	tuples []Tuple
	class  TrafficClass
}

// tupleCount reports how many data tuples an envelope carries — the
// unit of the offered/shed ledger.
func (e envelope) tupleCount() int {
	if e.kind == ctlBatch && e.batch != nil {
		return len(e.batch.tuples)
	}
	return 1
}

func (rt *Runtime) getBatch(class TrafficClass) *tupleBatch {
	b := rt.batchPool.Get().(*tupleBatch)
	b.class = class
	return b
}

func (rt *Runtime) putBatch(b *tupleBatch) {
	// Drop the tuple payload references before pooling so a recycled
	// frame does not pin Values slices from a previous batch.
	for i := range b.tuples {
		b.tuples[i] = Tuple{}
	}
	b.tuples = b.tuples[:0]
	rt.batchPool.Put(b)
}

// outBuf is one destination task's open frame inside a batcher.
type outBuf struct {
	b     *tupleBatch
	dirty bool // slot is on the batcher's dirty list
}

// batcher is one producer's set of open output frames, indexed by the
// destination task's dense slot. Every producer goroutine (spout pump,
// bolt executor) owns one; the mutex exists solely so the background
// linger flusher can sweep a batcher whose owner is blocked elsewhere.
type batcher struct {
	rt    *Runtime
	mu    sync.Mutex
	bufs  []outBuf
	dirty []int // slots with buffered tuples since the last sweep
}

// newBatcher registers a producer-side batcher, or nil when batching is
// disabled (BatchSize <= 1) — the nil batcher selects the per-tuple
// enqueue path everywhere, byte-for-byte the pre-batching runtime.
func (rt *Runtime) newBatcher() *batcher {
	if rt.cfg.BatchSize <= 1 {
		return nil
	}
	b := &batcher{
		rt:    rt,
		bufs:  make([]outBuf, len(rt.slots)),
		dirty: make([]int, 0, len(rt.slots)),
	}
	rt.batchMu.Lock()
	rt.batchers = append(rt.batchers, b)
	rt.batchMu.Unlock()
	return b
}

// add buffers one tuple for task t, flushing on class change and on
// reaching BatchSize. The caller has already counted the tuple pending.
func (b *batcher) add(t *task, tuple Tuple, class TrafficClass) {
	b.mu.Lock()
	ob := &b.bufs[t.slot]
	if ob.b != nil && ob.b.class != class {
		b.flushSlotLocked(t.slot)
	}
	if ob.b == nil {
		ob.b = b.rt.getBatch(class)
	}
	if !ob.dirty {
		ob.dirty = true
		b.dirty = append(b.dirty, t.slot)
	}
	ob.b.tuples = append(ob.b.tuples, tuple)
	if len(ob.b.tuples) >= b.rt.cfg.BatchSize {
		b.flushSlotLocked(t.slot)
	}
	b.mu.Unlock()
}

// flushSlotLocked hands one open frame to its task queue; caller holds
// b.mu. The push may block under QueueBlock backpressure — holding b.mu
// through it is safe because only this producer and the flusher touch
// this batcher, and the consumer side never takes batcher locks.
func (b *batcher) flushSlotLocked(slot int) {
	ob := &b.bufs[slot]
	tb := ob.b
	if tb == nil {
		return
	}
	ob.b = nil
	b.rt.pushBatch(b.rt.slots[slot], tb)
}

// flushAll pushes every open frame. Nil-receiver-safe so call sites need
// no batching-enabled checks (the instrument-handle discipline).
func (b *batcher) flushAll() {
	if b == nil {
		return
	}
	b.mu.Lock()
	for _, slot := range b.dirty {
		b.flushSlotLocked(slot)
		b.bufs[slot].dirty = false
	}
	b.dirty = b.dirty[:0]
	b.mu.Unlock()
}

// runFlusher is the runtime-wide linger sweep: every BatchLinger it
// flushes all batchers' open frames, bounding how long a partial batch
// can sit while its producer is blocked (e.g. a spout waiting in Next).
// Started by Start when batching is on; stopped by Wait after the
// executors exit.
func (rt *Runtime) runFlusher() {
	defer rt.flushWG.Done()
	tick := time.NewTicker(rt.cfg.BatchLinger)
	defer tick.Stop()
	for {
		select {
		case <-rt.flushStop:
			return
		case <-tick.C:
			rt.batchMu.Lock()
			bs := rt.batchers
			rt.batchMu.Unlock()
			for _, b := range bs {
				b.flushAll()
			}
		}
	}
}

// pushBatch offers a whole frame to a task queue, settling the ledger
// in tuples: every carried tuple becomes offered, and a shed (the frame
// itself under shed-self, or an evicted older envelope) debits shed by
// its own tuple count. Admitted frames are recycled by the executor;
// shed frames are recycled here.
func (rt *Runtime) pushBatch(t *task, tb *tupleBatch) {
	n := int64(len(tb.tuples))
	t.offered.Add(n)
	rt.offeredAll.Add(n)
	degraded := rt.degraded.Load() > 0
	env := envelope{kind: ctlBatch, batch: tb, class: tb.class}
	if t.instr == nil {
		outcome, evicted, _ := t.in.pushData(env, degraded)
		rt.settlePush(t, outcome, env, evicted)
		return
	}
	start := time.Now()
	outcome, evicted, waited := t.in.pushData(env, degraded)
	if waited {
		t.instr.noteBlocked(time.Since(start).Nanoseconds())
	}
	rt.settlePush(t, outcome, env, evicted)
	t.instr.noteInN(int(n), t.in.depth())
}
