package stream

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"sr3/internal/state"
)

// sliceSpout emits a fixed tuple list.
type sliceSpout struct {
	mu     sync.Mutex
	tuples []Tuple
	pos    int
}

func newSliceSpout(tuples []Tuple) *sliceSpout { return &sliceSpout{tuples: tuples} }

func (s *sliceSpout) Next() (Tuple, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.pos >= len(s.tuples) {
		return Tuple{}, false
	}
	t := s.tuples[s.pos]
	s.pos++
	return t, true
}

// chanSpout feeds tuples pushed from the test; Close ends the stream.
type chanSpout struct {
	ch chan Tuple
}

func newChanSpout() *chanSpout { return &chanSpout{ch: make(chan Tuple, 1024)} }

func (s *chanSpout) Next() (Tuple, bool) {
	t, ok := <-s.ch
	return t, ok
}

func (s *chanSpout) push(tuples ...Tuple) {
	for _, t := range tuples {
		s.ch <- t
	}
}

func (s *chanSpout) close() { close(s.ch) }

// settle lets the spout pump route pushed tuples, then drains in-flight
// work. The sleep covers the push->pump handoff, which the pending
// counter cannot see.
func settle(rt *Runtime) {
	time.Sleep(20 * time.Millisecond)
	rt.Drain()
}

// sink collects outputs thread-safely.
type sink struct {
	mu  sync.Mutex
	got []Tuple
}

func (s *sink) Execute(t Tuple, _ Emit) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.got = append(s.got, t)
	return nil
}

func (s *sink) tuples() []Tuple {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Tuple(nil), s.got...)
}

// countBolt is a stateful word counter over a MapStore.
type countBolt struct {
	store *state.MapStore
}

func newCountBolt() *countBolt { return &countBolt{store: state.NewMapStore()} }

func (c *countBolt) Execute(t Tuple, emit Emit) error {
	word := t.StringAt(0)
	n := int64(0)
	if v, ok := c.store.Get(word); ok {
		parsed, err := strconv.ParseInt(string(v), 10, 64)
		if err != nil {
			return err
		}
		n = parsed
	}
	n++
	c.store.Put(word, []byte(strconv.FormatInt(n, 10)))
	emit(Tuple{Values: []any{word, n}})
	return nil
}

func (c *countBolt) Store() StateStore { return c.store }

func wordTuples(words ...string) []Tuple {
	out := make([]Tuple, len(words))
	for i, w := range words {
		out[i] = Tuple{Values: []any{w}, Ts: int64(i)}
	}
	return out
}

func TestTopologyValidation(t *testing.T) {
	topo := NewTopology("t")
	if err := topo.AddSpout("s", newSliceSpout(nil)); err != nil {
		t.Fatal(err)
	}
	if err := topo.AddSpout("s", newSliceSpout(nil)); !errors.Is(err, ErrDuplicateID) {
		t.Fatalf("dup spout: %v", err)
	}
	if err := topo.AddBolt("b", &sink{}, 0).Err(); !errors.Is(err, ErrBadParallel) {
		t.Fatalf("bad parallel: %v", err)
	}
	if err := topo.AddBolt("c", &sink{}, 1).Shuffle("nope").Err(); !errors.Is(err, ErrUnknownSource) {
		t.Fatalf("unknown source: %v", err)
	}
	empty := NewTopology("empty")
	if _, err := NewRuntime(empty, Config{}); !errors.Is(err, ErrEmptyTopology) {
		t.Fatalf("empty: %v", err)
	}
}

func TestWordCountEndToEnd(t *testing.T) {
	words := []string{"a", "b", "a", "c", "a", "b"}
	topo := NewTopology("wc")
	if err := topo.AddSpout("words", newSliceSpout(wordTuples(words...))); err != nil {
		t.Fatal(err)
	}
	counter := newCountBolt()
	if err := topo.AddBolt("count", counter, 1).Fields("words", 0).Err(); err != nil {
		t.Fatal(err)
	}
	out := &sink{}
	if err := topo.AddBolt("sink", out, 1).Global("count").Err(); err != nil {
		t.Fatal(err)
	}

	rt, err := NewRuntime(topo, Config{})
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()
	if err := rt.Wait(); err != nil {
		t.Fatal(err)
	}

	// Final counts in the store must be exact.
	want := map[string]int64{"a": 3, "b": 2, "c": 1}
	for w, n := range want {
		v, ok := counter.store.Get(w)
		if !ok || string(v) != strconv.FormatInt(n, 10) {
			t.Fatalf("count[%s] = %s, want %d", w, v, n)
		}
	}
	if len(out.tuples()) != len(words) {
		t.Fatalf("sink saw %d tuples, want %d", len(out.tuples()), len(words))
	}
}

func TestFieldsGroupingRoutesConsistently(t *testing.T) {
	// With parallelism 4, all tuples of one key must land on one task.
	var tuples []Tuple
	for i := 0; i < 200; i++ {
		tuples = append(tuples, Tuple{Values: []any{fmt.Sprintf("key-%d", i%10)}})
	}
	topo := NewTopology("fg")
	_ = topo.AddSpout("src", newSliceSpout(tuples))

	// Keys must each map to exactly one of the 4 tasks, and the tasks
	// should share the load.
	var mu sync.Mutex
	seen := make(map[string]map[int]bool)
	counts := make([]int, 4)
	rec := BoltFunc(func(tp Tuple, _ Emit) error {
		mu.Lock()
		defer mu.Unlock()
		k := tp.StringAt(0)
		if seen[k] == nil {
			seen[k] = make(map[int]bool)
		}
		// task index not directly exposed; approximate via hashField
		idx := hashField(tp.Values[0], 4)
		seen[k][idx] = true
		counts[idx]++
		return nil
	})
	if err := topo.AddBolt("b", rec, 4).Fields("src", 0).Err(); err != nil {
		t.Fatal(err)
	}
	rt, err := NewRuntime(topo, Config{})
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()
	if err := rt.Wait(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	for k, tasks := range seen {
		if len(tasks) != 1 {
			t.Fatalf("key %s hit %d tasks", k, len(tasks))
		}
	}
	busy := 0
	for _, c := range counts {
		if c > 0 {
			busy++
		}
	}
	if busy < 2 {
		t.Fatalf("only %d of 4 tasks used", busy)
	}
}

func TestShuffleGroupingBalances(t *testing.T) {
	var tuples []Tuple
	for i := 0; i < 400; i++ {
		tuples = append(tuples, Tuple{Values: []any{i}})
	}
	topo := NewTopology("sh")
	_ = topo.AddSpout("src", newSliceSpout(tuples))
	if err := topo.AddBolt("b", BoltFunc(func(Tuple, Emit) error { return nil }), 4).
		Shuffle("src").Err(); err != nil {
		t.Fatal(err)
	}
	rt, _ := NewRuntime(topo, Config{})
	rt.Start()
	if err := rt.Wait(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		n, err := rt.Handled("b", i)
		if err != nil {
			t.Fatal(err)
		}
		if n != 100 {
			t.Fatalf("task %d handled %d, want 100 (round robin)", i, n)
		}
	}
}

func TestAllGroupingBroadcasts(t *testing.T) {
	topo := NewTopology("all")
	_ = topo.AddSpout("src", newSliceSpout(wordTuples("x", "y")))
	if err := topo.AddBolt("b", BoltFunc(func(Tuple, Emit) error { return nil }), 3).
		All("src").Err(); err != nil {
		t.Fatal(err)
	}
	rt, _ := NewRuntime(topo, Config{})
	rt.Start()
	if err := rt.Wait(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if n, _ := rt.Handled("b", i); n != 2 {
			t.Fatalf("task %d handled %d, want 2", i, n)
		}
	}
}

func TestMultiStageTopology(t *testing.T) {
	// split -> count: the classic wordcount shape with a splitter bolt.
	lines := []Tuple{
		{Values: []any{"the quick brown fox"}},
		{Values: []any{"the lazy dog"}},
		{Values: []any{"the fox"}},
	}
	topo := NewTopology("wc2")
	_ = topo.AddSpout("lines", newSliceSpout(lines))
	split := BoltFunc(func(tp Tuple, emit Emit) error {
		for _, w := range strings.Fields(tp.StringAt(0)) {
			emit(Tuple{Values: []any{w}})
		}
		return nil
	})
	if err := topo.AddBolt("split", split, 2).Shuffle("lines").Err(); err != nil {
		t.Fatal(err)
	}
	counter := newCountBolt()
	if err := topo.AddBolt("count", counter, 1).Fields("split", 0).Err(); err != nil {
		t.Fatal(err)
	}
	rt, _ := NewRuntime(topo, Config{})
	rt.Start()
	if err := rt.Wait(); err != nil {
		t.Fatal(err)
	}
	v, ok := counter.store.Get("the")
	if !ok || string(v) != "3" {
		t.Fatalf("count[the] = %s", v)
	}
	if rt.ExecuteErrors() != 0 {
		t.Fatalf("%d execute errors", rt.ExecuteErrors())
	}
}

func TestKillRecoverWithMemoryBackend(t *testing.T) {
	// Process half the stream, save, keep processing, kill, recover:
	// final counts must equal the failure-free run.
	words := make([]string, 0, 300)
	for i := 0; i < 300; i++ {
		words = append(words, fmt.Sprintf("w%d", i%7))
	}
	topo := NewTopology("kr")
	spout := newChanSpout()
	_ = topo.AddSpout("words", spout)
	counter := newCountBolt()
	if err := topo.AddBolt("count", counter, 1).Fields("words", 0).Err(); err != nil {
		t.Fatal(err)
	}
	rt, err := NewRuntime(topo, Config{Backend: NewMemoryBackend()})
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()
	spout.push(wordTuples(words[:150]...)...)
	settle(rt)
	if err := rt.SaveAll(); err != nil {
		t.Fatal(err)
	}

	// Second half arrives, then the task dies mid-stream.
	spout.push(wordTuples(words[150:]...)...)
	spout.close()
	settle(rt)
	if err := rt.Kill("count", 0); err != nil {
		t.Fatal(err)
	}
	// State is "lost": recovery must rebuild it from snapshot + log.
	if err := counter.store.Restore(mustSnapshot(t, state.NewMapStore())); err != nil {
		t.Fatal(err)
	}
	if err := rt.RecoverTask("count", 0); err != nil {
		t.Fatal(err)
	}
	if err := rt.Wait(); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 7; i++ {
		w := fmt.Sprintf("w%d", i)
		want := 300 / 7
		if i < 300%7 {
			want++
		}
		v, ok := counter.store.Get(w)
		if !ok {
			t.Fatalf("count[%s] missing after recovery", w)
		}
		got, _ := strconv.ParseInt(string(v), 10, 64)
		if got != int64(want) {
			t.Fatalf("count[%s] = %d, want %d", w, got, want)
		}
	}
}

func mustSnapshot(t *testing.T, s *state.MapStore) []byte {
	t.Helper()
	snap, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	return snap
}

func TestKillStopsProcessing(t *testing.T) {
	topo := NewTopology("ks")
	spout := newChanSpout()
	_ = topo.AddSpout("w", spout)
	counter := newCountBolt()
	if err := topo.AddBolt("count", counter, 1).Fields("w", 0).Err(); err != nil {
		t.Fatal(err)
	}
	rt, _ := NewRuntime(topo, Config{Backend: NewMemoryBackend()})
	rt.Start()
	spout.push(wordTuples("a", "b")...)
	settle(rt)
	_ = rt.SaveAll()
	if err := rt.Kill("count", 0); err != nil {
		t.Fatal(err)
	}
	before, _ := rt.Handled("count", 0)

	spout.push(wordTuples("c", "d", "e")...)
	spout.close()
	settle(rt)
	after, _ := rt.Handled("count", 0)
	if after != before {
		t.Fatalf("dead task processed tuples: %d -> %d", before, after)
	}
	// Double kill is rejected at recover time only; kill is idempotent.
	if err := rt.RecoverTask("count", 0); err != nil {
		t.Fatal(err)
	}
	if err := rt.RecoverTask("count", 0); !errors.Is(err, ErrTaskAlive) {
		t.Fatalf("recover alive: %v", err)
	}
	if err := rt.Wait(); err != nil {
		t.Fatal(err)
	}
	final, _ := rt.Handled("count", 0)
	if final != 5 {
		t.Fatalf("handled %d, want 5 after replay", final)
	}
}

func TestControlErrors(t *testing.T) {
	topo := NewTopology("ce")
	_ = topo.AddSpout("w", newSliceSpout(nil))
	if err := topo.AddBolt("b", BoltFunc(func(Tuple, Emit) error { return nil }), 1).
		Shuffle("w").Err(); err != nil {
		t.Fatal(err)
	}
	rt, _ := NewRuntime(topo, Config{})
	rt.Start()
	if err := rt.Save("nope", 0); !errors.Is(err, ErrUnknownTask) {
		t.Fatalf("unknown task: %v", err)
	}
	if err := rt.Save("b", 9); !errors.Is(err, ErrUnknownTask) {
		t.Fatalf("bad index: %v", err)
	}
	if err := rt.Save("b", 0); !errors.Is(err, ErrNotStateful) {
		t.Fatalf("stateless save: %v", err)
	}
	if err := rt.Wait(); err != nil {
		t.Fatal(err)
	}
	if err := rt.Wait(); !errors.Is(err, ErrAlreadyWaited) {
		t.Fatalf("double wait: %v", err)
	}
}

func TestAutoSaveEveryTuples(t *testing.T) {
	backend := NewMemoryBackend()
	topo := NewTopology("as")
	_ = topo.AddSpout("w", newSliceSpout(wordTuples("a", "b", "c", "d", "e", "f")))
	counter := newCountBolt()
	if err := topo.AddBolt("count", counter, 1).Fields("w", 0).Err(); err != nil {
		t.Fatal(err)
	}
	rt, _ := NewRuntime(topo, Config{Backend: backend, SaveEveryTuples: 2})
	rt.Start()
	if err := rt.Wait(); err != nil {
		t.Fatal(err)
	}
	key := TaskKey("as", "count", 0)
	snap, err := backend.Recover(key)
	if err != nil {
		t.Fatalf("no auto-saved snapshot: %v", err)
	}
	st := state.NewMapStore()
	if err := st.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if st.Len() < 4 {
		t.Fatalf("auto-saved snapshot too old: %d keys", st.Len())
	}
}

func TestStatsSnapshot(t *testing.T) {
	topo := NewTopology("stats")
	_ = topo.AddSpout("src", newSliceSpout(wordTuples("a", "b", "c", "d")))
	counter := newCountBolt()
	if err := topo.AddBolt("count", counter, 2).Fields("src", 0).Err(); err != nil {
		t.Fatal(err)
	}
	pass := BoltFunc(func(tp Tuple, _ Emit) error { return nil })
	if err := topo.AddBolt("sink", pass, 1).Global("count").Err(); err != nil {
		t.Fatal(err)
	}
	rt, _ := NewRuntime(topo, Config{Backend: NewMemoryBackend()})
	rt.Start()
	if err := rt.Wait(); err != nil {
		t.Fatal(err)
	}
	stats := rt.Stats()
	if len(stats) != 3 {
		t.Fatalf("got %d task stats", len(stats))
	}
	var counted, sunk int64
	for _, s := range stats {
		switch s.Bolt {
		case "count":
			counted += s.Handled
			if !s.Stateful {
				t.Fatal("count should be stateful")
			}
		case "sink":
			sunk += s.Handled
			if s.Stateful {
				t.Fatal("sink should be stateless")
			}
		}
	}
	if counted != 4 || sunk != 4 {
		t.Fatalf("counted=%d sunk=%d, want 4/4", counted, sunk)
	}
	if rt.Pending() != 0 {
		t.Fatalf("pending = %d after drain", rt.Pending())
	}
}
