package stream

import (
	"fmt"
	"strconv"
	"testing"

	"sr3/internal/checkpoint"
	"sr3/internal/dht"
	"sr3/internal/recovery"
)

// buildSR3Cluster assembles the full stack: DHT ring + SR3 managers.
func buildSR3Cluster(t testing.TB, nodes int, seed int64) *recovery.Cluster {
	t.Helper()
	ring, err := dht.NewRing(dht.DefaultConfig(), seed, nodes)
	if err != nil {
		t.Fatalf("ring: %v", err)
	}
	return recovery.NewCluster(ring)
}

func runWordCountWithFailure(t *testing.T, backend StateBackend, afterSave func()) map[string]int64 {
	t.Helper()
	topo := NewTopology("itest")
	spout := newChanSpout()
	_ = topo.AddSpout("words", spout)
	counter := newCountBolt()
	if err := topo.AddBolt("count", counter, 1).Fields("words", 0).Err(); err != nil {
		t.Fatal(err)
	}
	rt, err := NewRuntime(topo, Config{Backend: backend})
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()

	batch := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			spout.push(Tuple{Values: []any{fmt.Sprintf("w%d", i%5)}, Ts: int64(i)})
		}
	}
	batch(0, 100)
	settle(rt)
	if err := rt.SaveAll(); err != nil {
		t.Fatalf("save: %v", err)
	}
	if afterSave != nil {
		afterSave()
	}
	batch(100, 200)
	settle(rt)

	// Crash the stateful task; its in-memory state is wiped.
	if err := rt.Kill("count", 0); err != nil {
		t.Fatal(err)
	}
	if err := counter.store.Restore(mustSnapshot(t, newCountBolt().store)); err != nil {
		t.Fatal(err)
	}
	if err := rt.RecoverTask("count", 0); err != nil {
		t.Fatalf("recover: %v", err)
	}

	spout.close()
	if err := rt.Wait(); err != nil {
		t.Fatal(err)
	}
	out := make(map[string]int64, 5)
	for i := 0; i < 5; i++ {
		w := fmt.Sprintf("w%d", i)
		v, ok := counter.store.Get(w)
		if !ok {
			t.Fatalf("count[%s] missing", w)
		}
		n, err := strconv.ParseInt(string(v), 10, 64)
		if err != nil {
			t.Fatal(err)
		}
		out[w] = n
	}
	return out
}

func TestSR3BackendEndToEnd(t *testing.T) {
	for _, mech := range []recovery.Mechanism{recovery.Star, recovery.Line, recovery.Tree} {
		mech := mech
		t.Run(mech.String(), func(t *testing.T) {
			cluster := buildSR3Cluster(t, 40, 100+int64(mech))
			backend := NewSR3Backend(cluster, 8, 2)
			backend.Mechanism = mech
			counts := runWordCountWithFailure(t, backend, nil)
			for w, n := range counts {
				if n != 40 {
					t.Fatalf("count[%s] = %d, want 40", w, n)
				}
			}
		})
	}
}

func TestSR3BackendSurvivesOwnerNodeFailure(t *testing.T) {
	// The DHT node owning the task's shards dies between save and
	// recovery: SR3 must rebuild from leaf-set replicas at a replacement.
	cluster := buildSR3Cluster(t, 50, 200)
	backend := NewSR3Backend(cluster, 6, 2)
	backend.Mechanism = recovery.Tree
	taskKey := TaskKey("itest", "count", 0)
	counts := runWordCountWithFailure(t, backend, func() {
		owner, ok := cluster.Ring.ClosestLive(hashTask(taskKey))
		if !ok {
			t.Fatal("no owner")
		}
		cluster.Ring.Fail(owner)
		cluster.Ring.MaintenanceRound()
	})
	for w, n := range counts {
		if n != 40 {
			t.Fatalf("count[%s] = %d, want 40", w, n)
		}
	}
}

func TestSR3BackendAutoSelection(t *testing.T) {
	cluster := buildSR3Cluster(t, 40, 300)
	backend := NewSR3Backend(cluster, 8, 2) // Mechanism 0 → heuristic
	counts := runWordCountWithFailure(t, backend, nil)
	for w, n := range counts {
		if n != 40 {
			t.Fatalf("count[%s] = %d, want 40", w, n)
		}
	}
}

func TestCheckpointBackendEndToEnd(t *testing.T) {
	backend := NewCheckpointBackend(checkpoint.NewStore())
	counts := runWordCountWithFailure(t, backend, nil)
	for w, n := range counts {
		if n != 40 {
			t.Fatalf("count[%s] = %d, want 40", w, n)
		}
	}
}

func TestConcurrentStatefulTasksWithSR3(t *testing.T) {
	// Multiple stateful tasks (parallelism 4) all saving through one SR3
	// cluster, with two simultaneous task failures.
	cluster := buildSR3Cluster(t, 60, 400)
	backend := NewSR3Backend(cluster, 4, 2)
	backend.Mechanism = recovery.Star

	topo := NewTopology("multi")
	spout := newChanSpout()
	_ = topo.AddSpout("words", spout)
	counters := make([]*countBolt, 1)
	counters[0] = newCountBolt()
	// Note: with parallelism 4 all tasks share one bolt instance's store
	// in this runtime, so use parallelism 1 per bolt but 3 bolts instead.
	bolts := []*countBolt{newCountBolt(), newCountBolt(), newCountBolt()}
	for i, b := range bolts {
		if err := topo.AddBolt(fmt.Sprintf("count%d", i), b, 1).Fields("words", 0).Err(); err != nil {
			t.Fatal(err)
		}
	}
	rt, err := NewRuntime(topo, Config{Backend: backend})
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()
	for i := 0; i < 100; i++ {
		spout.push(Tuple{Values: []any{fmt.Sprintf("k%d", i%10)}})
	}
	settle(rt)
	if err := rt.SaveAll(); err != nil {
		t.Fatal(err)
	}
	for i := 100; i < 200; i++ {
		spout.push(Tuple{Values: []any{fmt.Sprintf("k%d", i%10)}})
	}
	settle(rt)

	// Two of three bolts fail simultaneously.
	for _, name := range []string{"count0", "count2"} {
		if err := rt.Kill(name, 0); err != nil {
			t.Fatal(err)
		}
	}
	for _, name := range []string{"count0", "count2"} {
		if err := rt.RecoverTask(name, 0); err != nil {
			t.Fatalf("recover %s: %v", name, err)
		}
	}
	spout.close()
	if err := rt.Wait(); err != nil {
		t.Fatal(err)
	}
	// Every bolt sees the whole stream (each subscribed independently):
	// every key must be exactly 20 in every bolt.
	for bi, b := range bolts {
		for i := 0; i < 10; i++ {
			k := fmt.Sprintf("k%d", i)
			v, ok := b.store.Get(k)
			if !ok {
				t.Fatalf("bolt %d missing %s", bi, k)
			}
			if string(v) != "20" {
				t.Fatalf("bolt %d count[%s] = %s, want 20", bi, k, v)
			}
		}
	}
}
