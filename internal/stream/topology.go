package stream

import (
	"errors"
	"fmt"
	"hash/fnv"
)

// GroupingType selects how tuples are routed to a bolt's tasks.
type GroupingType int

// Groupings (the Storm set the benchmarks use).
const (
	// ShuffleGrouping distributes tuples round-robin.
	ShuffleGrouping GroupingType = iota + 1
	// FieldsGrouping routes by hash of one tuple field, so all tuples
	// with the same key hit the same task (required by stateful bolts).
	FieldsGrouping
	// GlobalGrouping routes everything to task 0.
	GlobalGrouping
	// AllGrouping broadcasts to every task.
	AllGrouping
)

// Topology errors.
var (
	ErrDuplicateID   = errors.New("stream: component id already used")
	ErrUnknownSource = errors.New("stream: grouping references unknown component")
	ErrEmptyTopology = errors.New("stream: topology has no spouts")
	ErrBadParallel   = errors.New("stream: parallelism must be positive")
	ErrCycle         = errors.New("stream: topology has a cycle")
)

type input struct {
	from     string
	grouping GroupingType
	field    int
}

type spoutDecl struct {
	id    string
	spout Spout
}

type boltDecl struct {
	id       string
	bolt     Bolt
	parallel int
	inputs   []input
	stateful bool
}

// Topology is a DAG of spouts and bolts under construction.
type Topology struct {
	name    string
	order   []string
	spouts  map[string]*spoutDecl
	bolts   map[string]*boltDecl
	sources map[string]bool
}

// NewTopology starts building a topology.
func NewTopology(name string) *Topology {
	return &Topology{
		name:    name,
		spouts:  make(map[string]*spoutDecl),
		bolts:   make(map[string]*boltDecl),
		sources: make(map[string]bool),
	}
}

// Name returns the topology name.
func (t *Topology) Name() string { return t.name }

// AddSpout declares a source.
func (t *Topology) AddSpout(id string, s Spout) error {
	if t.has(id) {
		return fmt.Errorf("spout %q: %w", id, ErrDuplicateID)
	}
	t.spouts[id] = &spoutDecl{id: id, spout: s}
	t.order = append(t.order, id)
	return nil
}

// AddSource declares an external source: a component whose tuples are
// produced outside this runtime (on another node of a multi-process
// cluster) and delivered via Runtime.Inject. Bolts subscribe to it like
// any local component, but the runtime spawns no pump for it — the
// process hosting the real spout pushes its output across the wire.
func (t *Topology) AddSource(id string) error {
	if t.has(id) {
		return fmt.Errorf("source %q: %w", id, ErrDuplicateID)
	}
	t.sources[id] = true
	t.order = append(t.order, id)
	return nil
}

// BoltBuilder wires a bolt's inputs fluently.
type BoltBuilder struct {
	topo *Topology
	decl *boltDecl
	err  error
}

// AddBolt declares an operator with the given parallelism.
func (t *Topology) AddBolt(id string, b Bolt, parallelism int) *BoltBuilder {
	bb := &BoltBuilder{topo: t}
	if t.has(id) {
		bb.err = fmt.Errorf("bolt %q: %w", id, ErrDuplicateID)
		return bb
	}
	if parallelism <= 0 {
		bb.err = fmt.Errorf("bolt %q parallelism %d: %w", id, parallelism, ErrBadParallel)
		return bb
	}
	_, stateful := b.(StatefulBolt)
	decl := &boltDecl{id: id, bolt: b, parallel: parallelism, stateful: stateful}
	t.bolts[id] = decl
	t.order = append(t.order, id)
	bb.decl = decl
	return bb
}

// Shuffle subscribes the bolt to a component with shuffle grouping.
func (b *BoltBuilder) Shuffle(from string) *BoltBuilder {
	return b.subscribe(from, ShuffleGrouping, 0)
}

// Fields subscribes with fields grouping on the given field index.
func (b *BoltBuilder) Fields(from string, field int) *BoltBuilder {
	return b.subscribe(from, FieldsGrouping, field)
}

// Global subscribes with global grouping (task 0 only).
func (b *BoltBuilder) Global(from string) *BoltBuilder {
	return b.subscribe(from, GlobalGrouping, 0)
}

// All subscribes with broadcast grouping.
func (b *BoltBuilder) All(from string) *BoltBuilder {
	return b.subscribe(from, AllGrouping, 0)
}

// Err returns the first wiring error.
func (b *BoltBuilder) Err() error { return b.err }

func (b *BoltBuilder) subscribe(from string, g GroupingType, field int) *BoltBuilder {
	if b.err != nil {
		return b
	}
	if !b.topo.has(from) {
		b.err = fmt.Errorf("bolt %q input %q: %w", b.decl.id, from, ErrUnknownSource)
		return b
	}
	b.decl.inputs = append(b.decl.inputs, input{from: from, grouping: g, field: field})
	return b
}

func (t *Topology) has(id string) bool {
	if _, ok := t.spouts[id]; ok {
		return true
	}
	if t.sources[id] {
		return true
	}
	_, ok := t.bolts[id]
	return ok
}

// validate checks structure: at least one spout or external source, no
// cycles.
func (t *Topology) validate() error {
	if len(t.spouts) == 0 && len(t.sources) == 0 {
		return ErrEmptyTopology
	}
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[string]int)
	var visit func(id string) error
	visit = func(id string) error {
		switch color[id] {
		case gray:
			return fmt.Errorf("component %q: %w", id, ErrCycle)
		case black:
			return nil
		}
		color[id] = gray
		if d, ok := t.bolts[id]; ok {
			for _, in := range d.inputs {
				if err := visit(in.from); err != nil {
					return err
				}
			}
		}
		color[id] = black
		return nil
	}
	for id := range t.bolts {
		if err := visit(id); err != nil {
			return err
		}
	}
	return nil
}

// hashField buckets a tuple field for fields grouping.
func hashField(v any, buckets int) int {
	h := fnv.New32a()
	fmt.Fprintf(h, "%v", v)
	return int(h.Sum32() % uint32(buckets))
}

// sortedBolts returns bolt IDs in dependency order (inputs first).
func (t *Topology) sortedBolts() []string {
	visited := make(map[string]bool)
	var out []string
	var visit func(id string)
	visit = func(id string) {
		if visited[id] {
			return
		}
		visited[id] = true
		d, ok := t.bolts[id]
		if !ok {
			return // spout
		}
		for _, in := range d.inputs {
			visit(in.from)
		}
		out = append(out, id)
	}
	for _, id := range t.order {
		visit(id)
	}
	return out
}
