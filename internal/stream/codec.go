package stream

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"math"
)

// The tuple-batch wire codec: a compact, length-prefixed binary
// encoding for frames of same-class tuples crossing a process boundary,
// replacing per-tuple gob on the inter-task path. gob pays for its
// self-description — every message re-transmits type metadata unless
// encoder state is retained, and retained encoder state cannot be
// framed into independently decodable batches. This codec is
// schema-free the other way around: the handful of hot value types are
// tagged with one byte and written raw; anything else falls back to an
// embedded gob blob per value (correct for every gob-registered type,
// just not fast), so CodecBatch is never less general than CodecGob.
//
// Layout (all integers varint unless noted):
//
//	magic "SB" (2 bytes) | version (1 byte) | class (1 byte)
//	| count (uvarint)
//	then per tuple:
//	| len(Stream) (uvarint) | Stream bytes
//	| Ts (zigzag varint)
//	| len(Values) (uvarint)
//	then per value: tag (1 byte) | payload (tag-specific)
//
// The batch carries exactly one traffic class — the frame-level
// admission unit of the two-lane queues — so class lives in the header,
// not per tuple. Decoding is strict: unknown versions, unknown tags,
// truncated payloads, implausible counts and trailing garbage all
// return ErrBatchCorrupt (fuzzed by FuzzDecodeTupleBatch).

// Codec selects the tuple encoding for process-boundary frames.
type Codec int

const (
	// CodecGob is per-tuple encoding/gob — the universal baseline and
	// fallback (any gob-registered value type round-trips).
	CodecGob Codec = iota
	// CodecBatch is the length-prefixed binary tuple-batch codec.
	CodecBatch
)

func (c Codec) String() string {
	switch c {
	case CodecGob:
		return "gob"
	case CodecBatch:
		return "batch"
	default:
		return "unknown"
	}
}

// ErrBatchCorrupt reports a tuple-batch frame that fails structural
// validation.
var ErrBatchCorrupt = errors.New("stream: corrupt tuple batch")

const (
	batchMagic0  = 'S'
	batchMagic1  = 'B'
	batchVersion = 1
)

// Value tags. vGob is the escape hatch: the value is an embedded gob
// blob (length-prefixed), so types outside the fast set still
// round-trip exactly like the per-tuple gob baseline.
const (
	valNil byte = iota
	valString
	valBytes
	valInt
	valInt64
	valUint64
	valFloat64
	valTrue
	valFalse
	valGob
)

// gobValue wraps an interface value so gob can encode/decode it through
// the concrete-type registry — the same contract as the gob baseline:
// callers gob.Register custom payload types.
type gobValue struct{ V any }

// EncodeTupleBatch appends the encoded frame for tuples (one traffic
// class per frame) to dst and returns the extended slice, so callers
// can reuse pooled buffers across frames.
func EncodeTupleBatch(dst []byte, tuples []Tuple, class TrafficClass) ([]byte, error) {
	dst = append(dst, batchMagic0, batchMagic1, batchVersion, byte(class))
	dst = binary.AppendUvarint(dst, uint64(len(tuples)))
	for i := range tuples {
		t := &tuples[i]
		dst = binary.AppendUvarint(dst, uint64(len(t.Stream)))
		dst = append(dst, t.Stream...)
		dst = binary.AppendVarint(dst, t.Ts)
		dst = binary.AppendUvarint(dst, uint64(len(t.Values)))
		for _, v := range t.Values {
			var err error
			if dst, err = appendValue(dst, v); err != nil {
				return nil, err
			}
		}
	}
	return dst, nil
}

func appendValue(dst []byte, v any) ([]byte, error) {
	switch x := v.(type) {
	case nil:
		return append(dst, valNil), nil
	case string:
		dst = append(dst, valString)
		dst = binary.AppendUvarint(dst, uint64(len(x)))
		return append(dst, x...), nil
	case []byte:
		dst = append(dst, valBytes)
		dst = binary.AppendUvarint(dst, uint64(len(x)))
		return append(dst, x...), nil
	case int:
		dst = append(dst, valInt)
		return binary.AppendVarint(dst, int64(x)), nil
	case int64:
		dst = append(dst, valInt64)
		return binary.AppendVarint(dst, x), nil
	case uint64:
		dst = append(dst, valUint64)
		return binary.AppendUvarint(dst, x), nil
	case float64:
		dst = append(dst, valFloat64)
		return binary.BigEndian.AppendUint64(dst, math.Float64bits(x)), nil
	case bool:
		if x {
			return append(dst, valTrue), nil
		}
		return append(dst, valFalse), nil
	default:
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(gobValue{V: v}); err != nil {
			return nil, fmt.Errorf("stream: tuple batch gob fallback (%T): %w", v, err)
		}
		dst = append(dst, valGob)
		dst = binary.AppendUvarint(dst, uint64(buf.Len()))
		return append(dst, buf.Bytes()...), nil
	}
}

// batchReader is a bounds-checked cursor over an encoded frame.
type batchReader struct {
	data []byte
	off  int
}

func (r *batchReader) remaining() int { return len(r.data) - r.off }

func (r *batchReader) byte() (byte, error) {
	if r.off >= len(r.data) {
		return 0, ErrBatchCorrupt
	}
	b := r.data[r.off]
	r.off++
	return b, nil
}

func (r *batchReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.data[r.off:])
	if n <= 0 {
		return 0, ErrBatchCorrupt
	}
	r.off += n
	return v, nil
}

func (r *batchReader) varint() (int64, error) {
	v, n := binary.Varint(r.data[r.off:])
	if n <= 0 {
		return 0, ErrBatchCorrupt
	}
	r.off += n
	return v, nil
}

// bytes returns the next n bytes without copying; the caller copies if
// it retains them past the decode.
func (r *batchReader) bytes(n uint64) ([]byte, error) {
	if n > uint64(r.remaining()) {
		return nil, ErrBatchCorrupt
	}
	b := r.data[r.off : r.off+int(n)]
	r.off += int(n)
	return b, nil
}

// DecodeTupleBatch decodes one frame, returning the tuples and the
// frame's traffic class. Decoding is strict — any structural anomaly
// (bad magic, unknown version or tag, truncated or trailing bytes,
// counts exceeding what the remaining bytes could possibly hold)
// returns ErrBatchCorrupt. Decoded tuples own their memory: nothing
// references the input slice after return.
func DecodeTupleBatch(data []byte) ([]Tuple, TrafficClass, error) {
	r := &batchReader{data: data}
	if len(data) < 4 || data[0] != batchMagic0 || data[1] != batchMagic1 {
		return nil, 0, fmt.Errorf("%w: bad magic", ErrBatchCorrupt)
	}
	if data[2] != batchVersion {
		return nil, 0, fmt.Errorf("%w: unsupported version %d", ErrBatchCorrupt, data[2])
	}
	class := TrafficClass(data[3])
	if class != ClassIngest && class != ClassReplay {
		return nil, 0, fmt.Errorf("%w: unknown class %d", ErrBatchCorrupt, data[3])
	}
	r.off = 4
	count, err := r.uvarint()
	if err != nil {
		return nil, 0, err
	}
	// A tuple encodes to at least 3 bytes (empty stream, zero ts, zero
	// values), so a count beyond remaining/3 cannot be satisfied — cap
	// before allocating.
	if count > uint64(r.remaining())/3+1 {
		return nil, 0, fmt.Errorf("%w: implausible tuple count %d", ErrBatchCorrupt, count)
	}
	var tuples []Tuple
	if count > 0 {
		tuples = make([]Tuple, count)
	}
	for i := range tuples {
		if err := decodeTuple(r, &tuples[i]); err != nil {
			return nil, 0, err
		}
	}
	if r.remaining() != 0 {
		return nil, 0, fmt.Errorf("%w: %d trailing bytes", ErrBatchCorrupt, r.remaining())
	}
	return tuples, class, nil
}

func decodeTuple(r *batchReader, t *Tuple) error {
	n, err := r.uvarint()
	if err != nil {
		return err
	}
	sb, err := r.bytes(n)
	if err != nil {
		return err
	}
	t.Stream = string(sb)
	if t.Ts, err = r.varint(); err != nil {
		return err
	}
	nv, err := r.uvarint()
	if err != nil {
		return err
	}
	if nv > uint64(r.remaining()) {
		return fmt.Errorf("%w: implausible value count %d", ErrBatchCorrupt, nv)
	}
	if nv == 0 {
		return nil
	}
	t.Values = make([]any, nv)
	for i := range t.Values {
		if t.Values[i], err = decodeValue(r); err != nil {
			return err
		}
	}
	return nil
}

func decodeValue(r *batchReader) (any, error) {
	tag, err := r.byte()
	if err != nil {
		return nil, err
	}
	switch tag {
	case valNil:
		return nil, nil
	case valString:
		n, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		b, err := r.bytes(n)
		if err != nil {
			return nil, err
		}
		return string(b), nil
	case valBytes:
		n, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		b, err := r.bytes(n)
		if err != nil {
			return nil, err
		}
		return append([]byte(nil), b...), nil
	case valInt:
		v, err := r.varint()
		if err != nil {
			return nil, err
		}
		return int(v), nil
	case valInt64:
		return r.varint()
	case valUint64:
		return r.uvarint()
	case valFloat64:
		b, err := r.bytes(8)
		if err != nil {
			return nil, err
		}
		return math.Float64frombits(binary.BigEndian.Uint64(b)), nil
	case valTrue:
		return true, nil
	case valFalse:
		return false, nil
	case valGob:
		n, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		b, err := r.bytes(n)
		if err != nil {
			return nil, err
		}
		var g gobValue
		if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&g); err != nil {
			return nil, fmt.Errorf("%w: gob value: %v", ErrBatchCorrupt, err)
		}
		return g.V, nil
	default:
		return nil, fmt.Errorf("%w: unknown value tag %d", ErrBatchCorrupt, tag)
	}
}
