// Package stream implements a Storm-style distributed stream processing
// runtime: topologies are DAGs of spouts (sources) and bolts (operators)
// wired by stream groupings, executed by per-task goroutines. Stateful
// bolts expose a state.Store; the runtime periodically saves operator
// state through a pluggable backend (SR3 or the checkpointing baseline)
// and can kill and recover tasks — the integration surface the paper
// adds to Storm's IRichBolt (paper §4).
//
// Recovery model: stateful bolts are assumed deterministic. Each task
// keeps an input log of the tuples received since its last state save;
// recovery restores the saved snapshot and replays the log, exactly
// reconstructing the lost state (the same contract checkpoint+replay and
// DStream lineage recovery rely on).
package stream

import "fmt"

// Tuple is one data record flowing through a topology.
type Tuple struct {
	// Stream identifies the logical stream (usually the emitting
	// component's ID).
	Stream string
	// Values are the record's fields.
	Values []any
	// Ts is an optional event timestamp (milliseconds) used by windows.
	Ts int64
}

// String formats a tuple for logs.
func (t Tuple) String() string {
	return fmt.Sprintf("%s%v@%d", t.Stream, t.Values, t.Ts)
}

// StringAt returns field i as a string (empty when absent or non-string).
func (t Tuple) StringAt(i int) string {
	if i < 0 || i >= len(t.Values) {
		return ""
	}
	s, _ := t.Values[i].(string)
	return s
}

// IntAt returns field i as an int64 (0 when absent or non-numeric).
func (t Tuple) IntAt(i int) int64 {
	if i < 0 || i >= len(t.Values) {
		return 0
	}
	switch v := t.Values[i].(type) {
	case int:
		return int64(v)
	case int64:
		return v
	case uint64:
		return int64(v)
	case float64:
		return int64(v)
	default:
		return 0
	}
}

// FloatAt returns field i as a float64 (0 when absent or non-numeric).
func (t Tuple) FloatAt(i int) float64 {
	if i < 0 || i >= len(t.Values) {
		return 0
	}
	switch v := t.Values[i].(type) {
	case float64:
		return v
	case int:
		return float64(v)
	case int64:
		return float64(v)
	default:
		return 0
	}
}

// Emit forwards a tuple produced by a bolt or spout.
type Emit func(t Tuple)

// Spout produces source tuples. Next returns false when the source is
// exhausted (finite benchmark sources) — the runtime then drains and
// stops.
type Spout interface {
	Next() (Tuple, bool)
}

// Bolt processes one input tuple, emitting any number of outputs.
type Bolt interface {
	Execute(t Tuple, emit Emit) error
}

// StatefulBolt is a bolt whose state SR3 protects. The runtime snapshots
// and restores the returned store; the same store instance must back the
// bolt's processing.
type StatefulBolt interface {
	Bolt
	Store() StateStore
}

// StateStore is the snapshot/restore surface the runtime needs (satisfied
// by every state.Store).
type StateStore interface {
	Snapshot() ([]byte, error)
	Restore(data []byte) error
	SizeBytes() int
}

// ClassedBolt is a bolt that also wants the traffic class of the tuple
// it is executing. Egress relays of a multi-process cluster implement it
// so a replayed tuple stays replay-class on the next hop's wire frame.
// The runtime calls ExecuteClassed instead of Execute when a bolt
// implements this interface.
type ClassedBolt interface {
	Bolt
	ExecuteClassed(t Tuple, class TrafficClass, emit Emit) error
}

// BoltFunc adapts a function to the Bolt interface.
type BoltFunc func(t Tuple, emit Emit) error

// Execute implements Bolt.
func (f BoltFunc) Execute(t Tuple, emit Emit) error { return f(t, emit) }

// SpoutFunc adapts a function to the Spout interface.
type SpoutFunc func() (Tuple, bool)

// Next implements Spout.
func (f SpoutFunc) Next() (Tuple, bool) { return f() }
