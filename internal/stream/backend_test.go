package stream

import (
	"testing"

	"sr3/internal/dht"
	"sr3/internal/state"
)

func TestReplicationBackendEndToEnd(t *testing.T) {
	backend := NewReplicationBackend()
	counts := runWordCountWithFailure(t, backend, nil)
	for w, n := range counts {
		if n != 40 {
			t.Fatalf("count[%s] = %d, want 40", w, n)
		}
	}
}

// TestReplicationBackendRepeatedFailover: Recover fails the primary and
// re-establishes the pair, so a second crash later is survivable too.
func TestReplicationBackendRepeatedFailover(t *testing.T) {
	backend := NewReplicationBackend()
	if err := backend.Save("k", []byte("v1"), state.Version{}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		snap, err := backend.Recover("k")
		if err != nil {
			t.Fatalf("failover %d: %v", i, err)
		}
		if string(snap) != "v1" {
			t.Fatalf("failover %d: snapshot = %q", i, snap)
		}
	}
}

func TestFP4SBackendEndToEnd(t *testing.T) {
	ring, err := dht.NewRing(dht.DefaultConfig(), 400, 40)
	if err != nil {
		t.Fatal(err)
	}
	backend, err := NewFP4SBackend(ring, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	counts := runWordCountWithFailure(t, backend, nil)
	for w, n := range counts {
		if n != 40 {
			t.Fatalf("count[%s] = %d, want 40", w, n)
		}
	}
}

func TestFP4SBackendSurvivesOwnerNodeFailure(t *testing.T) {
	// The owner dies after Save: recovery coordinates from a replacement
	// and decodes from any k of the n scattered blocks.
	ring, err := dht.NewRing(dht.DefaultConfig(), 401, 50)
	if err != nil {
		t.Fatal(err)
	}
	backend, err := NewFP4SBackend(ring, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	taskKey := TaskKey("itest", "count", 0)
	counts := runWordCountWithFailure(t, backend, func() {
		owner, ok := ring.ClosestLive(hashTask(taskKey))
		if !ok {
			t.Fatal("no owner")
		}
		ring.Fail(owner)
		ring.MaintenanceRound()
	})
	for w, n := range counts {
		if n != 40 {
			t.Fatalf("count[%s] = %d, want 40", w, n)
		}
	}
}
