package stream

import (
	"strconv"
	"testing"
	"time"

	"sr3/internal/leakcheck"
	"sr3/internal/metrics"
)

func batchEnv(class TrafficClass, seqs ...int) envelope {
	tb := &tupleBatch{class: class}
	for _, s := range seqs {
		tb.tuples = append(tb.tuples, Tuple{Values: []any{s}})
	}
	return envelope{kind: ctlBatch, batch: tb, class: class}
}

// TestQueueShedAccountingCountsTuples is the satellite fix's unit test:
// when a whole batch envelope is shed — itself, or as the evicted
// oldest — the queue reports the envelope so the caller can debit the
// ledger per TUPLE it carried, not once per batch.
func TestQueueShedAccountingCountsTuples(t *testing.T) {
	q := newTaskQueue(2, QueueShedOldest, 0)
	if out, _, _ := q.pushData(batchEnv(ClassIngest, 0, 1, 2), false); out != pushAdmitted {
		t.Fatalf("first push: %v", out)
	}
	if out, _, _ := q.pushData(batchEnv(ClassIngest, 3), false); out != pushAdmitted {
		t.Fatalf("second push: %v", out)
	}
	// Full queue: shed-oldest evicts the 3-tuple batch; the victim must
	// come back so all 3 tuples hit the shed ledger.
	out, evicted, _ := q.pushData(batchEnv(ClassIngest, 4, 5), false)
	if out != pushShedOldest {
		t.Fatalf("third push: %v, want shed-oldest", out)
	}
	if got := evicted.tupleCount(); got != 3 {
		t.Fatalf("evicted tuple count = %d, want 3 (batch of 3, not 1 envelope)", got)
	}
	// Replay-full queue: the incoming ingest batch is shed whole, and
	// its own tuple count is the debit.
	qr := newTaskQueue(1, QueueShedOldest, 0)
	qr.pushData(batchEnv(ClassReplay, 0), false)
	out, _, _ = qr.pushData(batchEnv(ClassIngest, 1, 2, 3, 4), false)
	if out != pushShedSelf {
		t.Fatalf("ingest into replay-full queue: %v, want shed-self", out)
	}
	if got := batchEnv(ClassIngest, 1, 2, 3, 4).tupleCount(); got != 4 {
		t.Fatalf("self tuple count = %d, want 4", got)
	}
	// Single-tuple envelopes still count as 1.
	if got := dataEnv(0, ClassIngest).tupleCount(); got != 1 {
		t.Fatalf("per-tuple envelope count = %d, want 1", got)
	}
}

// TestBatchedLedgerCountsTuplesNotBatches drives a batched runtime into
// shedding and cross-checks the runtime ledger against ground truth:
// offered must equal the tuples pumped (so offered is per tuple, not
// per frame), offered = admitted + shed exactly, and the stateful
// bolt's record must equal admitted exactly (shed frames never reach
// Execute; admitted frames execute once per tuple).
func TestBatchedLedgerCountsTuplesNotBatches(t *testing.T) {
	defer leakcheck.Verify(t)()
	const n = 4000
	reg := metrics.NewRegistry()
	bolt := newTotalBolt(10 * time.Microsecond)
	tuples := make([]Tuple, n)
	for i := range tuples {
		tuples[i] = Tuple{Values: []any{i}}
	}
	topo := NewTopology("bl")
	if err := topo.AddSpout("src", newSliceSpout(tuples)); err != nil {
		t.Fatal(err)
	}
	if err := topo.AddBolt("count", bolt, 1).Global("src").Err(); err != nil {
		t.Fatal(err)
	}
	rt, err := NewRuntime(topo, Config{
		Backend:      NewMemoryBackend(),
		ChannelDepth: 8,
		QueuePolicy:  QueueShedOldest,
		BatchSize:    16,
		BatchLinger:  200 * time.Microsecond,
		Metrics:      reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()
	if err := rt.Wait(); err != nil {
		t.Fatal(err)
	}
	ov := rt.Overload()
	if ov.Offered != n {
		t.Fatalf("offered = %d, want %d (must count tuples, not frames)", ov.Offered, n)
	}
	if ov.Offered != ov.Admitted+ov.Shed {
		t.Fatalf("ledger broken: %d != %d + %d", ov.Offered, ov.Admitted, ov.Shed)
	}
	if ov.Shed == 0 {
		t.Fatal("slow bolt behind an 8-deep queue at full pump rate shed nothing — scenario lost its teeth")
	}
	if got := bolt.total(); got != ov.Admitted {
		t.Fatalf("executed = %d, admitted = %d (exactly-once over admitted broken)", got, ov.Admitted)
	}
	for _, ts := range ov.Tasks {
		if ts.QueueHighWater > ts.QueueCap {
			t.Fatalf("%s: high water %d > cap %d", ts.Key, ts.QueueHighWater, ts.QueueCap)
		}
	}
	// The metrics mirror agrees with the atomics ledger.
	if got := reg.Counter("sr3_stream_shed_total").Value(); got != ov.Shed {
		t.Fatalf("sr3_stream_shed_total = %d, want %d", got, ov.Shed)
	}
	if got := reg.Counter("sr3_stream_tuples_in_total").Value(); got != n {
		t.Fatalf("sr3_stream_tuples_in_total = %d, want %d", got, n)
	}
}

// TestBatchedMatchesPerTupleSemantics runs the identical wordcount on a
// per-tuple and a batched runtime (blocking policy — no shedding) and
// requires identical final state: batching must be invisible to
// results.
func TestBatchedMatchesPerTupleSemantics(t *testing.T) {
	defer leakcheck.Verify(t)()
	words := []string{"a", "b", "c", "d", "e"}
	tuples := make([]Tuple, 1000)
	for i := range tuples {
		tuples[i] = Tuple{Values: []any{words[i%len(words)]}, Ts: int64(i)}
	}
	run := func(batch int) map[string]int64 {
		topo := NewTopology("eq")
		if err := topo.AddSpout("src", newSliceSpout(tuples)); err != nil {
			t.Fatal(err)
		}
		counter := newCountBolt()
		if err := topo.AddBolt("count", counter, 2).Fields("src", 0).Err(); err != nil {
			t.Fatal(err)
		}
		rt, err := NewRuntime(topo, Config{
			Backend:     NewMemoryBackend(),
			BatchSize:   batch,
			BatchLinger: time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		rt.Start()
		if err := rt.Wait(); err != nil {
			t.Fatal(err)
		}
		counts := make(map[string]int64)
		for _, k := range counter.store.Keys() {
			v, _ := counter.store.Get(k)
			n, err := strconv.ParseInt(string(v), 10, 64)
			if err != nil {
				t.Fatalf("count %q: %v", k, err)
			}
			counts[k] = n
		}
		return counts
	}
	perTuple, batched := run(0), run(64)
	if len(perTuple) != len(words) {
		t.Fatalf("per-tuple counts = %v", perTuple)
	}
	for w, c := range perTuple {
		if batched[w] != c {
			t.Fatalf("word %q: batched=%d per-tuple=%d", w, batched[w], c)
		}
	}
}

// TestBatchLingerFlushesPartialFrames: tuples fewer than BatchSize must
// still flow — the background linger flusher sweeps partial frames
// while the spout sits blocked in Next, so Drain terminates without the
// stream ending.
func TestBatchLingerFlushesPartialFrames(t *testing.T) {
	defer leakcheck.Verify(t)()
	sp := newChanSpout()
	s := &sink{}
	topo := NewTopology("lg")
	if err := topo.AddSpout("src", sp); err != nil {
		t.Fatal(err)
	}
	if err := topo.AddBolt("sink", s, 1).Global("src").Err(); err != nil {
		t.Fatal(err)
	}
	rt, err := NewRuntime(topo, Config{BatchSize: 64, BatchLinger: 500 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()
	sp.push(Tuple{Values: []any{1}}, Tuple{Values: []any{2}}, Tuple{Values: []any{3}})
	// 3 tuples against BatchSize 64: only the linger flush can deliver.
	settle(rt)
	if got := len(s.tuples()); got != 3 {
		t.Fatalf("delivered = %d, want 3 (partial frame stuck?)", got)
	}
	sp.close()
	if err := rt.Wait(); err != nil {
		t.Fatal(err)
	}
}

// benchBatchedRuntime is benchRuntime with the batched plane on; the
// long linger keeps the background flusher out of the measurement (the
// size trigger does all flushing at benchmark rates).
func benchBatchedRuntime(b *testing.B) (*Runtime, *batcher) {
	topo := NewTopology("bench")
	if err := topo.AddSpout("src", noopSpout{}); err != nil {
		b.Fatal(err)
	}
	drop := BoltFunc(func(Tuple, Emit) error { return nil })
	if err := topo.AddBolt("sink", drop, 1).Shuffle("src").Err(); err != nil {
		b.Fatal(err)
	}
	rt, err := NewRuntime(topo, Config{BatchSize: 64, BatchLinger: time.Second})
	if err != nil {
		b.Fatal(err)
	}
	rt.Start()
	return rt, rt.newBatcher()
}

// BenchmarkBatchedEmit measures the batched steady-state emit path —
// the acceptance bar is 0 allocs/op: frames recycle through the pool,
// buffers stay at capacity, and no per-tuple garbage is created. The
// warmup loop fills the frame pool to its steady-state population
// before the timer starts.
func BenchmarkBatchedEmit(b *testing.B) {
	rt, ob := benchBatchedRuntime(b)
	tuple := Tuple{Stream: "src", Values: []any{"w"}}
	for i := 0; i < 20000; i++ {
		rt.route("src", tuple, ClassIngest, ob)
	}
	ob.flushAll()
	rt.Drain()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt.route("src", tuple, ClassIngest, ob)
	}
	ob.flushAll()
	rt.Drain()
	b.StopTimer()
	_ = rt.Wait()
}

// TestBatchedEmitZeroAlloc is the allocation regression guard wired
// into `go test`: CI fails if the batched emit path regresses from 0
// allocs/op (the BenchmarkRuntimeDisabled discipline, applied to the
// batch plane).
func TestBatchedEmitZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instrumentation allocates")
	}
	if testing.Short() {
		t.Skip("allocation guard runs the benchmark harness")
	}
	res := testing.Benchmark(BenchmarkBatchedEmit)
	if a := res.AllocsPerOp(); a != 0 {
		t.Fatalf("BenchmarkBatchedEmit = %d allocs/op, want 0", a)
	}
}
