package stream

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// customPayload is an out-of-fast-set value type, exercising the gob
// fallback path of the batch codec.
type customPayload struct {
	Name string
	N    int64
}

func init() {
	gob.Register(customPayload{})
}

// gobRoundTrip is the reference semantics: what a tuple looks like
// after travelling the per-tuple gob baseline path.
func gobRoundTrip(t *testing.T, tu Tuple) Tuple {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(tu); err != nil {
		t.Fatalf("gob encode: %v", err)
	}
	var out Tuple
	if err := gob.NewDecoder(bytes.NewReader(buf.Bytes())).Decode(&out); err != nil {
		t.Fatalf("gob decode: %v", err)
	}
	return out
}

// randomTuple draws a tuple whose value types gob can also carry, so
// the two codecs' round-trips are directly comparable.
func randomTuple(rng *rand.Rand) Tuple {
	streams := []string{"", "src", "words", "a/b/c", "sensor-φ"}
	t := Tuple{
		Stream: streams[rng.Intn(len(streams))],
		Ts:     rng.Int63n(1<<40) - 1<<39,
	}
	nv := rng.Intn(5)
	for i := 0; i < nv; i++ {
		switch rng.Intn(8) {
		case 0:
			t.Values = append(t.Values, fmt.Sprintf("w%d", rng.Intn(1000)))
		case 1:
			t.Values = append(t.Values, rng.Intn(1<<20)-1<<19)
		case 2:
			t.Values = append(t.Values, rng.Int63()-1<<62)
		case 3:
			t.Values = append(t.Values, uint64(rng.Int63()))
		case 4:
			t.Values = append(t.Values, rng.NormFloat64())
		case 5:
			t.Values = append(t.Values, rng.Intn(2) == 0)
		case 6:
			b := make([]byte, 1+rng.Intn(32))
			rng.Read(b)
			t.Values = append(t.Values, b)
		case 7:
			t.Values = append(t.Values, customPayload{Name: "c", N: rng.Int63()})
		}
	}
	return t
}

// TestBatchCodecMatchesGobSemantics is the property test: for arbitrary
// tuple sequences (random keys, payload types, traffic classes —
// including the empty and single-tuple batches), batch-encode/decode
// yields exactly the tuples the per-tuple gob baseline would deliver.
func TestBatchCodecMatchesGobSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for round := 0; round < 200; round++ {
		n := 0
		switch round {
		case 0: // empty batch
		case 1: // single-tuple batch
			n = 1
		default:
			n = rng.Intn(100)
		}
		class := ClassIngest
		if rng.Intn(2) == 1 {
			class = ClassReplay
		}
		in := make([]Tuple, n)
		for i := range in {
			in[i] = randomTuple(rng)
		}
		enc, err := EncodeTupleBatch(nil, in, class)
		if err != nil {
			t.Fatalf("round %d: encode: %v", round, err)
		}
		out, gotClass, err := DecodeTupleBatch(enc)
		if err != nil {
			t.Fatalf("round %d: decode: %v", round, err)
		}
		if gotClass != class {
			t.Fatalf("round %d: class = %v, want %v", round, gotClass, class)
		}
		if len(out) != len(in) {
			t.Fatalf("round %d: %d tuples decoded, want %d", round, len(out), len(in))
		}
		for i := range in {
			want := gobRoundTrip(t, in[i])
			if !reflect.DeepEqual(out[i], want) {
				t.Fatalf("round %d tuple %d:\n batch: %#v\n gob:   %#v", round, i, out[i], want)
			}
		}
	}
}

// TestBatchCodecNilValues: nil interface values survive the batch codec
// (gob cannot even encode them — the binary codec is strictly more
// general here, so this case is codec-only).
func TestBatchCodecNilValues(t *testing.T) {
	in := []Tuple{{Stream: "s", Values: []any{nil, "x", nil}}}
	enc, err := EncodeTupleBatch(nil, in, ClassReplay)
	if err != nil {
		t.Fatal(err)
	}
	out, class, err := DecodeTupleBatch(enc)
	if err != nil {
		t.Fatal(err)
	}
	if class != ClassReplay || !reflect.DeepEqual(out, in) {
		t.Fatalf("round-trip = %#v (class %v)", out, class)
	}
}

// TestBatchCodecAppendsToDst: encoding extends the caller's buffer in
// place (the pooled-buffer contract).
func TestBatchCodecAppendsToDst(t *testing.T) {
	prefix := []byte("hdr")
	enc, err := EncodeTupleBatch(prefix, []Tuple{{Stream: "s"}}, ClassIngest)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(enc, prefix) {
		t.Fatal("encode did not append to dst")
	}
	if _, _, err := DecodeTupleBatch(enc[len(prefix):]); err != nil {
		t.Fatalf("decode after prefix strip: %v", err)
	}
}

// TestDecodeTupleBatchRejectsCorruption pins the strictness contract on
// hand-built corruptions; the fuzzer explores beyond these.
func TestDecodeTupleBatchRejectsCorruption(t *testing.T) {
	valid, err := EncodeTupleBatch(nil, []Tuple{
		{Stream: "s", Ts: 7, Values: []any{"w", 1}},
	}, ClassIngest)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":           {},
		"bad magic":       append([]byte("XX"), valid[2:]...),
		"unknown version": append([]byte{batchMagic0, batchMagic1, 99}, valid[3:]...),
		"unknown class":   append([]byte{batchMagic0, batchMagic1, batchVersion, 7}, valid[4:]...),
		"truncated":       valid[:len(valid)-3],
		"trailing":        append(append([]byte(nil), valid...), 0xEE),
		"header only":     valid[:4],
		"implausible count": append(append([]byte(nil), valid[:4]...),
			0xFF, 0xFF, 0xFF, 0xFF, 0x0F),
	}
	for name, data := range cases {
		if _, _, err := DecodeTupleBatch(data); !errors.Is(err, ErrBatchCorrupt) {
			t.Errorf("%s: err = %v, want ErrBatchCorrupt", name, err)
		}
	}
}

// FuzzDecodeTupleBatch: the decoder must never panic, and anything it
// accepts must re-encode and re-decode stably (same tuple count, same
// class) — truncations, corrupt length prefixes and version flips are
// exercised both by the seeds and by mutation.
func FuzzDecodeTupleBatch(f *testing.F) {
	seed, _ := EncodeTupleBatch(nil, []Tuple{
		{Stream: "src", Ts: 123, Values: []any{"w", 42, int64(-7), uint64(9), 3.14, true, []byte{1, 2}}},
		{Stream: "src", Ts: -1, Values: []any{nil, false}},
	}, ClassIngest)
	f.Add(seed)
	empty, _ := EncodeTupleBatch(nil, nil, ClassReplay)
	f.Add(empty)
	f.Add(seed[:len(seed)/2])               // truncated frame
	f.Add(append([]byte{}, 'S', 'B', 2, 0)) // future version
	corrupt := append([]byte(nil), seed...)
	corrupt[5] = 0xFF // length prefix blown up
	f.Add(corrupt)
	f.Fuzz(func(t *testing.T, data []byte) {
		tuples, class, err := DecodeTupleBatch(data)
		if err != nil {
			return
		}
		enc, err := EncodeTupleBatch(nil, tuples, class)
		if err != nil {
			t.Fatalf("re-encode of accepted frame failed: %v", err)
		}
		tuples2, class2, err := DecodeTupleBatch(enc)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(tuples2) != len(tuples) || class2 != class {
			t.Fatalf("unstable round-trip: %d/%v -> %d/%v",
				len(tuples), class, len(tuples2), class2)
		}
	})
}
