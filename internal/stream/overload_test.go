package stream

import (
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"sr3/internal/leakcheck"
	"sr3/internal/metrics"
	"sr3/internal/obs"
	"sr3/internal/state"
)

func dataEnv(seq int, class TrafficClass) envelope {
	return envelope{kind: ctlTuple, tuple: Tuple{Values: []any{seq}}, class: class}
}

func TestTaskQueueShedOldestKeepsNewest(t *testing.T) {
	q := newTaskQueue(4, QueueShedOldest, 0)
	sheds := 0
	for i := 0; i < 6; i++ {
		out, _, _ := q.pushData(dataEnv(i, ClassIngest), false)
		if out == pushShedOldest {
			sheds++
		}
	}
	if sheds != 2 {
		t.Fatalf("sheds = %d, want 2", sheds)
	}
	if q.depth() != 4 {
		t.Fatalf("depth = %d, want 4", q.depth())
	}
	// The two oldest (0, 1) were evicted; 2..5 remain in order.
	for want := 2; want <= 5; want++ {
		env := q.pop()
		if got := env.tuple.Values[0].(int); got != want {
			t.Fatalf("popped %d, want %d", got, want)
		}
	}
}

func TestTaskQueueShedPriorityDropsIncomingIngest(t *testing.T) {
	q := newTaskQueue(2, QueueShedPriority, 0)
	q.pushData(dataEnv(0, ClassIngest), false)
	q.pushData(dataEnv(1, ClassIngest), false)
	if out, _, _ := q.pushData(dataEnv(2, ClassIngest), false); out != pushShedSelf {
		t.Fatalf("full queue: incoming ingest outcome = %v, want shed-self", out)
	}
	// Incoming replay evicts the oldest queued ingest tuple instead.
	if out, _, _ := q.pushData(dataEnv(3, ClassReplay), false); out != pushShedOldest {
		t.Fatal("incoming replay did not displace queued ingest")
	}
	if got := q.pop().tuple.Values[0].(int); got != 1 {
		t.Fatalf("head = %d, want 1 (0 evicted)", got)
	}
	if env := q.pop(); env.class != ClassReplay {
		t.Fatal("replay tuple lost")
	}
}

func TestTaskQueueReplayNeverShed(t *testing.T) {
	q := newTaskQueue(2, QueueShedOldest, 0)
	q.pushData(dataEnv(0, ClassReplay), false)
	q.pushData(dataEnv(1, ClassReplay), false)
	// Full of replay: incoming ingest is the one shed.
	if out, _, _ := q.pushData(dataEnv(2, ClassIngest), false); out != pushShedSelf {
		t.Fatal("ingest push into replay-full queue was not shed")
	}
	// Incoming replay blocks until the consumer frees a slot.
	admitted := make(chan struct{})
	go func() {
		q.pushData(dataEnv(3, ClassReplay), false)
		close(admitted)
	}()
	select {
	case <-admitted:
		t.Fatal("replay push did not block on a replay-full queue")
	case <-time.After(20 * time.Millisecond):
	}
	q.pop()
	select {
	case <-admitted:
	case <-time.After(2 * time.Second):
		t.Fatal("replay push never admitted after a slot freed")
	}
}

func TestTaskQueueControlLaneFirst(t *testing.T) {
	q := newTaskQueue(4, QueueBlock, 0)
	q.pushData(dataEnv(0, ClassIngest), false)
	q.pushData(dataEnv(1, ClassIngest), false)
	q.pushCtl(envelope{kind: ctlKill})
	if env := q.pop(); env.kind != ctlKill {
		t.Fatalf("pop = kind %d, want control envelope first", env.kind)
	}
	if env := q.pop(); env.tuple.Values[0].(int) != 0 {
		t.Fatal("data order disturbed by control lane")
	}
}

func TestTaskQueueDegradedWatermark(t *testing.T) {
	q := newTaskQueue(8, QueueBlock, 4)
	for i := 0; i < 4; i++ {
		if out, _, _ := q.pushData(dataEnv(i, ClassIngest), true); out != pushAdmitted {
			t.Fatalf("push %d below watermark not admitted", i)
		}
	}
	// At the watermark: degraded mode sheds new ingest even though the
	// queue has headroom...
	if out, _, _ := q.pushData(dataEnv(4, ClassIngest), true); out != pushShedSelf {
		t.Fatal("degraded ingest above watermark not shed")
	}
	// ...but replay traffic uses the reserved headroom freely.
	for i := 0; i < 4; i++ {
		if out, _, _ := q.pushData(dataEnv(10+i, ClassReplay), true); out != pushAdmitted {
			t.Fatalf("degraded replay push %d not admitted above watermark", i)
		}
	}
	if q.depth() != 8 {
		t.Fatalf("depth = %d, want 8", q.depth())
	}
}

func TestTaskQueueConcurrentDepthBound(t *testing.T) {
	defer leakcheck.Verify(t)()
	const capacity = 8
	q := newTaskQueue(capacity, QueueShedOldest, 0)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			if env := q.pop(); env.kind == ctlStop {
				return
			}
		}
	}()
	var producers sync.WaitGroup
	for p := 0; p < 4; p++ {
		producers.Add(1)
		go func(p int) {
			defer producers.Done()
			for i := 0; i < 2000; i++ {
				q.pushData(dataEnv(p*10000+i, ClassIngest), false)
			}
		}(p)
	}
	producers.Wait()
	q.pushCtl(envelope{kind: ctlStop})
	wg.Wait()
	if hw := q.high(); hw > capacity {
		t.Fatalf("high water %d exceeded capacity %d", hw, capacity)
	}
}

// gateBolt blocks Execute until released, to pin queue occupancy.
type gateBolt struct {
	gate chan struct{}
}

func (g *gateBolt) Execute(t Tuple, _ Emit) error {
	<-g.gate
	return nil
}

func TestDegradedModeShedsAndJournalsExactAccounting(t *testing.T) {
	defer leakcheck.Verify(t)()
	fr := obs.NewFlightRecorder(64)
	gate := make(chan struct{})
	g := &gateBolt{gate: gate}

	topo := NewTopology("deg")
	sp := newChanSpout()
	if err := topo.AddSpout("src", sp); err != nil {
		t.Fatal(err)
	}
	if err := topo.AddBolt("gate", g, 1).Global("src").Err(); err != nil {
		t.Fatal(err)
	}
	rt, err := NewRuntime(topo, Config{ChannelDepth: 8, ShedWatermark: 0.5, Flight: fr})
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()

	// One tuple parks in the executor; four more fill to the watermark.
	for i := 0; i < 5; i++ {
		sp.push(Tuple{Values: []any{i}})
	}
	task := rt.tasks["gate"][0]
	deadline := time.Now().Add(5 * time.Second)
	for task.in.depth() < 4 {
		if time.Now().After(deadline) {
			t.Fatalf("queue never reached watermark, depth=%d", task.in.depth())
		}
		time.Sleep(time.Millisecond)
	}

	rt.EnterDegraded("test")
	rt.EnterDegraded("nested") // refcount: no second shed_start
	if !rt.Degraded() {
		t.Fatal("runtime not degraded after EnterDegraded")
	}
	for i := 0; i < 3; i++ {
		sp.push(Tuple{Values: []any{100 + i}})
	}
	for rt.Overload().Shed < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("sheds = %d, want 3", rt.Overload().Shed)
		}
		time.Sleep(time.Millisecond)
	}
	rt.ExitDegraded()
	if !rt.Degraded() {
		t.Fatal("refcounted degraded mode dropped early")
	}
	rt.ExitDegraded()
	if rt.Degraded() {
		t.Fatal("degraded mode not drained")
	}

	close(gate)
	sp.close()
	if err := rt.Wait(); err != nil {
		t.Fatal(err)
	}

	ov := rt.Overload()
	if ov.Offered != 8 || ov.Shed != 3 || ov.Admitted != 5 {
		t.Fatalf("offered/shed/admitted = %d/%d/%d, want 8/3/5", ov.Offered, ov.Shed, ov.Admitted)
	}
	var starts, stops int
	var stopDetail string
	for _, ev := range fr.Events() {
		switch ev.Kind {
		case obs.FlightShedStart:
			starts++
		case obs.FlightShedStop:
			stops++
			stopDetail = ev.Detail
		}
	}
	if starts != 1 || stops != 1 {
		t.Fatalf("shed flight events = %d starts / %d stops, want 1/1", starts, stops)
	}
	if !strings.Contains(stopDetail, "shed=3") || !strings.Contains(stopDetail, "admitted=0") {
		t.Fatalf("shed_stop detail = %q, want exact window accounting", stopDetail)
	}
}

// totalBolt counts every tuple into one store key, slowly — the
// overloadable stage. It re-emits the tuple's seq for the sink.
type totalBolt struct {
	store *state.MapStore
	delay time.Duration
}

func newTotalBolt(delay time.Duration) *totalBolt {
	return &totalBolt{store: state.NewMapStore(), delay: delay}
}

func (b *totalBolt) Execute(t Tuple, emit Emit) error {
	if b.delay > 0 {
		time.Sleep(b.delay)
	}
	b.store.Put("total", []byte(strconv.FormatInt(b.total()+1, 10)))
	emit(Tuple{Values: t.Values})
	return nil
}

func (b *totalBolt) Store() StateStore { return b.store }

func (b *totalBolt) total() int64 {
	v, ok := b.store.Get("total")
	if !ok {
		return 0
	}
	n, _ := strconv.ParseInt(string(v), 10, 64)
	return n
}

// seqSetSink records distinct seqs observed (replay makes duplicates at
// the sink by design; distinct count is the exactly-once check).
type seqSetSink struct {
	mu   sync.Mutex
	seen map[int]int
}

func newSeqSetSink() *seqSetSink { return &seqSetSink{seen: make(map[int]int)} }

func (s *seqSetSink) Execute(t Tuple, _ Emit) error {
	s.mu.Lock()
	s.seen[t.Values[0].(int)]++
	s.mu.Unlock()
	return nil
}

func (s *seqSetSink) distinct() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.seen)
}

// TestOverloadCrashRecoveryExactlyOnce is the chaos e2e: sustained
// overload against a small bounded queue with shed-oldest, a crash
// mid-stream, recovery, and then the exactness audit — queue depth never
// exceeded capacity, offered = admitted + shed exactly, and every
// admitted tuple is reflected exactly once in recovered state.
func TestOverloadCrashRecoveryExactlyOnce(t *testing.T) {
	defer leakcheck.Verify(t)()
	const n = 1500
	const depth = 16

	reg := metrics.NewRegistry()
	backend := NewMemoryBackend()
	bolt := newTotalBolt(20 * time.Microsecond)
	sink := newSeqSetSink()

	tuples := make([]Tuple, n)
	for i := range tuples {
		tuples[i] = Tuple{Values: []any{i}}
	}
	topo := NewTopology("ovl")
	if err := topo.AddSpout("src", newSliceSpout(tuples[:n/2])); err != nil {
		t.Fatal(err)
	}
	if err := topo.AddBolt("count", bolt, 1).Global("src").Err(); err != nil {
		t.Fatal(err)
	}
	if err := topo.AddBolt("sink", sink, 1).Global("count").Err(); err != nil {
		t.Fatal(err)
	}
	rt, err := NewRuntime(topo, Config{
		Backend:      backend,
		ChannelDepth: depth,
		QueuePolicy:  QueueShedOldest,
		Metrics:      reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()

	// First half at full speed, then snapshot and crash mid-stream.
	if err := rt.Wait(); err != nil {
		t.Fatal(err)
	}
	preTotal := bolt.total()
	preDistinct := int64(sink.distinct())
	ovPre := rt.Overload()
	admittedPre := ovPre.Tasks[0].Admitted
	if ovPre.Tasks[0].Offered != n/2 {
		t.Fatalf("offered = %d, want %d", ovPre.Tasks[0].Offered, n/2)
	}
	if ovPre.Offered != ovPre.Admitted+ovPre.Shed {
		t.Fatalf("accounting broken: %d != %d + %d", ovPre.Offered, ovPre.Admitted, ovPre.Shed)
	}
	if preTotal != admittedPre {
		t.Fatalf("state total %d != admitted %d (lost or duplicated)", preTotal, admittedPre)
	}
	if preDistinct != admittedPre {
		t.Fatalf("sink distinct %d != admitted %d", preDistinct, admittedPre)
	}

	// Second phase: fresh runtime over the same backend and bolt, crash
	// while the second half streams in, recover, and audit end-to-end.
	topo2 := NewTopology("ovl")
	sp := newChanSpout()
	if err := topo2.AddSpout("src", sp); err != nil {
		t.Fatal(err)
	}
	if err := topo2.AddBolt("count", bolt, 1).Global("src").Err(); err != nil {
		t.Fatal(err)
	}
	if err := topo2.AddBolt("sink", sink, 1).Global("count").Err(); err != nil {
		t.Fatal(err)
	}
	rt2, err := NewRuntime(topo2, Config{
		Backend:      backend,
		ChannelDepth: depth,
		QueuePolicy:  QueueShedOldest,
		Metrics:      reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	rt2.Start()
	if err := rt2.Save("count", 0); err != nil {
		t.Fatal(err)
	}

	feed := func(from, to int) {
		for i := from; i < to; i++ {
			sp.push(tuples[i])
		}
	}
	feed(n/2, n*3/4)
	settle(rt2)
	rt2.EnterDegraded("crash drill")
	if err := rt2.Kill("count", 0); err != nil {
		t.Fatal(err)
	}
	feed(n*3/4, n) // arrives while dead: logged for replay, never executed live
	settle(rt2)
	if err := rt2.RecoverTask("count", 0); err != nil {
		t.Fatal(err)
	}
	rt2.ExitDegraded()
	sp.close()
	if err := rt2.Wait(); err != nil {
		t.Fatal(err)
	}

	ov := rt2.Overload()
	if ov.Offered != ov.Admitted+ov.Shed {
		t.Fatalf("accounting broken: %d != %d + %d", ov.Offered, ov.Admitted, ov.Shed)
	}
	var countTask TaskOverloadStats
	for _, ts := range ov.Tasks {
		if ts.Key == "ovl/count/0" {
			countTask = ts
		}
		if ts.QueueHighWater > ts.QueueCap {
			t.Fatalf("%s: high water %d exceeded capacity %d", ts.Key, ts.QueueHighWater, ts.QueueCap)
		}
		if ts.QueueCap != depth {
			t.Fatalf("%s: queue cap %d, want %d", ts.Key, ts.QueueCap, depth)
		}
	}
	if countTask.Offered != n/2 {
		t.Fatalf("phase-2 offered = %d, want %d", countTask.Offered, n/2)
	}
	// Exactly-once for admitted tuples across the crash: recovered state
	// counted each admitted tuple exactly once.
	wantTotal := admittedPre + countTask.Admitted
	if got := bolt.total(); got != wantTotal {
		t.Fatalf("state total after crash+recovery = %d, want %d (admitted pre %d + phase2 %d)",
			got, wantTotal, admittedPre, countTask.Admitted)
	}
	if got := int64(sink.distinct()); got != wantTotal {
		t.Fatalf("sink distinct seqs = %d, want %d", got, wantTotal)
	}
	// The metrics mirror of the shed count agrees with the atomics.
	if got := reg.Counter("sr3_stream_shed_total").Value(); got != ovPre.Shed+ov.Shed {
		t.Fatalf("sr3_stream_shed_total = %d, want %d", got, ovPre.Shed+ov.Shed)
	}
}

// TestIngestWindowBoundsPending: the spout admission gate keeps the
// in-flight count at or under the window.
func TestIngestWindowBoundsPending(t *testing.T) {
	defer leakcheck.Verify(t)()
	const window = 8
	gate := make(chan struct{})
	g := &gateBolt{gate: gate}
	topo := NewTopology("win")
	tuples := make([]Tuple, 200)
	for i := range tuples {
		tuples[i] = Tuple{Values: []any{i}}
	}
	if err := topo.AddSpout("src", newSliceSpout(tuples)); err != nil {
		t.Fatal(err)
	}
	if err := topo.AddBolt("gate", g, 1).Global("src").Err(); err != nil {
		t.Fatal(err)
	}
	rt, err := NewRuntime(topo, Config{ChannelDepth: 64, IngestWindow: window})
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()
	time.Sleep(30 * time.Millisecond)
	if p := rt.Pending(); p > window {
		t.Fatalf("pending = %d with ingest window %d", p, window)
	}
	close(gate)
	if err := rt.Wait(); err != nil {
		t.Fatal(err)
	}
	if got := rt.Overload().Offered; got != 200 {
		t.Fatalf("offered = %d, want 200 (window must delay, not drop)", got)
	}
}

// TestEmitBlockWaitHistogram: a blocked push lands one sample in the
// emit-block wait histogram.
func TestEmitBlockWaitHistogram(t *testing.T) {
	defer leakcheck.Verify(t)()
	reg := metrics.NewRegistry()
	gate := make(chan struct{})
	g := &gateBolt{gate: gate}
	topo := NewTopology("blk")
	tuples := make([]Tuple, 6) // 1 executing + 4 queued + 1 blocked
	for i := range tuples {
		tuples[i] = Tuple{Values: []any{i}}
	}
	if err := topo.AddSpout("src", newSliceSpout(tuples)); err != nil {
		t.Fatal(err)
	}
	if err := topo.AddBolt("gate", g, 1).Global("src").Err(); err != nil {
		t.Fatal(err)
	}
	rt, err := NewRuntime(topo, Config{ChannelDepth: 4, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()
	time.Sleep(30 * time.Millisecond) // let the pump hit the full queue
	close(gate)
	if err := rt.Wait(); err != nil {
		t.Fatal(err)
	}
	h := reg.Histogram("sr3_stream_emit_block_wait_ns")
	if h.Count() < 1 {
		t.Fatal("no emit-block wait samples recorded")
	}
	if per := reg.Histogram("sr3_stream_task_blk/gate/0_emit_block_wait_ns"); per.Count() < 1 {
		t.Fatal("no per-task emit-block wait samples recorded")
	}
	if reg.Counter("sr3_stream_emit_blocked_ns_total").Value() <= 0 {
		t.Fatal("emit-blocked counter not advanced")
	}
}
