package stream

import (
	"sync"
	"testing"
	"time"

	"sr3/internal/leakcheck"
)

// spinTotalBolt is totalBolt with a busy-wait delay: container timer
// slack turns microsecond sleeps into milliseconds, and the stress test
// needs a precise per-tuple cost to overload a bounded queue without
// stretching the test into seconds.
type spinTotalBolt struct {
	*totalBolt
	spin time.Duration
}

func (b *spinTotalBolt) Execute(t Tuple, emit Emit) error {
	for start := time.Now(); time.Since(start) < b.spin; {
	}
	return b.totalBolt.Execute(t, emit)
}

// TestBatchedCrashMidStreamExactlyOnce is the -race stress test for the
// batched tuple plane: sustained batched ingest from a concurrent
// feeder, a save + crash + recovery in the middle of the stream, and
// then the audits — exactly-once over admitted tuples (recovered state
// counted each admitted tuple exactly once) and the exact
// offered = admitted + shed ledger, with whole frames crossing every
// queue. Run under the blocking policy (no shedding: everything must
// come through) and under shed-oldest at an 8-deep queue (heavy frame
// shedding: the ledger must still balance per tuple).
func TestBatchedCrashMidStreamExactlyOnce(t *testing.T) {
	for _, tc := range []struct {
		name   string
		policy QueuePolicy
		depth  int
		spin   time.Duration
	}{
		{"block", QueueBlock, 64, 2 * time.Microsecond},
		{"shed-oldest", QueueShedOldest, 8, 20 * time.Microsecond},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer leakcheck.Verify(t)()
			const n = 3000
			backend := NewMemoryBackend()
			bolt := &spinTotalBolt{totalBolt: newTotalBolt(0), spin: tc.spin}
			sink := newSeqSetSink()

			sp := newChanSpout()
			topo := NewTopology("bstress")
			if err := topo.AddSpout("src", sp); err != nil {
				t.Fatal(err)
			}
			if err := topo.AddBolt("count", bolt, 1).Global("src").Err(); err != nil {
				t.Fatal(err)
			}
			if err := topo.AddBolt("sink", sink, 1).Global("count").Err(); err != nil {
				t.Fatal(err)
			}
			rt, err := NewRuntime(topo, Config{
				Backend:      backend,
				ChannelDepth: tc.depth,
				QueuePolicy:  tc.policy,
				BatchSize:    32,
				BatchLinger:  200 * time.Microsecond,
			})
			if err != nil {
				t.Fatal(err)
			}
			rt.Start()

			// Feeder goroutine streams the whole sequence while the main
			// goroutine saves, crashes and recovers the stateful task
			// mid-stream — control and data race through the two-lane
			// queues concurrently, with frames in flight everywhere.
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < n; i++ {
					sp.push(Tuple{Values: []any{i}})
					if i%256 == 255 {
						// Light pacing so the stream outlives the control
						// ops below — the crash must land mid-stream.
						time.Sleep(time.Millisecond)
					}
				}
				sp.close()
			}()

			deadline := time.Now().Add(10 * time.Second)
			for bolt.total() < 100 {
				if time.Now().After(deadline) {
					t.Fatalf("bolt never reached 100 executions (total=%d)", bolt.total())
				}
				time.Sleep(time.Millisecond)
			}
			if err := rt.Save("count", 0); err != nil {
				t.Fatal(err)
			}
			if err := rt.Kill("count", 0); err != nil {
				t.Fatal(err)
			}
			// Ingest keeps arriving while dead: frames are logged for
			// replay, never executed live.
			time.Sleep(2 * time.Millisecond)
			if err := rt.RecoverTask("count", 0); err != nil {
				t.Fatal(err)
			}
			wg.Wait()
			if err := rt.Wait(); err != nil {
				t.Fatal(err)
			}

			ov := rt.Overload()
			if ov.Offered != ov.Admitted+ov.Shed {
				t.Fatalf("runtime ledger broken: %d != %d + %d", ov.Offered, ov.Admitted, ov.Shed)
			}
			var countStats, sinkStats TaskOverloadStats
			for _, ts := range ov.Tasks {
				if ts.Offered != ts.Admitted+ts.Shed {
					t.Fatalf("%s ledger broken: %d != %d + %d", ts.Key, ts.Offered, ts.Admitted, ts.Shed)
				}
				if ts.QueueHighWater > ts.QueueCap {
					t.Fatalf("%s: high water %d > cap %d", ts.Key, ts.QueueHighWater, ts.QueueCap)
				}
				switch ts.Key {
				case "bstress/count/0":
					countStats = ts
				case "bstress/sink/0":
					sinkStats = ts
				}
			}
			if countStats.Offered != n {
				t.Fatalf("count offered = %d, want %d (offered must count tuples, not frames)", countStats.Offered, n)
			}
			// Exactly-once over admitted: after rollback + replay, the
			// recovered state reflects each admitted tuple exactly once.
			if got := bolt.total(); got != countStats.Admitted {
				t.Fatalf("state total = %d, admitted = %d", got, countStats.Admitted)
			}
			// The sink's distinct-seq count brackets admitted minus its
			// own sheds (a shed sink frame may hold replay duplicates, so
			// only bounds are exact there).
			distinct := int64(sink.distinct())
			if distinct > countStats.Admitted || distinct < countStats.Admitted-sinkStats.Shed {
				t.Fatalf("sink distinct = %d outside [%d, %d]",
					distinct, countStats.Admitted-sinkStats.Shed, countStats.Admitted)
			}
			if tc.policy == QueueBlock {
				if ov.Shed != 0 {
					t.Fatalf("blocking policy shed %d tuples", ov.Shed)
				}
				if got := bolt.total(); got != n {
					t.Fatalf("state total = %d, want %d (blocking loses nothing)", got, n)
				}
				if distinct != n {
					t.Fatalf("sink distinct = %d, want %d", distinct, n)
				}
			} else if ov.Shed == 0 {
				t.Fatal("shed-oldest at depth 8 under full-rate ingest shed nothing — scenario lost its teeth")
			}
		})
	}
}
