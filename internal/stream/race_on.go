//go:build race

package stream

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = true
