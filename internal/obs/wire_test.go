package obs

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func sampleRecords() []SpanRecord {
	return []SpanRecord{
		{Trace: 1, Span: 1, Parent: 0, Phase: PhaseSelfHeal, Start: 10, End: 500},
		{Trace: 1, Span: 2, Parent: 1, Phase: PhaseDetect, Start: 10, End: 40,
			Attrs: []Attr{{Key: "peer", Str: "n7"}, {Key: "probes", Int: 13}}},
		{Trace: 1, Span: 3, Parent: 1, Phase: PhaseFetch, Start: -5, End: -1,
			Attrs: []Attr{{Key: "err", Str: "timeout", Int: -42}}},
		{Trace: ^uint64(0), Span: ^uint64(0), Parent: ^uint64(0) - 1, Phase: "",
			Start: -1 << 62, End: 1 << 62},
	}
}

// TestWireRoundtrip: encode a batch, decode it back, field-for-field.
func TestWireRoundtrip(t *testing.T) {
	recs := sampleRecords()
	var buf []byte
	for _, r := range recs {
		buf = AppendSpanRecord(buf, r)
	}
	rest := buf
	for i, want := range recs {
		got, r, err := DecodeSpanRecord(rest)
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		rest = r
		if got.Trace != want.Trace || got.Span != want.Span || got.Parent != want.Parent ||
			got.Phase != want.Phase || got.Start != want.Start || got.End != want.End {
			t.Fatalf("record %d header mismatch:\ngot  %+v\nwant %+v", i, got, want)
		}
		if len(got.Attrs) != len(want.Attrs) {
			t.Fatalf("record %d: %d attrs, want %d", i, len(got.Attrs), len(want.Attrs))
		}
		for j := range want.Attrs {
			if got.Attrs[j] != want.Attrs[j] {
				t.Fatalf("record %d attr %d: %+v != %+v", i, j, got.Attrs[j], want.Attrs[j])
			}
		}
	}
	if len(rest) != 0 {
		t.Fatalf("%d trailing bytes after decoding the batch", len(rest))
	}
}

// TestWireTruncation: every prefix of a valid record must decode to a
// clean error, never a panic or a silently-short record.
func TestWireTruncation(t *testing.T) {
	full := AppendSpanRecord(nil, sampleRecords()[1])
	for cut := 0; cut < len(full); cut++ {
		_, _, err := DecodeSpanRecord(full[:cut])
		if err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded without error", cut, len(full))
		}
	}
}

// TestWireVersionAndBounds: bad version and oversized fields must map to
// their sentinel errors.
func TestWireVersionAndBounds(t *testing.T) {
	if _, _, err := DecodeSpanRecord([]byte{99}); !errors.Is(err, ErrWireVersion) {
		t.Fatalf("version 99: %v", err)
	}

	// A phase-length claim beyond maxPhaseLen with enough bytes present
	// must trip the bounds check, not allocate.
	bad := []byte{wireVersion, 1, 1, 0, 255, 255, 3} // uvarint 65535 phase len
	bad = append(bad, bytes.Repeat([]byte{'x'}, 70000)...)
	if _, _, err := DecodeSpanRecord(bad); !errors.Is(err, ErrWireBounds) {
		t.Fatalf("oversized phase: %v", err)
	}

	// Attr count beyond maxWireAttrs likewise.
	rec := AppendSpanRecord(nil, SpanRecord{Trace: 1, Span: 1, Phase: "p"})
	rec = rec[:len(rec)-1]    // drop the nattrs=0 byte
	rec = append(rec, 200, 1) // uvarint 200 attrs
	if _, _, err := DecodeSpanRecord(rec); !errors.Is(err, ErrWireBounds) {
		t.Fatalf("oversized attr count: %v", err)
	}
}

// TestWireEncoderCaps: the encoder itself truncates oversized inputs so
// its output always decodes.
func TestWireEncoderCaps(t *testing.T) {
	huge := SpanRecord{
		Trace: 1, Span: 2, Phase: strings.Repeat("p", maxPhaseLen+100),
		Attrs: make([]Attr, maxWireAttrs+10),
	}
	for i := range huge.Attrs {
		huge.Attrs[i] = Attr{Key: strings.Repeat("k", maxKeyLen+1), Str: strings.Repeat("v", maxStrLen+1)}
	}
	got, rest, err := DecodeSpanRecord(AppendSpanRecord(nil, huge))
	if err != nil {
		t.Fatalf("encoder produced undecodable output: %v", err)
	}
	if len(rest) != 0 {
		t.Fatalf("%d trailing bytes", len(rest))
	}
	if len(got.Phase) != maxPhaseLen || len(got.Attrs) != maxWireAttrs {
		t.Fatalf("caps not applied: phase %d, attrs %d", len(got.Phase), len(got.Attrs))
	}
	if len(got.Attrs[0].Key) != maxKeyLen || len(got.Attrs[0].Str) != maxStrLen {
		t.Fatalf("attr caps not applied: key %d, str %d", len(got.Attrs[0].Key), len(got.Attrs[0].Str))
	}
}

// TestCollectorBinaryRoundtrip: ExportBinary → ImportBinary must move a
// whole collector's spans between processes intact.
func TestCollectorBinaryRoundtrip(t *testing.T) {
	src := NewCollector()
	for _, r := range sampleRecords() {
		src.OnSpan(r)
	}
	dst := NewCollector()
	if err := dst.ImportBinary(src.ExportBinary()); err != nil {
		t.Fatal(err)
	}
	a, b := src.Spans(), dst.Spans()
	if len(a) != len(b) {
		t.Fatalf("span count %d != %d", len(b), len(a))
	}
	for i := range a {
		if a[i].Span != b[i].Span || a[i].Phase != b[i].Phase || len(a[i].Attrs) != len(b[i].Attrs) {
			t.Fatalf("span %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	if err := dst.ImportBinary([]byte{7}); err == nil {
		t.Fatal("garbage import succeeded")
	}
}

// FuzzDecodeSpanRecord: the decoder must never panic, never over-read,
// and anything it accepts must re-encode to something it accepts again.
func FuzzDecodeSpanRecord(f *testing.F) {
	for _, r := range sampleRecords() {
		f.Add(AppendSpanRecord(nil, r))
	}
	f.Add([]byte{})
	f.Add([]byte{wireVersion})
	f.Add([]byte{99, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, rest, err := DecodeSpanRecord(data)
		if err != nil {
			return
		}
		if len(rest) > len(data) {
			t.Fatalf("decoder returned more bytes than it was given")
		}
		if len(rec.Phase) > maxPhaseLen || len(rec.Attrs) > maxWireAttrs {
			t.Fatalf("accepted record exceeds bounds: %+v", rec)
		}
		// Re-encode and re-decode: accepted records are stable.
		again, rest2, err := DecodeSpanRecord(AppendSpanRecord(nil, rec))
		if err != nil {
			t.Fatalf("re-decode of accepted record failed: %v", err)
		}
		if len(rest2) != 0 {
			t.Fatalf("re-encode produced trailing bytes")
		}
		if again.Trace != rec.Trace || again.Span != rec.Span || again.Phase != rec.Phase ||
			again.Start != rec.Start || again.End != rec.End {
			t.Fatalf("re-encode not stable: %+v vs %+v", again, rec)
		}
	})
}
