// Package obs is the observability layer of the SR3 reproduction: a
// lightweight structured tracer whose spans follow one recovery through
// every phase of the pipeline — heartbeat verdict, supervisor enqueue,
// mechanism selection, per-provider fetch, merge, input-log replay,
// re-protection — plus sinks that aggregate span durations into
// per-phase latency histograms (internal/metrics) or stream them as
// JSONL for offline analysis. The paper evaluates SR3 through exactly
// these breakdowns (Figs. 7–12); the tracer is what lets this repo
// produce them for a single live recovery rather than only in aggregate.
//
// Design constraints, in order:
//
//   - Zero overhead when disabled. Every entry point is nil-receiver
//     safe: a nil *Tracer starts a nil *Span, and every *Span method is a
//     nil-check away from returning. Instrumented code carries no
//     conditionals and the disabled path allocates nothing.
//   - Cheap when enabled. Spans are pooled (sync.Pool) and attributes
//     live in a fixed array on the span; the only allocation per span is
//     the record handed to the sink at End.
//   - Deterministic under virtual time. The clock is injectable, and
//     trace/span IDs are sequential per tracer, so a seeded test run
//     produces identical traces.
//   - Distributed. A SpanContext is two uint64s that ride as plain
//     fields on simnet/nettransport messages (no import cycle, and gob
//     omits zero values, so untraced traffic pays nothing on the wire).
//     Remote handlers parent their spans on the inbound context; each
//     process's sink keeps its own records and batches merge by trace ID
//     (see wire.go / Collector.ImportBinary).
package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Phase names for the recovery pipeline. One recovery produces one trace:
// a root PhaseSelfHeal span whose children are the sequential top-level
// phases; fetch/merge/collect/stall spans nest below PhaseRecover.
const (
	// PhaseSelfHeal is the root span of one supervised recovery, opened
	// at the failure-detection timestamp and closed after re-protection —
	// its duration is the MTTR.
	PhaseSelfHeal = "selfheal"
	// PhaseDetect covers the silence window: last heartbeat arrival from
	// the dead peer to the quorum-confirmed verdict.
	PhaseDetect = "detect"
	// PhaseEnqueue covers the verdict sitting in the supervisor's queue.
	PhaseEnqueue = "enqueue"
	// PhasePlan covers mechanism selection (§3.7) and placement planning.
	PhasePlan = "plan"
	// PhaseRecover covers the mechanism run: placement lookup through
	// snapshot assembly.
	PhaseRecover = "recover"
	// PhaseFetch covers one provider fetch (star, or a degraded tail).
	PhaseFetch = "fetch"
	// PhaseCollect covers one remote line/tree stage's contribution.
	PhaseCollect = "collect"
	// PhaseMerge covers merging fetched shard bytes into the snapshot.
	PhaseMerge = "merge"
	// PhaseReplay covers input-log replay after a task restore.
	PhaseReplay = "replay"
	// PhaseSave covers sharding + scattering a snapshot (Save).
	PhaseSave = "save"
	// PhaseReprotect covers restoring the replication factor after the
	// snapshot is rebuilt (re-save or repair).
	PhaseReprotect = "reprotect"
	// PhaseStall covers a sender blocked on the data plane's credit
	// window (chunked raw-body streaming, nettransport).
	PhaseStall = "stall"
	// PhaseAdopt covers one control-plane adoption round trip: adopt RPC
	// issued to ACK received (the adopter's recover/fetch/replay spans
	// nest below it, on the adopter's tracer).
	PhaseAdopt = "adopt"
	// PhaseFlow covers replayed recovery output crossing a process
	// boundary: the ingress node records it retroactively when the first
	// traced batch frame of a connection arrives.
	PhaseFlow = "flow"
)

// SpanContext identifies a span within a trace. The zero value is
// invalid; contexts travel across nodes as two plain uint64 fields.
type SpanContext struct {
	Trace uint64
	Span  uint64
}

// Valid reports whether the context names a real trace.
func (c SpanContext) Valid() bool { return c.Trace != 0 }

// Attr is one key/value annotation on a span. Exactly one of Str/Int is
// meaningful per attribute; Str == "" means the value is Int.
type Attr struct {
	Key string
	Str string
	Int int64
}

// Str builds a string attribute.
func Str(k, v string) Attr { return Attr{Key: k, Str: v} }

// Int builds an integer attribute.
func Int(k string, v int64) Attr { return Attr{Key: k, Int: v} }

// maxAttrs bounds per-span annotations; extras are dropped (spans are a
// phase-accounting tool, not a logging firehose).
const maxAttrs = 8

// SpanRecord is one finished span as handed to sinks. Start/End are
// nanoseconds on the tracer's clock (UnixNano for the default wall
// clock; whatever the injected clock yields under virtual time).
type SpanRecord struct {
	Trace  uint64
	Span   uint64
	Parent uint64
	Phase  string
	Start  int64
	End    int64
	Attrs  []Attr
}

// Duration returns the span's length in nanoseconds.
func (r SpanRecord) Duration() int64 { return r.End - r.Start }

// Sink receives finished spans. OnSpan must be safe for concurrent calls
// and must not retain rec.Attrs beyond the call only if it mutates them
// (the slice is owned by the record).
type Sink interface {
	OnSpan(rec SpanRecord)
}

// Tracer allocates spans and routes finished records to its sink. A nil
// *Tracer is the disabled tracer: all methods no-op and allocate nothing.
type Tracer struct {
	sink   Sink
	now    func() time.Time
	nextID atomic.Uint64
	pool   sync.Pool
}

// Option configures a tracer.
type Option func(*Tracer)

// WithClock injects the tracer's clock — the simnet virtual clock, or a
// deterministic step clock in tests. Default: time.Now.
func WithClock(now func() time.Time) Option {
	return func(t *Tracer) { t.now = now }
}

// WithIDBase seeds the tracer's sequential ID counter. IDs stay
// sequential (deterministic per tracer) but start above base, so tracers
// in different processes minting IDs for the same distributed trace
// cannot collide when every process derives its base from its own stable
// identity (IDBase).
func WithIDBase(base uint64) Option {
	return func(t *Tracer) { t.nextID.Store(base) }
}

// IDBase derives a node-unique ID base from a stable name: an FNV-1a
// hash placed in the top 32 bits, leaving 2^32 sequential span IDs per
// process lifetime. Distinct names yield disjoint ID ranges (modulo hash
// collisions, irrelevant at cluster scale), which is what keeps a trace
// stitched from several processes' collectors free of span-ID clashes.
func IDBase(name string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= prime64
	}
	base := (h & 0xFFFFFFFF) << 32
	if base == 0 {
		base = 1 << 32 // never collide with the default tracer's 1,2,3…
	}
	return base
}

// New builds a tracer feeding the given sink (nil sink discards records).
func New(sink Sink, opts ...Option) *Tracer {
	t := &Tracer{sink: sink, now: time.Now}
	t.pool.New = func() any { return new(Span) }
	for _, o := range opts {
		o(t)
	}
	return t
}

// Enabled reports whether spans are being recorded.
func (t *Tracer) Enabled() bool { return t != nil }

// Now returns the tracer's current clock reading (zero time when
// disabled).
func (t *Tracer) Now() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.now()
}

// id mints the next sequential span/trace ID (deterministic per tracer).
func (t *Tracer) id() uint64 { return t.nextID.Add(1) }

// NewRootContext pre-allocates the identity of a root span without
// starting it. The failure detector uses this to stamp a verdict with a
// trace the supervisor later adopts via StartRootAt — so the silence
// window and the recovery land in one connected trace even though they
// are observed by different components.
func (t *Tracer) NewRootContext() SpanContext {
	if t == nil {
		return SpanContext{}
	}
	n := t.id()
	return SpanContext{Trace: n, Span: n}
}

// StartRoot opens a new trace with a root span.
func (t *Tracer) StartRoot(phase string) *Span {
	if t == nil {
		return nil
	}
	return t.start(t.NewRootContext(), 0, phase, t.now())
}

// StartRootAt opens the root span of a pre-allocated trace context (see
// NewRootContext) with an explicit start time — typically the verdict's
// detection timestamp, so the root's duration is the MTTR.
func (t *Tracer) StartRootAt(ctx SpanContext, phase string, start time.Time) *Span {
	if t == nil || !ctx.Valid() {
		return nil
	}
	return t.start(ctx, 0, phase, start)
}

// StartSpan opens a child span under parent. An invalid parent starts a
// new trace (so instrumented library code works without a caller trace).
func (t *Tracer) StartSpan(parent SpanContext, phase string) *Span {
	if t == nil {
		return nil
	}
	if !parent.Valid() {
		return t.StartRoot(phase)
	}
	return t.start(SpanContext{Trace: parent.Trace, Span: t.id()}, parent.Span, phase, t.now())
}

func (t *Tracer) start(ctx SpanContext, parent uint64, phase string, start time.Time) *Span {
	s := t.pool.Get().(*Span)
	s.t = t
	s.ctx = ctx
	s.parent = parent
	s.phase = phase
	s.start = start.UnixNano()
	s.nattrs = 0
	return s
}

// RecordSpan emits a completed span retroactively — for phases measured
// after the fact (the detect silence window, a credit-window stall) where
// holding an open span through the hot path would cost more than the
// measurement. Returns the new span's context so children can parent on
// it. attrs beyond the per-span cap are dropped.
func (t *Tracer) RecordSpan(parent SpanContext, phase string, start, end time.Time, attrs ...Attr) SpanContext {
	if t == nil {
		return SpanContext{}
	}
	ctx := SpanContext{Trace: parent.Trace, Span: t.id()}
	var parentID uint64
	if parent.Valid() {
		parentID = parent.Span
	} else {
		ctx.Trace = ctx.Span
	}
	if len(attrs) > maxAttrs {
		attrs = attrs[:maxAttrs]
	}
	rec := SpanRecord{
		Trace:  ctx.Trace,
		Span:   ctx.Span,
		Parent: parentID,
		Phase:  phase,
		Start:  start.UnixNano(),
		End:    end.UnixNano(),
	}
	if len(attrs) > 0 {
		rec.Attrs = append([]Attr(nil), attrs...)
	}
	if t.sink != nil {
		t.sink.OnSpan(rec)
	}
	return ctx
}

// Span is one in-progress phase. A nil *Span (from a disabled tracer) is
// safe to annotate and End.
type Span struct {
	t      *Tracer
	ctx    SpanContext
	parent uint64
	phase  string
	start  int64
	attrs  [maxAttrs]Attr
	nattrs int
}

// Ctx returns the span's context (zero when disabled) for parenting
// children or stamping outbound messages.
func (s *Span) Ctx() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return s.ctx
}

// SetAttr annotates the span; attributes beyond the cap are dropped.
func (s *Span) SetAttr(a Attr) {
	if s == nil || s.nattrs >= maxAttrs {
		return
	}
	s.attrs[s.nattrs] = a
	s.nattrs++
}

// SetStr annotates the span with a string value.
func (s *Span) SetStr(k, v string) { s.SetAttr(Str(k, v)) }

// SetInt annotates the span with an integer value.
func (s *Span) SetInt(k string, v int64) { s.SetAttr(Int(k, v)) }

// End closes the span, hands the record to the sink and recycles the
// span. The span must not be used afterwards.
func (s *Span) End() {
	if s == nil {
		return
	}
	t := s.t
	rec := SpanRecord{
		Trace:  s.ctx.Trace,
		Span:   s.ctx.Span,
		Parent: s.parent,
		Phase:  s.phase,
		Start:  s.start,
		End:    t.now().UnixNano(),
	}
	if s.nattrs > 0 {
		rec.Attrs = append([]Attr(nil), s.attrs[:s.nattrs]...)
	}
	s.t = nil
	t.pool.Put(s)
	if t.sink != nil {
		t.sink.OnSpan(rec)
	}
}

// EndErr closes the span, recording err (if non-nil) as an "err"
// attribute first.
func (s *Span) EndErr(err error) {
	if s == nil {
		return
	}
	if err != nil {
		s.SetStr("err", err.Error())
	}
	s.End()
}

// StepClock returns a deterministic clock for tests: each call advances
// the returned time by step, starting at start. It is safe for
// concurrent use.
func StepClock(start time.Time, step time.Duration) func() time.Time {
	var mu sync.Mutex
	t := start
	return func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		t = t.Add(step)
		return t
	}
}
