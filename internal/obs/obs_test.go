package obs

import (
	"strings"
	"sync"
	"testing"
	"time"

	"sr3/internal/metrics"
)

func stepTracer() (*Tracer, *Collector) {
	c := NewCollector()
	return New(c, WithClock(StepClock(time.Unix(100, 0), time.Millisecond))), c
}

// TestSpanNesting: a root with two children must produce records with
// correct trace/parent links and clock-ordered bounds.
func TestSpanNesting(t *testing.T) {
	tr, c := stepTracer()
	root := tr.StartRoot(PhaseSelfHeal)
	rootCtx := root.Ctx()
	if !rootCtx.Valid() || rootCtx.Trace != rootCtx.Span {
		t.Fatalf("root ctx = %+v", rootCtx)
	}
	child := tr.StartSpan(rootCtx, PhaseRecover)
	grand := tr.StartSpan(child.Ctx(), PhaseFetch)
	grand.End()
	child.End()
	root.End()

	spans := c.Trace(rootCtx.Trace)
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	byPhase := map[string]SpanRecord{}
	for _, s := range spans {
		byPhase[s.Phase] = s
	}
	if byPhase[PhaseRecover].Parent != rootCtx.Span {
		t.Fatalf("recover parent = %d, want %d", byPhase[PhaseRecover].Parent, rootCtx.Span)
	}
	if byPhase[PhaseFetch].Parent != byPhase[PhaseRecover].Span {
		t.Fatal("fetch not parented on recover")
	}
	if byPhase[PhaseSelfHeal].Parent != 0 {
		t.Fatal("root has a parent")
	}
	for _, s := range spans {
		if s.End < s.Start {
			t.Fatalf("%s ends before start", s.Phase)
		}
	}
	if byPhase[PhaseFetch].End > byPhase[PhaseRecover].End || byPhase[PhaseRecover].End > byPhase[PhaseSelfHeal].End {
		t.Fatal("LIFO end order violated under step clock")
	}
}

// TestStartSpanWithoutParent: an invalid parent starts a fresh trace —
// instrumented library code must work without a caller trace.
func TestStartSpanWithoutParent(t *testing.T) {
	tr, c := stepTracer()
	sp := tr.StartSpan(SpanContext{}, PhaseSave)
	ctx := sp.Ctx()
	sp.End()
	if !ctx.Valid() || ctx.Trace != ctx.Span {
		t.Fatalf("orphan span ctx = %+v, want fresh root", ctx)
	}
	if got := c.Trace(ctx.Trace); len(got) != 1 || got[0].Parent != 0 {
		t.Fatalf("orphan trace = %+v", got)
	}
}

// TestRecordSpanRetroactive: after-the-fact spans must carry the given
// bounds and attach to the parent; with an invalid parent they root a
// new trace.
func TestRecordSpanRetroactive(t *testing.T) {
	tr, c := stepTracer()
	parent := tr.NewRootContext()
	start := time.Unix(50, 0)
	end := time.Unix(60, 0)
	ctx := tr.RecordSpan(parent, PhaseDetect, start, end, Str("peer", "n1"), Int("probes", 7))
	if ctx.Trace != parent.Trace {
		t.Fatal("retroactive span escaped the parent trace")
	}
	spans := c.Trace(parent.Trace)
	if len(spans) != 1 {
		t.Fatalf("got %d spans", len(spans))
	}
	s := spans[0]
	if s.Start != start.UnixNano() || s.End != end.UnixNano() {
		t.Fatalf("bounds [%d,%d]", s.Start, s.End)
	}
	if s.Parent != parent.Span || len(s.Attrs) != 2 {
		t.Fatalf("record = %+v", s)
	}

	rootless := tr.RecordSpan(SpanContext{}, PhaseStall, start, end)
	if !rootless.Valid() || rootless.Trace != rootless.Span {
		t.Fatalf("rootless retroactive ctx = %+v", rootless)
	}
}

// TestNewRootContextEmitsNothing: pre-allocating a root identity (the
// detector's verdict stamp) must not emit records — unadopted verdicts
// leave no orphan spans.
func TestNewRootContextEmitsNothing(t *testing.T) {
	tr, c := stepTracer()
	for i := 0; i < 5; i++ {
		if ctx := tr.NewRootContext(); !ctx.Valid() {
			t.Fatal("invalid pre-allocated context")
		}
	}
	if got := c.Spans(); len(got) != 0 {
		t.Fatalf("pre-allocation emitted %d spans", len(got))
	}
}

// TestAttrCapAndOverflow: the 9th attribute drops silently; the record
// keeps the first 8.
func TestAttrCapAndOverflow(t *testing.T) {
	tr, c := stepTracer()
	sp := tr.StartRoot(PhasePlan)
	for i := 0; i < maxAttrs+3; i++ {
		sp.SetInt("k", int64(i))
	}
	sp.End()
	if got := c.Spans()[0].Attrs; len(got) != maxAttrs {
		t.Fatalf("kept %d attrs, want %d", len(got), maxAttrs)
	}
}

// TestDisabledTracerIsFreeAndSafe: the nil tracer must no-op through
// every entry point without allocating.
func TestDisabledTracerIsFreeAndSafe(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer claims enabled")
	}
	allocs := testing.AllocsPerRun(1000, func() {
		sp := tr.StartSpan(SpanContext{Trace: 9, Span: 9}, PhaseFetch)
		sp.SetStr("k", "v")
		sp.SetInt("n", 1)
		sp.End()
		tr.RecordSpan(SpanContext{}, PhaseStall, time.Time{}, time.Time{})
		tr.StartRoot(PhaseSelfHeal).EndErr(nil)
		tr.StartRootAt(SpanContext{Trace: 1, Span: 1}, PhaseSelfHeal, time.Time{}).End()
		if tr.NewRootContext().Valid() {
			t.Fatal("nil tracer minted a context")
		}
		if !tr.Now().IsZero() {
			t.Fatal("nil tracer has a clock")
		}
	})
	if allocs != 0 {
		t.Fatalf("disabled path allocates %v per op", allocs)
	}
}

// TestSpanPooling: ended spans must be recycled — steady-state tracing
// allocates only the record, not the span.
func TestSpanPooling(t *testing.T) {
	tr := New(nil) // nil sink: records are discarded, isolating span cost
	// Warm the pool.
	for i := 0; i < 100; i++ {
		tr.StartRoot(PhaseFetch).End()
	}
	allocs := testing.AllocsPerRun(1000, func() {
		sp := tr.StartRoot(PhaseFetch)
		sp.SetInt("i", 1)
		sp.End()
	})
	// One span cycle may still allocate the pooled span occasionally (GC
	// can clear sync.Pool), but steady state must stay near zero.
	if allocs > 1 {
		t.Fatalf("enabled span cycle allocates %v, want ≤1", allocs)
	}
}

// TestEndErr records the error as an attribute; a nil error adds none.
func TestEndErr(t *testing.T) {
	tr, c := stepTracer()
	tr.StartRoot(PhaseRecover).EndErr(errFake{})
	tr.StartRoot(PhaseRecover).EndErr(nil)
	spans := c.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans", len(spans))
	}
	if len(spans[0].Attrs) != 1 || spans[0].Attrs[0].Key != "err" || spans[0].Attrs[0].Str != "fake failure" {
		t.Fatalf("err attr = %+v", spans[0].Attrs)
	}
	if len(spans[1].Attrs) != 0 {
		t.Fatal("nil error recorded an attribute")
	}
}

type errFake struct{}

func (errFake) Error() string { return "fake failure" }

// TestConcurrentSpans: concurrent starts/ends across goroutines must
// yield unique span IDs and no lost records (run with -race).
func TestConcurrentSpans(t *testing.T) {
	tr, c := stepTracer()
	root := tr.StartRoot(PhaseSelfHeal)
	const workers = 8
	const perWorker = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				sp := tr.StartSpan(root.Ctx(), PhaseFetch)
				sp.SetInt("i", int64(i))
				sp.End()
			}
		}()
	}
	wg.Wait()
	root.End()
	spans := c.Spans()
	if len(spans) != workers*perWorker+1 {
		t.Fatalf("got %d spans, want %d", len(spans), workers*perWorker+1)
	}
	seen := make(map[uint64]bool, len(spans))
	for _, s := range spans {
		if seen[s.Span] {
			t.Fatalf("duplicate span ID %d", s.Span)
		}
		seen[s.Span] = true
	}
}

// TestCollectorPhaseTotalsAndTraceFiltering: totals must sum per phase
// within one trace only, and Trace must sort deterministically.
func TestCollectorPhaseTotalsAndTraceFiltering(t *testing.T) {
	tr, c := stepTracer()
	a := tr.StartRoot(PhaseSelfHeal)
	aCtx := a.Ctx() // capture before End: ended spans are pooled and reused
	tr.RecordSpan(aCtx, PhaseFetch, time.Unix(1, 0), time.Unix(2, 0))
	tr.RecordSpan(aCtx, PhaseFetch, time.Unix(2, 0), time.Unix(4, 0))
	a.End()
	b := tr.StartRoot(PhaseSelfHeal)
	tr.RecordSpan(b.Ctx(), PhaseFetch, time.Unix(1, 0), time.Unix(10, 0))
	b.End()

	totals := c.PhaseTotals(aCtx.Trace)
	if got := totals[PhaseFetch]; got != int64(3*time.Second) {
		t.Fatalf("trace-a fetch total = %d", got)
	}
	if ids := c.TraceIDs(); len(ids) != 2 {
		t.Fatalf("TraceIDs = %v", ids)
	}
	spans := c.Trace(aCtx.Trace)
	for i := 1; i < len(spans); i++ {
		if spans[i].Start < spans[i-1].Start {
			t.Fatal("Trace not sorted by start")
		}
	}
	c.Reset()
	if len(c.Spans()) != 0 {
		t.Fatal("Reset left spans behind")
	}
}

// TestJSONLSink: one line per span, stable field names, attrs preserved.
func TestJSONLSink(t *testing.T) {
	var buf strings.Builder
	sink := NewJSONLSink(&buf)
	tr := New(sink, WithClock(StepClock(time.Unix(5, 0), time.Millisecond)))
	sp := tr.StartRoot(PhaseRecover)
	sp.SetStr("app", "wc")
	sp.End()
	tr.RecordSpan(SpanContext{}, PhaseStall, time.Unix(1, 0), time.Unix(2, 0), Int("ns", 42))
	if err := sink.Err(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines", len(lines))
	}
	if !strings.Contains(lines[0], `"phase":"recover"`) || !strings.Contains(lines[0], `"k":"app"`) {
		t.Fatalf("line 0 = %s", lines[0])
	}
	if !strings.Contains(lines[1], `"phase":"stall"`) {
		t.Fatalf("line 1 = %s", lines[1])
	}
}

// TestMetricsSinkAggregates: spans land in per-phase histograms and
// counters under the default prefix.
func TestMetricsSinkAggregates(t *testing.T) {
	reg := metrics.NewRegistry()
	sink := NewMetricsSink(reg, "")
	tr := New(sink, WithClock(StepClock(time.Unix(9, 0), time.Millisecond)))
	for i := 0; i < 3; i++ {
		tr.StartRoot(PhaseFetch).End()
	}
	h := reg.Histogram("sr3_phase_fetch_ns")
	if h.Count() != 3 {
		t.Fatalf("histogram count = %d", h.Count())
	}
	if got := reg.Counter("sr3_phase_fetch_total").Value(); got != 3 {
		t.Fatalf("counter = %d", got)
	}
	// Step clock: every span is exactly one tick long.
	if h.Min() != int64(time.Millisecond) || h.Max() != int64(time.Millisecond) {
		t.Fatalf("span durations min=%d max=%d", h.Min(), h.Max())
	}
}

// TestMultiSinkFanOut: every non-nil sink sees every span; nil entries
// are skipped.
func TestMultiSinkFanOut(t *testing.T) {
	a, b := NewCollector(), NewCollector()
	tr := New(MultiSink{a, nil, b})
	tr.StartRoot(PhasePlan).End()
	if len(a.Spans()) != 1 || len(b.Spans()) != 1 {
		t.Fatalf("fan-out missed a sink: %d/%d", len(a.Spans()), len(b.Spans()))
	}
}

// TestStepClockMonotonic: the virtual clock must advance exactly one
// step per reading, under concurrency too.
func TestStepClockMonotonic(t *testing.T) {
	clock := StepClock(time.Unix(0, 0), time.Second)
	if got := clock(); !got.Equal(time.Unix(1, 0)) {
		t.Fatalf("first tick = %v", got)
	}
	var wg sync.WaitGroup
	const n = 100
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() { defer wg.Done(); clock() }()
	}
	wg.Wait()
	if got := clock(); !got.Equal(time.Unix(n+2, 0)) {
		t.Fatalf("after %d concurrent ticks: %v", n, got)
	}
}

// BenchmarkDisabledSpan documents the nil-tracer cost at every
// instrumentation point: it must stay at 0 allocs/op (asserted by
// TestDisabledTracerIsFreeAndSafe) and single-digit ns.
func BenchmarkDisabledSpan(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.StartSpan(SpanContext{Trace: 1, Span: 1}, PhaseFetch)
		sp.SetInt("n", int64(i))
		sp.End()
	}
}

// BenchmarkEnabledSpan is the reference cost of a pooled span cycle into
// a discarding sink.
func BenchmarkEnabledSpan(b *testing.B) {
	tr := New(nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.StartRoot(PhaseFetch)
		sp.SetInt("n", int64(i))
		sp.End()
	}
}
