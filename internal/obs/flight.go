package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Flight-recorder event kinds. The recorder is a coarse journal of
// cluster-level happenings — topology lifecycle, failure verdicts,
// membership churn, recovery outcomes — not a per-tuple trace; per-tuple
// and per-phase detail lives in the Tracer.
const (
	FlightTopologyStart = "topology.start"
	FlightTopologyStop  = "topology.stop"
	FlightTaskKill      = "task.kill"
	FlightTaskRecover   = "task.recover"
	FlightVerdict       = "verdict"
	FlightChurn         = "churn"
	FlightRecoveryOK    = "recovery.ok"
	FlightRecoveryFail  = "recovery.fail"
	FlightDumpMark      = "dump"
	// Gray-failure tier transitions (supervise escalation policy): a
	// peer suspected by φ, classified slow-but-alive, back to healthy,
	// or escalated to a kill verdict after degrading too long. Detail
	// carries the detector's cause note so PostMortem explains why a
	// node was demoted rather than killed.
	FlightSuspected    = "gray.suspected"
	FlightDegraded     = "gray.degraded"
	FlightDegradeClear = "gray.clear"
	FlightEscalated    = "gray.escalated"
	// Overload-control transitions: the stream runtime entering/leaving
	// degraded-service shed mode (Detail carries the reason and, on
	// stop, the exact offered/shed accounting), and a transport circuit
	// breaker opening/closing toward a peer (retries suppressed). These
	// are what lets PostMortem explain *why* tuples were shed or a peer
	// stopped being retried.
	FlightShedStart    = "overload.shed_start"
	FlightShedStop     = "overload.shed_stop"
	FlightBreakerOpen  = "overload.breaker_open"
	FlightBreakerClose = "overload.breaker_close"
)

// FlightEvent is one journal entry. Fields are flat strings so a dump is
// greppable as JSONL without a schema.
type FlightEvent struct {
	Seq    uint64 `json:"seq"`
	At     int64  `json:"at"` // unix nanoseconds
	Kind   string `json:"kind"`
	Node   string `json:"node,omitempty"`
	App    string `json:"app,omitempty"`
	Detail string `json:"detail,omitempty"`
	Err    string `json:"err,omitempty"`
}

// FlightRecorder is an always-on bounded ring buffer of FlightEvents.
// Recording is cheap (a mutex and a slot write, no allocation beyond the
// strings the caller already built), so it stays enabled in production;
// when something goes wrong the last N events are the post-mortem. A nil
// recorder is valid and records nothing, matching the Tracer's
// nil-receiver discipline.
type FlightRecorder struct {
	mu      sync.Mutex
	buf     []FlightEvent
	next    uint64 // total events ever recorded; buf slot is next % cap
	dropped uint64
	now     func() time.Time
}

// DefaultFlightCap is the ring size used when NewFlightRecorder is given
// a non-positive capacity: enough to span a multi-failure incident, small
// enough to be dumped whole into a log line budget.
const DefaultFlightCap = 1024

// NewFlightRecorder returns a recorder holding the last capacity events.
func NewFlightRecorder(capacity int) *FlightRecorder {
	if capacity <= 0 {
		capacity = DefaultFlightCap
	}
	return &FlightRecorder{buf: make([]FlightEvent, 0, capacity), now: time.Now}
}

// SetClock swaps the timestamp source (deterministic tests).
func (f *FlightRecorder) SetClock(now func() time.Time) {
	if f == nil || now == nil {
		return
	}
	f.mu.Lock()
	f.now = now
	f.mu.Unlock()
}

// Note records an event built from the common fields. err may be nil.
func (f *FlightRecorder) Note(kind, node, app, detail string, err error) {
	if f == nil {
		return
	}
	ev := FlightEvent{Kind: kind, Node: node, App: app, Detail: detail}
	if err != nil {
		ev.Err = err.Error()
	}
	f.Add(ev)
}

// Add records an event, stamping Seq and At. Oldest events are
// overwritten once the ring is full.
func (f *FlightRecorder) Add(ev FlightEvent) {
	if f == nil {
		return
	}
	f.mu.Lock()
	ev.Seq = f.next
	ev.At = f.now().UnixNano()
	if len(f.buf) < cap(f.buf) {
		f.buf = append(f.buf, ev)
	} else {
		f.buf[f.next%uint64(cap(f.buf))] = ev
		f.dropped++
	}
	f.next++
	f.mu.Unlock()
}

// Len reports how many events are currently held (≤ capacity).
func (f *FlightRecorder) Len() int {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.buf)
}

// Total reports how many events were ever recorded.
func (f *FlightRecorder) Total() uint64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.next
}

// Dropped reports how many events were overwritten by wraparound.
func (f *FlightRecorder) Dropped() uint64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.dropped
}

// Events returns the held events oldest-first.
func (f *FlightRecorder) Events() []FlightEvent {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]FlightEvent, 0, len(f.buf))
	if len(f.buf) < cap(f.buf) {
		out = append(out, f.buf...)
		return out
	}
	// Full ring: the oldest event sits at the overwrite cursor.
	start := int(f.next % uint64(cap(f.buf)))
	out = append(out, f.buf[start:]...)
	out = append(out, f.buf[:start]...)
	return out
}

// WriteJSON dumps the journal oldest-first as JSON lines — the
// post-mortem format the supervisor emits on a failure verdict.
func (f *FlightRecorder) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, ev := range f.Events() {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	return nil
}
