package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func flightClock() func() time.Time {
	var mu sync.Mutex
	t := time.Unix(1000, 0)
	return func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		t = t.Add(time.Millisecond)
		return t
	}
}

// TestFlightRecorderBasics: sequencing, timestamps, Note error capture.
func TestFlightRecorderBasics(t *testing.T) {
	f := NewFlightRecorder(8)
	f.SetClock(flightClock())
	f.Note(FlightVerdict, "n1", "app", "owner died", nil)
	f.Note(FlightRecoveryFail, "n1", "app", "", fmt.Errorf("boom"))

	evs := f.Events()
	if len(evs) != 2 || f.Len() != 2 || f.Total() != 2 || f.Dropped() != 0 {
		t.Fatalf("evs=%d len=%d total=%d dropped=%d", len(evs), f.Len(), f.Total(), f.Dropped())
	}
	if evs[0].Seq != 0 || evs[1].Seq != 1 {
		t.Fatalf("seqs = %d,%d", evs[0].Seq, evs[1].Seq)
	}
	if evs[0].Kind != FlightVerdict || evs[0].Node != "n1" || evs[0].Detail != "owner died" {
		t.Fatalf("event 0 = %+v", evs[0])
	}
	if evs[1].Err != "boom" {
		t.Fatalf("Note dropped the error: %+v", evs[1])
	}
	if evs[1].At <= evs[0].At {
		t.Fatalf("timestamps not advancing: %d then %d", evs[0].At, evs[1].At)
	}
}

// TestFlightRecorderWrap: the ring keeps the newest capacity events,
// oldest-first ordering survives wraparound, Dropped counts overwrites.
func TestFlightRecorderWrap(t *testing.T) {
	f := NewFlightRecorder(4)
	f.SetClock(flightClock())
	for i := 0; i < 10; i++ {
		f.Add(FlightEvent{Kind: FlightChurn, Detail: fmt.Sprintf("ev%d", i)})
	}
	evs := f.Events()
	if len(evs) != 4 {
		t.Fatalf("len = %d, want 4", len(evs))
	}
	for i, ev := range evs {
		want := fmt.Sprintf("ev%d", 6+i)
		if ev.Detail != want || ev.Seq != uint64(6+i) {
			t.Fatalf("event %d = %+v, want detail %s", i, ev, want)
		}
	}
	if f.Dropped() != 6 || f.Total() != 10 {
		t.Fatalf("dropped=%d total=%d, want 6/10", f.Dropped(), f.Total())
	}
}

// TestFlightRecorderNil: every method is a safe no-op on nil.
func TestFlightRecorderNil(t *testing.T) {
	var f *FlightRecorder
	f.Note(FlightVerdict, "n", "a", "d", nil)
	f.Add(FlightEvent{})
	f.SetClock(time.Now)
	if f.Len() != 0 || f.Total() != 0 || f.Dropped() != 0 || f.Events() != nil {
		t.Fatal("nil recorder not inert")
	}
	var b strings.Builder
	if err := f.WriteJSON(&b); err != nil || b.Len() != 0 {
		t.Fatalf("nil WriteJSON: err=%v out=%q", err, b.String())
	}
}

// TestFlightWriteJSON: the dump is parseable JSONL, oldest-first.
func TestFlightWriteJSON(t *testing.T) {
	f := NewFlightRecorder(4)
	f.SetClock(flightClock())
	f.Note(FlightTopologyStart, "", "wordcount", "tasks=4", nil)
	f.Note(FlightVerdict, "n2", "wordcount", "", nil)

	var b strings.Builder
	if err := f.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(strings.NewReader(b.String()))
	var got []FlightEvent
	for sc.Scan() {
		var ev FlightEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		got = append(got, ev)
	}
	if len(got) != 2 || got[0].Kind != FlightTopologyStart || got[1].Node != "n2" {
		t.Fatalf("dump = %+v", got)
	}
}

// TestFlightRecorderConcurrent: concurrent Add/Events/WriteJSON must be
// race-free (run under -race) and lose nothing.
func TestFlightRecorderConcurrent(t *testing.T) {
	f := NewFlightRecorder(64)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				f.Note(FlightChurn, fmt.Sprintf("n%d", g), "", "", nil)
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			_ = f.Events()
			var b strings.Builder
			_ = f.WriteJSON(&b)
		}
	}()
	wg.Wait()
	if f.Total() != 400 {
		t.Fatalf("total = %d, want 400", f.Total())
	}
	if f.Len() != 64 {
		t.Fatalf("len = %d, want 64", f.Len())
	}
}
