package obs

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Binary span-record wire format, for shipping trace batches between
// processes (a remote node's Collector.ExportBinary → the central
// collector's ImportBinary). One record is:
//
//	uvarint version (currently 1)
//	uvarint trace, span, parent
//	uvarint len(phase) + phase bytes
//	varint  start, end (nanoseconds)
//	uvarint nattrs, then per attr:
//	    uvarint len(key) + key bytes
//	    uvarint len(str) + str bytes
//	    varint  int
//
// Records concatenate into a batch with no framing beyond their own
// self-description. The decoder is defensive — every length is bounded
// before allocation — because batches cross process boundaries; the fuzz
// test (wire_fuzz_test.go) hammers exactly that property.

const (
	wireVersion = 1
	// maxPhaseLen / maxKeyLen / maxStrLen bound decoded strings; real
	// phases and keys are short identifiers, values are error strings.
	maxPhaseLen = 256
	maxKeyLen   = 256
	maxStrLen   = 4096
	// maxWireAttrs bounds a record's attribute count (encoders cap at
	// maxAttrs; the margin tolerates future growth without a version bump).
	maxWireAttrs = 64
)

// Wire decode errors.
var (
	ErrWireTruncated = errors.New("obs: truncated span record")
	ErrWireVersion   = errors.New("obs: unsupported span record version")
	ErrWireBounds    = errors.New("obs: span record field exceeds bounds")
)

// AppendSpanRecord appends rec's encoding to buf and returns the result.
func AppendSpanRecord(buf []byte, rec SpanRecord) []byte {
	buf = binary.AppendUvarint(buf, wireVersion)
	buf = binary.AppendUvarint(buf, rec.Trace)
	buf = binary.AppendUvarint(buf, rec.Span)
	buf = binary.AppendUvarint(buf, rec.Parent)
	buf = appendString(buf, rec.Phase, maxPhaseLen)
	buf = binary.AppendVarint(buf, rec.Start)
	buf = binary.AppendVarint(buf, rec.End)
	n := len(rec.Attrs)
	if n > maxWireAttrs {
		n = maxWireAttrs
	}
	buf = binary.AppendUvarint(buf, uint64(n))
	for _, a := range rec.Attrs[:n] {
		buf = appendString(buf, a.Key, maxKeyLen)
		buf = appendString(buf, a.Str, maxStrLen)
		buf = binary.AppendVarint(buf, a.Int)
	}
	return buf
}

func appendString(buf []byte, s string, max int) []byte {
	if len(s) > max {
		s = s[:max]
	}
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// DecodeSpanRecord decodes one record from the front of b, returning the
// record and the remaining bytes.
func DecodeSpanRecord(b []byte) (SpanRecord, []byte, error) {
	var rec SpanRecord
	ver, b, err := readUvarint(b)
	if err != nil {
		return rec, nil, err
	}
	if ver != wireVersion {
		return rec, nil, fmt.Errorf("%w: %d", ErrWireVersion, ver)
	}
	if rec.Trace, b, err = readUvarint(b); err != nil {
		return rec, nil, err
	}
	if rec.Span, b, err = readUvarint(b); err != nil {
		return rec, nil, err
	}
	if rec.Parent, b, err = readUvarint(b); err != nil {
		return rec, nil, err
	}
	if rec.Phase, b, err = readString(b, maxPhaseLen); err != nil {
		return rec, nil, err
	}
	if rec.Start, b, err = readVarint(b); err != nil {
		return rec, nil, err
	}
	if rec.End, b, err = readVarint(b); err != nil {
		return rec, nil, err
	}
	nattrs, b, err := readUvarint(b)
	if err != nil {
		return rec, nil, err
	}
	if nattrs > maxWireAttrs {
		return rec, nil, fmt.Errorf("%w: %d attrs", ErrWireBounds, nattrs)
	}
	if nattrs > 0 {
		rec.Attrs = make([]Attr, 0, nattrs)
		for i := uint64(0); i < nattrs; i++ {
			var a Attr
			if a.Key, b, err = readString(b, maxKeyLen); err != nil {
				return rec, nil, err
			}
			if a.Str, b, err = readString(b, maxStrLen); err != nil {
				return rec, nil, err
			}
			if a.Int, b, err = readVarint(b); err != nil {
				return rec, nil, err
			}
			rec.Attrs = append(rec.Attrs, a)
		}
	}
	return rec, b, nil
}

func readUvarint(b []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, ErrWireTruncated
	}
	return v, b[n:], nil
}

func readVarint(b []byte) (int64, []byte, error) {
	v, n := binary.Varint(b)
	if n <= 0 {
		return 0, nil, ErrWireTruncated
	}
	return v, b[n:], nil
}

func readString(b []byte, max int) (string, []byte, error) {
	n, b, err := readUvarint(b)
	if err != nil {
		return "", nil, err
	}
	if n > uint64(max) {
		return "", nil, fmt.Errorf("%w: string of %d bytes", ErrWireBounds, n)
	}
	if uint64(len(b)) < n {
		return "", nil, ErrWireTruncated
	}
	return string(b[:n]), b[n:], nil
}
