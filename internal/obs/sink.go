package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"

	"sr3/internal/metrics"
)

// Collector is an in-memory sink: tests and the bench harness inspect
// complete traces through it.
type Collector struct {
	mu    sync.Mutex
	spans []SpanRecord
}

// NewCollector returns an empty collector.
func NewCollector() *Collector { return &Collector{} }

// OnSpan implements Sink.
func (c *Collector) OnSpan(rec SpanRecord) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.spans = append(c.spans, rec)
}

// Spans returns a snapshot of all collected spans.
func (c *Collector) Spans() []SpanRecord {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]SpanRecord(nil), c.spans...)
}

// Trace returns the spans of one trace, sorted by start time (span ID
// breaking ties, so the order is total and deterministic).
func (c *Collector) Trace(traceID uint64) []SpanRecord {
	c.mu.Lock()
	var out []SpanRecord
	for _, s := range c.spans {
		if s.Trace == traceID {
			out = append(out, s)
		}
	}
	c.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].Span < out[j].Span
	})
	return out
}

// TraceIDs returns the distinct trace IDs seen, in first-seen order.
func (c *Collector) TraceIDs() []uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	seen := make(map[uint64]bool)
	var out []uint64
	for _, s := range c.spans {
		if !seen[s.Trace] {
			seen[s.Trace] = true
			out = append(out, s.Trace)
		}
	}
	return out
}

// Reset discards all collected spans.
func (c *Collector) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.spans = nil
}

// PhaseTotals sums span durations by phase for one trace — the per-phase
// breakdown of a single recovery (the repo's Fig. 9 analogue).
func (c *Collector) PhaseTotals(traceID uint64) map[string]int64 {
	out := make(map[string]int64)
	for _, s := range c.Trace(traceID) {
		out[s.Phase] += s.Duration()
	}
	return out
}

// ExportBinary renders every collected span in the compact binary wire
// format (wire.go) — the batch a remote process ships to a central
// collector.
func (c *Collector) ExportBinary() []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	var buf []byte
	for _, s := range c.spans {
		buf = AppendSpanRecord(buf, s)
	}
	return buf
}

// ImportBinary merges a binary span batch (from another process's
// ExportBinary) into this collector. Records decoded before an error are
// kept.
func (c *Collector) ImportBinary(b []byte) error {
	for len(b) > 0 {
		rec, rest, err := DecodeSpanRecord(b)
		if err != nil {
			return err
		}
		c.OnSpan(rec)
		b = rest
	}
	return nil
}

// WriteJSONL renders every collected span as JSONL (one object per
// line, the JSONLSink schema), sorted by (trace, start, span) so a
// stitched multi-process trace reads top-down. This is the seed's
// /debug/sr3/trace response body.
func (c *Collector) WriteJSONL(w io.Writer) error {
	spans := c.Spans()
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].Trace != spans[j].Trace {
			return spans[i].Trace < spans[j].Trace
		}
		if spans[i].Start != spans[j].Start {
			return spans[i].Start < spans[j].Start
		}
		return spans[i].Span < spans[j].Span
	})
	sink := NewJSONLSink(w)
	for _, s := range spans {
		sink.OnSpan(s)
	}
	return sink.Err()
}

// jsonSpan is the JSONL schema (stable field names for offline tooling).
type jsonSpan struct {
	Trace  uint64     `json:"trace"`
	Span   uint64     `json:"span"`
	Parent uint64     `json:"parent,omitempty"`
	Phase  string     `json:"phase"`
	Start  int64      `json:"start_ns"`
	End    int64      `json:"end_ns"`
	Attrs  []jsonAttr `json:"attrs,omitempty"`
}

type jsonAttr struct {
	Key string `json:"k"`
	Str string `json:"s,omitempty"`
	Int int64  `json:"i,omitempty"`
}

// JSONLSink streams one JSON object per finished span to a writer — the
// offline-analysis trace format (`jq`-able, mergeable with cat).
type JSONLSink struct {
	mu  sync.Mutex
	w   io.Writer
	err error
}

// NewJSONLSink wraps a writer (callers own closing it).
func NewJSONLSink(w io.Writer) *JSONLSink { return &JSONLSink{w: w} }

// OnSpan implements Sink.
func (s *JSONLSink) OnSpan(rec SpanRecord) {
	js := jsonSpan{
		Trace: rec.Trace, Span: rec.Span, Parent: rec.Parent,
		Phase: rec.Phase, Start: rec.Start, End: rec.End,
	}
	for _, a := range rec.Attrs {
		js.Attrs = append(js.Attrs, jsonAttr{Key: a.Key, Str: a.Str, Int: a.Int})
	}
	line, err := json.Marshal(js)
	if err != nil {
		return
	}
	line = append(line, '\n')
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err == nil {
		_, s.err = s.w.Write(line)
	}
}

// Err returns the first write error (writes stop after one).
func (s *JSONLSink) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// MetricsSink aggregates span durations into per-phase latency
// histograms in a metrics registry: phase p lands in histogram
// "<prefix><p>_ns" and increments counter "<prefix><p>_total". This is
// what the /metrics endpoint exposes.
type MetricsSink struct {
	reg    *metrics.Registry
	prefix string

	mu    sync.Mutex
	hists map[string]*metrics.LatencyHistogram
	ctrs  map[string]*metrics.Counter
}

// NewMetricsSink builds a sink over reg; prefix defaults to "sr3_phase_".
func NewMetricsSink(reg *metrics.Registry, prefix string) *MetricsSink {
	if prefix == "" {
		prefix = "sr3_phase_"
	}
	return &MetricsSink{
		reg:    reg,
		prefix: prefix,
		hists:  make(map[string]*metrics.LatencyHistogram),
		ctrs:   make(map[string]*metrics.Counter),
	}
}

// OnSpan implements Sink.
func (s *MetricsSink) OnSpan(rec SpanRecord) {
	s.mu.Lock()
	h, ok := s.hists[rec.Phase]
	if !ok {
		h = s.reg.Histogram(fmt.Sprintf("%s%s_ns", s.prefix, rec.Phase))
		s.hists[rec.Phase] = h
	}
	ctr, ok := s.ctrs[rec.Phase]
	if !ok {
		ctr = s.reg.Counter(fmt.Sprintf("%s%s_total", s.prefix, rec.Phase))
		s.ctrs[rec.Phase] = ctr
	}
	s.mu.Unlock()
	h.Record(rec.Duration())
	ctr.Inc()
}

// MultiSink fans one span out to several sinks.
type MultiSink []Sink

// OnSpan implements Sink.
func (m MultiSink) OnSpan(rec SpanRecord) {
	for _, s := range m {
		if s != nil {
			s.OnSpan(rec)
		}
	}
}
