package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"sr3/internal/metrics"
)

// MetricsServer serves a registry as Prometheus text on /metrics plus
// the standard net/http/pprof endpoints under /debug/pprof/ — the
// operational surface of a supervised SR3 process (and of sr3bench runs
// started with -metrics).
type MetricsServer struct {
	srv *http.Server
	ln  net.Listener
}

// ServeMetrics starts an HTTP server on addr (e.g. ":9090" or
// "127.0.0.1:0"; the latter picks a free port — read it back via Addr).
func ServeMetrics(addr string, reg *metrics.Registry) (*MetricsServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: metrics listen: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ms := &MetricsServer{
		srv: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second},
		ln:  ln,
	}
	go func() { _ = ms.srv.Serve(ln) }()
	return ms, nil
}

// Addr returns the listener's address (useful with ":0").
func (ms *MetricsServer) Addr() string { return ms.ln.Addr().String() }

// Close shuts the server down.
func (ms *MetricsServer) Close() error { return ms.srv.Close() }
