package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"sr3/internal/metrics"
)

// MetricsServer is the operational HTTP surface of a supervised SR3
// process (and of sr3bench runs started with -metrics): Prometheus text
// on /metrics, live-cluster JSON on /debug/sr3, the flight-recorder
// journal on /debug/sr3/flight, and the standard net/http/pprof
// endpoints under /debug/pprof/.
type MetricsServer struct {
	srv *http.Server
	ln  net.Listener
}

// DebugFunc builds the /debug/sr3 introspection snapshot. It is invoked
// per request so the view is always live; the returned value is
// JSON-encoded as the response body.
type DebugFunc func() any

// ServeConfig selects which surfaces a server exposes. Any field may be
// nil: the corresponding endpoint is simply absent (pprof is always on).
type ServeConfig struct {
	// Metrics is served on /metrics — a single *metrics.Registry or a
	// cluster-wide *metrics.ClusterRegistry.
	Metrics metrics.PrometheusWriter
	// Debug is served on /debug/sr3 as JSON.
	Debug DebugFunc
	// Flight is served on /debug/sr3/flight as JSON lines, oldest-first.
	Flight *FlightRecorder
	// Health is served on /healthz: nil error → 200 "ok", otherwise 503
	// with the error text. A readiness probe, not liveness — sr3node
	// reports healthy only once joined with every assigned cell running.
	Health func() error
	// Extra mounts additional handlers by path (the seed's federated
	// /metrics/cluster, /debug/sr3/cluster, /debug/sr3/trace and
	// /debug/sr3/postmortem surfaces ride here).
	Extra map[string]http.HandlerFunc
}

// Serve starts an HTTP server on addr (e.g. ":9090" or "127.0.0.1:0";
// the latter picks a free port — read it back via Addr) exposing the
// configured surfaces.
func Serve(addr string, cfg ServeConfig) (*MetricsServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: metrics listen: %w", err)
	}
	mux := http.NewServeMux()
	if cfg.Metrics != nil {
		reg := cfg.Metrics
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			_ = reg.WritePrometheus(w)
		})
	}
	if cfg.Debug != nil {
		dbg := cfg.Debug
		mux.HandleFunc("/debug/sr3", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			if err := enc.Encode(dbg()); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		})
	}
	if cfg.Flight != nil {
		fr := cfg.Flight
		mux.HandleFunc("/debug/sr3/flight", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/x-ndjson")
			_ = fr.WriteJSON(w)
		})
	}
	if cfg.Health != nil {
		health := cfg.Health
		mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
			if err := health(); err != nil {
				http.Error(w, err.Error(), http.StatusServiceUnavailable)
				return
			}
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			_, _ = w.Write([]byte("ok\n"))
		})
	}
	for path, h := range cfg.Extra {
		mux.HandleFunc(path, h)
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ms := &MetricsServer{
		srv: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second},
		ln:  ln,
	}
	go func() { _ = ms.srv.Serve(ln) }()
	return ms, nil
}

// ServeMetrics starts a server exposing just a metrics writer (plus
// pprof) — the pre-flight-recorder entry point, kept for callers that
// only have a registry.
func ServeMetrics(addr string, reg metrics.PrometheusWriter) (*MetricsServer, error) {
	return Serve(addr, ServeConfig{Metrics: reg})
}

// Addr returns the listener's address (useful with ":0").
func (ms *MetricsServer) Addr() string { return ms.ln.Addr().String() }

// Close shuts the server down.
func (ms *MetricsServer) Close() error { return ms.srv.Close() }
