package obs

import (
	"io"
	"net/http"
	"strings"
	"testing"

	"sr3/internal/metrics"
)

// TestServeMetricsEndToEnd scrapes a live MetricsServer over real HTTP:
// histogram lines on /metrics, the pprof index, and refusal after Close.
func TestServeMetricsEndToEnd(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Histogram("sr3_phase_fetch_ns").Record(1000)
	reg.Counter("sr3_recoveries_total").Add(2)

	srv, err := ServeMetrics("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type = %q", ct)
	}
	text := string(body)
	for _, want := range []string{
		"sr3_phase_fetch_ns_count 1",
		"sr3_phase_fetch_ns_bucket",
		"sr3_recoveries_total 2",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics body missing %q:\n%s", want, text)
		}
	}

	// A later recording shows up on the next scrape: the handler reads
	// the live registry, not a snapshot.
	reg.Histogram("sr3_phase_fetch_ns").Record(2000)
	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "sr3_phase_fetch_ns_count 2") {
		t.Fatalf("second scrape missing updated count:\n%s", body)
	}

	resp, err = http.Get(base + "/debug/pprof/goroutine?debug=1")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof status = %d", resp.StatusCode)
	}

	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get(base + "/metrics"); err == nil {
		t.Fatal("scrape after Close should fail")
	}
}

// TestServeMetricsBadAddr: an unparseable address errors immediately
// instead of leaking a half-started server.
func TestServeMetricsBadAddr(t *testing.T) {
	if _, err := ServeMetrics("not-an-addr", metrics.NewRegistry()); err == nil {
		t.Fatal("want listen error")
	}
}
