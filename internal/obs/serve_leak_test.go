package obs

import (
	"bufio"
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"testing"

	"sr3/internal/leakcheck"
	"sr3/internal/metrics"
)

// TestServeDebugSurfaces drives the full ServeConfig over real HTTP —
// /metrics, /debug/sr3 and /debug/sr3/flight, including concurrent
// scrapes — and verifies no handler goroutine outlives Close.
func TestServeDebugSurfaces(t *testing.T) {
	defer leakcheck.Verify(t)()

	reg := metrics.NewRegistry()
	reg.Counter("sr3_net_calls_total").Inc()
	fr := NewFlightRecorder(16)
	fr.Note(FlightVerdict, "n1", "", "specs=1", nil)
	fr.Note(FlightRecoveryOK, "n1", "app", "star", nil)

	srv, err := Serve("127.0.0.1:0", ServeConfig{
		Metrics: reg,
		Debug:   func() any { return map[string]int{"nodes": 3, "live": 2} },
		Flight:  fr,
	})
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + srv.Addr()

	resp, err := http.Get(base + "/debug/sr3")
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("/debug/sr3 content type = %q", ct)
	}
	var dbg map[string]int
	if err := json.NewDecoder(resp.Body).Decode(&dbg); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if dbg["nodes"] != 3 || dbg["live"] != 2 {
		t.Fatalf("/debug/sr3 = %v", dbg)
	}

	resp, err = http.Get(base + "/debug/sr3/flight")
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("flight content type = %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	var kinds []string
	for sc.Scan() {
		var ev FlightEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("flight line not JSON: %v", err)
		}
		kinds = append(kinds, ev.Kind)
	}
	resp.Body.Close()
	if len(kinds) != 2 || kinds[0] != FlightVerdict || kinds[1] != FlightRecoveryOK {
		t.Fatalf("flight kinds = %v", kinds)
	}

	// Concurrent scrapes of every surface must neither race nor strand
	// handler goroutines past Close.
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		for _, path := range []string{"/metrics", "/debug/sr3", "/debug/sr3/flight"} {
			wg.Add(1)
			go func(p string) {
				defer wg.Done()
				r, err := http.Get(base + p)
				if err != nil {
					t.Error(err)
					return
				}
				defer r.Body.Close()
				var b strings.Builder
				if _, err := bufio.NewReader(r.Body).WriteTo(&b); err != nil {
					t.Error(err)
				}
			}(path)
		}
	}
	wg.Wait()

	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestServeWithoutDebug: surfaces left nil 404 instead of panicking.
func TestServeWithoutDebug(t *testing.T) {
	defer leakcheck.Verify(t)()
	srv, err := Serve("127.0.0.1:0", ServeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{"/metrics", "/debug/sr3", "/debug/sr3/flight"} {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s status = %d, want 404", path, resp.StatusCode)
		}
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}
