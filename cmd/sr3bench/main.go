// Command sr3bench regenerates the tables and figures of the SR3 paper's
// evaluation (§5) and prints their data series.
//
// Usage:
//
//	sr3bench             # run everything
//	sr3bench -fig 8a     # one figure (8a 8b 8c 9a 9b 9c 9d 10a 10b 10c
//	                     # 11a 11b 11c 12a 12b 12c fp4s table1)
//	sr3bench -list       # list available experiments
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"sr3/internal/bench"
	"sr3/internal/metrics"
	"sr3/internal/obs"
)

type experiment struct {
	id   string
	desc string
	run  func() (string, error)
}

func figExp(id, desc string, fn func() (bench.Figure, error)) experiment {
	return experiment{id: id, desc: desc, run: func() (string, error) {
		fig, err := fn()
		if err != nil {
			return "", err
		}
		return fig.Format(), nil
	}}
}

func experiments() []experiment {
	return []experiment{
		figExp("8a", "recovery time vs state size, unconstrained", bench.Fig8a),
		figExp("8b", "recovery time vs state size, 100 Mb/s constraint", bench.Fig8b),
		figExp("8c", "state save time vs state size", bench.Fig8c),
		figExp("9a", "star recovery vs fan-out bit", bench.Fig9a),
		figExp("9b", "line recovery vs path length", bench.Fig9b),
		figExp("9c", "tree recovery vs branch depth", bench.Fig9c),
		figExp("9d", "tree recovery vs tree fan-out bit", bench.Fig9d),
		figExp("10a", "star recovery vs simultaneous failures", bench.Fig10a),
		figExp("10b", "line recovery vs simultaneous failures", bench.Fig10b),
		figExp("10c", "tree recovery vs simultaneous failures", bench.Fig10c),
		figExp("11a", "shard distribution, 500 apps / 5000 nodes", bench.Fig11a),
		figExp("11b", "shard distribution, 1000 apps / 5000 nodes", bench.Fig11b),
		figExp("11c", "normal percentiles of shards per node", bench.Fig11c),
		figExp("12a", "CPU usage during recovery", bench.Fig12a),
		figExp("12b", "memory usage during recovery", bench.Fig12b),
		figExp("12c", "overlay maintenance traffic", bench.Fig12c),
		{id: "fp4s", desc: "FP4S vs SR3 comparison (§2.3)", run: runFP4S},
		figExp("ablation-speculation", "straggler hedging (§6 future work)", bench.AblationSpeculation),
		figExp("ablation-speculation-linetree", "line/tree straggler hedging", bench.AblationSpeculationLineTree),
		{id: "chaos", desc: "failover ladder under seeded fault injection", run: bench.ChaosReport},
		{id: "dataplane", desc: "recovery goodput over TCP: size x mechanism x fetch concurrency", run: runDataPlane},
		{id: "trace", desc: "per-phase recovery breakdown from one distributed trace per mechanism", run: runTrace},
		{id: "self-heal", desc: "detection latency and MTTR vs heartbeat interval and φ threshold", run: bench.SelfHealReport},
		figExp("ablation-flowpenalty", "star flow-penalty contribution", bench.AblationFlowPenalty),
		figExp("ablation-selection", "mechanism choice per environment (§3.7)", bench.AblationMechanismDefaults),
		{id: "steady", desc: "steady-state instrumentation overhead and one-scrape cluster view", run: runSteady},
		{id: "matrix", desc: "fault-recovery matrix: scenario x mechanism x load (writes " + matrixOut + ")", run: runMatrix},
		{id: "matrix-tiny", desc: "CI smoke subset of the fault-recovery matrix (writes " + matrixTinyOut + ")", run: runMatrixTiny},
		{id: "overload", desc: "overload sweep: load past capacity with crash + retry-storm pair (writes " + overloadOut + ")", run: runOverload},
		{id: "overload-tiny", desc: "CI smoke subset of the overload sweep (writes " + overloadTinyOut + ")", run: runOverloadTiny},
		{id: "throughput", desc: "steady-state tuple plane: gob per-tuple vs batched wire + runtime cells (writes " + throughputOut + ")", run: runThroughput},
		{id: "throughput-tiny", desc: "CI smoke subset of the throughput sweep (writes " + throughputTinyOut + ")", run: runThroughputTiny},
		{id: "matrix-report", desc: "render committed matrix/overload/throughput artifacts as markdown into " + experimentsDoc + " (-plot adds SVG figures)", run: runMatrixReport},
		{id: "table1", desc: "recovery approach overview (Table 1)", run: func() (string, error) {
			return bench.FormatTable1(), nil
		}},
		{id: "summary", desc: "load-balance headline stats (§5.3)", run: runSummary},
	}
}

func runFP4S() (string, error) {
	cmp, err := bench.FP4SComparison()
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "FP4S vs SR3 at %d MB state (unconstrained):\n", cmp.StateMB)
	fmt.Fprintf(&b, "  FP4S (26,16)-RS recovery: %8.2f s (tolerates %d losses, storage x%.3f)\n",
		cmp.FP4SRecoverySec, cmp.ToleratedLosses, cmp.StorageFactor)
	fmt.Fprintf(&b, "  SR3 star recovery:        %8.2f s (replication x%d)\n",
		cmp.StarRecoverySec, cmp.SR3ReplicaFactor)
	fmt.Fprintf(&b, "  extra erasure-codec time: %8.2f s (paper: ~10 s)\n", cmp.ExtraCodecSec)
	return b.String(), nil
}

// dataPlaneOut is where the dataplane experiment writes its JSON
// artifact (relative to the working directory — run from the repo root).
const dataPlaneOut = "BENCH_dataplane.json"

func runDataPlane() (string, error) {
	report, err := bench.DataPlaneSweep(bench.DataPlaneConfig{})
	if err != nil {
		return "", err
	}
	blob, err := report.JSON()
	if err != nil {
		return "", err
	}
	if err := os.WriteFile(dataPlaneOut, blob, 0o644); err != nil {
		return "", err
	}
	return report.Format() + "wrote " + dataPlaneOut + "\n", nil
}

// traceOut is the trace experiment's JSON artifact.
const traceOut = "BENCH_trace.json"

func runTrace() (string, error) {
	report, err := bench.TraceSweep(bench.TraceConfig{Registry: metricsReg})
	if err != nil {
		return "", err
	}
	blob, err := report.JSON()
	if err != nil {
		return "", err
	}
	if err := os.WriteFile(traceOut, blob, 0o644); err != nil {
		return "", err
	}
	return report.Format() + "wrote " + traceOut + "\n", nil
}

// matrixOut is the committed fault-recovery matrix artifact;
// matrixTinyOut is the CI smoke output, kept separate so a smoke run
// never clobbers the committed numbers.
const (
	matrixOut     = "BENCH_matrix.json"
	matrixTinyOut = "BENCH_matrix_tiny.json"
)

func runMatrix() (string, error)     { return runMatrixPreset("full", matrixOut) }
func runMatrixTiny() (string, error) { return runMatrixPreset("tiny", matrixTinyOut) }

func runMatrixPreset(preset, out string) (string, error) {
	specs, err := bench.MatrixPreset(preset)
	if err != nil {
		return "", err
	}
	report := bench.MatrixSweep(specs)
	blob, err := report.JSON()
	if err != nil {
		return "", err
	}
	if err := os.WriteFile(out, blob, 0o644); err != nil {
		return "", err
	}
	failed := 0
	for _, c := range report.Cells {
		if c.Error != "" {
			failed++
		}
	}
	if failed > 0 {
		return "", fmt.Errorf("%d of %d matrix cells failed:\n%s", failed, len(report.Cells), report.Format())
	}
	return report.Format() + "wrote " + out + "\n", nil
}

// overloadOut is the committed overload artifact; overloadTinyOut is the
// CI smoke output, kept separate so a smoke run never clobbers the
// committed numbers.
const (
	overloadOut     = "BENCH_overload.json"
	overloadTinyOut = "BENCH_overload_tiny.json"
)

func runOverload() (string, error)     { return runOverloadPreset("full", overloadOut) }
func runOverloadTiny() (string, error) { return runOverloadPreset("tiny", overloadTinyOut) }

func runOverloadPreset(preset, out string) (string, error) {
	specs, err := bench.OverloadPreset(preset)
	if err != nil {
		return "", err
	}
	report := bench.OverloadSweep(specs)
	blob, err := report.JSON()
	if err != nil {
		return "", err
	}
	// The validator enforces the acceptance invariants (exact
	// accounting, bounded queues, exactly-once over admitted tuples,
	// retry cap) — a sweep that fails them is an error, not an artifact.
	if _, err := bench.ValidateOverload(blob); err != nil {
		return "", fmt.Errorf("%w\n%s", err, report.Format())
	}
	if err := os.WriteFile(out, blob, 0o644); err != nil {
		return "", err
	}
	return report.Format() + "wrote " + out + "\n", nil
}

// throughputOut is the committed throughput artifact; throughputTinyOut
// is the CI smoke output, kept separate so a smoke run never clobbers
// the committed numbers.
const (
	throughputOut     = "BENCH_throughput.json"
	throughputTinyOut = "BENCH_throughput_tiny.json"
)

func runThroughput() (string, error)     { return runThroughputPreset("full", throughputOut) }
func runThroughputTiny() (string, error) { return runThroughputPreset("tiny", throughputTinyOut) }

func runThroughputPreset(preset, out string) (string, error) {
	specs, err := bench.ThroughputPreset(preset)
	if err != nil {
		return "", err
	}
	report := bench.ThroughputSweep(specs)
	blob, err := report.JSON()
	if err != nil {
		return "", err
	}
	// The validator enforces the acceptance gate (gob baseline present,
	// batched wire speedup over the floor, runtime invariants intact) —
	// a sweep that fails it is an error, not an artifact.
	if _, err := bench.ValidateThroughput(blob); err != nil {
		return "", fmt.Errorf("%w\n%s", err, report.Format())
	}
	if err := os.WriteFile(out, blob, 0o644); err != nil {
		return "", err
	}
	return report.Format() + "wrote " + out + "\n", nil
}

// experimentsDoc is where matrix-report splices its markdown tables,
// between begin/end marker comments (appended on first run).
const experimentsDoc = "EXPERIMENTS.md"

// matrixPlotOut / overloadPlotOut are the committed SVG figures
// matrix-report renders when -plot is set.
const (
	matrixPlotOut   = "BENCH_matrix.svg"
	overloadPlotOut = "BENCH_overload.svg"
)

// plotSVG is set by the -plot flag: matrix-report also renders the
// committed artifacts as SVG figures and references them in
// EXPERIMENTS.md.
var plotSVG bool

func runMatrixReport() (string, error) {
	docBytes, err := os.ReadFile(experimentsDoc)
	if err != nil {
		return "", err
	}
	doc := string(docBytes)
	var did []string

	if blob, err := os.ReadFile(matrixOut); err == nil {
		report, err := bench.ValidateMatrix(blob)
		if err != nil {
			return "", err
		}
		figure := ""
		if plotSVG {
			svg, err := bench.PlotMatrixRecovery(report)
			if err != nil {
				return "", err
			}
			if err := os.WriteFile(matrixPlotOut, svg, 0o644); err != nil {
				return "", err
			}
			figure = fmt.Sprintf("![Recovery time by mechanism × scenario](%s)\n\n", matrixPlotOut)
			did = append(did, matrixPlotOut)
		}
		doc = bench.SpliceMarked(doc,
			"<!-- matrix-report:begin -->", "<!-- matrix-report:end -->",
			fmt.Sprintf("\nRendered from the committed `%s` by `sr3bench -fig matrix-report`.\n\n%s%s\n", matrixOut, figure, report.Markdown()))
		did = append(did, matrixOut)
	}
	if blob, err := os.ReadFile(overloadOut); err == nil {
		report, err := bench.ValidateOverload(blob)
		if err != nil {
			return "", err
		}
		figure := ""
		if plotSVG {
			svg, err := bench.PlotOverloadCurves(report)
			if err != nil {
				return "", err
			}
			if err := os.WriteFile(overloadPlotOut, svg, 0o644); err != nil {
				return "", err
			}
			figure = fmt.Sprintf("![Overload admitted vs shed fraction](%s)\n\n", overloadPlotOut)
			did = append(did, overloadPlotOut)
		}
		doc = bench.SpliceMarked(doc,
			"<!-- overload-report:begin -->", "<!-- overload-report:end -->",
			fmt.Sprintf("\nRendered from the committed `%s` by `sr3bench -fig matrix-report`.\n\n%s%s\n", overloadOut, figure, report.Markdown()))
		did = append(did, overloadOut)
	}
	if blob, err := os.ReadFile(throughputOut); err == nil {
		report, err := bench.ValidateThroughput(blob)
		if err != nil {
			return "", err
		}
		doc = bench.SpliceMarked(doc,
			"<!-- throughput-report:begin -->", "<!-- throughput-report:end -->",
			fmt.Sprintf("\nRendered from the committed `%s` by `sr3bench -fig matrix-report`.\n\n%s\n", throughputOut, report.Markdown()))
		did = append(did, throughputOut)
	}
	if len(did) == 0 {
		return "", fmt.Errorf("matrix-report: none of %s, %s, %s found (run the matrix/overload/throughput experiments first)", matrixOut, overloadOut, throughputOut)
	}
	if err := os.WriteFile(experimentsDoc, []byte(doc), 0o644); err != nil {
		return "", err
	}
	return fmt.Sprintf("rendered %s into %s\n", strings.Join(did, ", "), experimentsDoc), nil
}

func runSummary() (string, error) {
	var b strings.Builder
	for _, apps := range []int{500, 1000} {
		s, err := bench.Fig11Summary(apps)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "%4d apps on 5000 nodes: mean %.1f shards/node, max %.0f, %.1f%% of nodes < 50 shards, %.1f%% < 100\n",
			s.Apps, s.Mean, s.MaxShards, 100*s.Fraction50, 100*s.Fraction100)
	}
	return b.String(), nil
}

func runSteady() (string, error) {
	rep, err := bench.SteadyState(bench.SteadyConfig{Cluster: clusterReg})
	if err != nil {
		return "", err
	}
	return rep.Format(), nil
}

// clusterReg and metricsReg are non-nil when -metrics is set: experiments
// that support it register their registries (trace writes per-phase
// histograms into metricsReg, steady folds runtime/ring/recovery
// registries into clusterReg), and the whole cluster registry is served
// as one labeled Prometheus scrape for the run's duration.
var (
	clusterReg *metrics.ClusterRegistry
	metricsReg *metrics.Registry
)

func main() {
	figFlag := flag.String("fig", "", "experiment id to run (default: all)")
	listFlag := flag.Bool("list", false, "list experiments")
	metricsFlag := flag.String("metrics", "", "serve /metrics and /debug/pprof on this address (e.g. :9090) for the run")
	holdFlag := flag.Duration("hold", 0, "keep the -metrics server up this long after the experiments finish (for scraping)")
	flag.BoolVar(&plotSVG, "plot", false, "with -fig matrix-report, also render the committed artifacts as SVG figures ("+matrixPlotOut+", "+overloadPlotOut+") referenced from "+experimentsDoc)
	flag.Parse()
	var srv *obs.MetricsServer
	if *metricsFlag != "" {
		clusterReg = metrics.NewClusterRegistry()
		metricsReg = clusterReg.Node("bench")
		var err error
		srv, err = obs.ServeMetrics(*metricsFlag, clusterReg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sr3bench:", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Printf("serving metrics on http://%s/metrics (pprof under /debug/pprof/)\n", srv.Addr())
	}
	if err := run(*figFlag, *listFlag); err != nil {
		fmt.Fprintln(os.Stderr, "sr3bench:", err)
		os.Exit(1)
	}
	if srv != nil && *holdFlag > 0 {
		fmt.Printf("holding metrics server for %s\n", *holdFlag)
		time.Sleep(*holdFlag)
	}
}

func run(fig string, list bool) error {
	exps := experiments()
	if list {
		for _, e := range exps {
			fmt.Printf("%-8s %s\n", e.id, e.desc)
		}
		return nil
	}
	matched := false
	for _, e := range exps {
		if fig != "" && e.id != fig {
			continue
		}
		matched = true
		out, err := e.run()
		if err != nil {
			return fmt.Errorf("experiment %s: %w", e.id, err)
		}
		fmt.Printf("=== %s: %s ===\n%s\n", e.id, e.desc, out)
	}
	if !matched {
		return fmt.Errorf("unknown experiment %q (try -list)", fig)
	}
	return nil
}
