package main

import (
	"strings"
	"testing"
)

func TestExperimentIDsUnique(t *testing.T) {
	seen := make(map[string]bool)
	for _, e := range experiments() {
		if seen[e.id] {
			t.Fatalf("duplicate experiment id %q", e.id)
		}
		seen[e.id] = true
		if e.desc == "" || e.run == nil {
			t.Fatalf("experiment %q incomplete", e.id)
		}
	}
	// Every evaluation figure must be present.
	for _, want := range []string{"8a", "8b", "8c", "9a", "9b", "9c", "9d",
		"10a", "10b", "10c", "11a", "11b", "11c", "12a", "12b", "12c",
		"fp4s", "table1"} {
		if !seen[want] {
			t.Fatalf("experiment %q missing", want)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run("nope", false); err == nil {
		t.Fatal("unknown experiment should error")
	}
}

func TestRunListMode(t *testing.T) {
	if err := run("", true); err != nil {
		t.Fatal(err)
	}
}

func TestRunSingleFigure(t *testing.T) {
	// 9a is cheap and exercises the whole plumbing.
	if err := run("9a", false); err != nil {
		t.Fatal(err)
	}
}

func TestFigureOutputsFormatted(t *testing.T) {
	for _, e := range experiments() {
		if e.id != "table1" && e.id != "summary" {
			continue
		}
		out, err := e.run()
		if err != nil {
			t.Fatalf("%s: %v", e.id, err)
		}
		if !strings.Contains(out, "SR3") && !strings.Contains(out, "shards/node") {
			t.Fatalf("%s output suspicious: %q", e.id, out[:minLen(out, 80)])
		}
	}
}

func minLen(s string, n int) int {
	if len(s) < n {
		return len(s)
	}
	return n
}
