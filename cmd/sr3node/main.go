// Command sr3node is the SR3 cluster daemon: one process, one cluster
// member. The first node (started without -seed) loads the YAML
// topology spec and embeds the control plane; every other node joins
// it, receives the spec, and hosts whatever components the control
// plane assigns. State saves scatter shards to peer processes; when a
// node dies, the control plane moves its components to a survivor,
// which star-fetches the scattered state and replays.
//
// Usage:
//
//	sr3node -name a -listen 127.0.0.1:7101 -http 127.0.0.1:9101 -topo wordcount.yaml
//	sr3node -name b -listen 127.0.0.1:7102 -http 127.0.0.1:9102 -seed 127.0.0.1:7101
//
// Every flag also resolves from an SR3_* environment variable (flag >
// env > default) — see sr3node -h. SIGTERM and SIGINT trigger a clean
// shutdown: leave the cluster, drain cells, close the listener.
package main

import (
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"sr3/internal/cluster"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	cfg, err := cluster.ParseNodeConfig(args, os.Getenv)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sr3node:", err)
		return 2
	}
	node, err := cluster.StartNode(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sr3node:", err)
		return 1
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	s := <-sig
	fmt.Fprintf(os.Stderr, "sr3node: %v, shutting down\n", s)
	signal.Stop(sig)
	node.Stop()
	return 0
}
