// Command sr3topo runs one of the paper's benchmark stream applications
// (Table 3) on the stream runtime with SR3 state protection, injects a
// mid-stream failure of the stateful operator, recovers it through the
// chosen mechanism, and verifies the final state is exactly what a
// failure-free run produces.
//
// Usage:
//
//	sr3topo -app wordcount -mech tree -events 20000
//	sr3topo -app bargain   -mech star
//	sr3topo -app traffic   -mech line -nodes 80
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"sr3"
	"sr3/internal/stream"
	"sr3/internal/workload"
)

func main() {
	app := flag.String("app", "wordcount", "application: wordcount | bargain | traffic")
	mech := flag.String("mech", "tree", "recovery mechanism: star | line | tree | auto")
	events := flag.Int("events", 20000, "input events to stream")
	nodes := flag.Int("nodes", 60, "overlay size")
	seed := flag.Int64("seed", 1, "workload and overlay seed")
	flag.Parse()

	if err := run(*app, *mech, *events, *nodes, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "sr3topo:", err)
		os.Exit(1)
	}
}

func mechanismOf(name string) (sr3.Mechanism, error) {
	switch name {
	case "star":
		return sr3.Star, nil
	case "line":
		return sr3.Line, nil
	case "tree":
		return sr3.Tree, nil
	case "auto":
		return 0, nil
	default:
		return 0, fmt.Errorf("unknown mechanism %q", name)
	}
}

func run(app, mechName string, events, nodes int, seed int64) error {
	mech, err := mechanismOf(mechName)
	if err != nil {
		return err
	}
	framework, err := sr3.New(sr3.Config{Nodes: nodes, Seed: seed})
	if err != nil {
		return err
	}
	backend := framework.Backend(mech, 8, 2)

	topo, boltID, inspect, err := buildApp(app, events, seed)
	if err != nil {
		return err
	}
	rt, err := stream.NewRuntime(topo, stream.Config{
		Backend:         backend,
		SaveEveryTuples: events / 10,
	})
	if err != nil {
		return err
	}

	fmt.Printf("running %s over %d events on a %d-node SR3 overlay (mechanism %s)\n",
		app, events, nodes, mechName)
	start := time.Now()
	rt.Start()

	// Let roughly half the stream flow, then crash the stateful task and
	// recover it through SR3 (snapshot + input-log replay).
	time.Sleep(50 * time.Millisecond)
	if err := rt.Save(boltID, 0); err != nil {
		return err
	}
	if err := rt.Kill(boltID, 0); err != nil {
		return err
	}
	killedAt := time.Now()
	if err := rt.RecoverTask(boltID, 0); err != nil {
		return fmt.Errorf("recover %s: %w", boltID, err)
	}
	recoveredIn := time.Since(killedAt)

	if err := rt.Wait(); err != nil {
		return err
	}
	fmt.Printf("stream drained in %v; mid-stream task recovery took %v\n",
		time.Since(start).Round(time.Millisecond), recoveredIn.Round(time.Microsecond))
	if n := rt.ExecuteErrors(); n != 0 {
		return fmt.Errorf("%d bolt execution errors", n)
	}
	inspect()
	return nil
}

// buildApp returns the topology, the stateful bolt's ID, and a result
// printer.
func buildApp(app string, events int, seed int64) (*stream.Topology, string, func(), error) {
	switch app {
	case "wordcount":
		wc, err := workload.BuildWordCount("sr3topo", events, seed, 2)
		if err != nil {
			return nil, "", nil, err
		}
		return wc.Topology, "count", func() {
			keys := topWords(wc, 5)
			fmt.Println("top words:")
			for _, k := range keys {
				fmt.Printf("  %-12s %d\n", k, wc.Counter.Count(k))
			}
		}, nil
	case "bargain":
		bi, err := workload.BuildBargainIndex("sr3topo", events, seed)
		if err != nil {
			return nil, "", nil, err
		}
		return bi.Topology, "bargain", func() {
			fmt.Printf("tracked symbols: SYM000 VWAP %.2f, SYM001 VWAP %.2f\n",
				bi.Bargains.VWAP("SYM000"), bi.Bargains.VWAP("SYM001"))
		}, nil
	case "traffic":
		tm, err := workload.BuildTrafficMonitor("sr3topo", events, seed)
		if err != nil {
			return nil, "", nil, err
		}
		return tm.Topology, "speed", func() {
			avg, n := tm.Speeds.AvgSpeed("region-000")
			fmt.Printf("region-000: avg speed %.1f km/h over %d observations\n", avg, n)
		}, nil
	}
	return nil, "", nil, fmt.Errorf("unknown app %q", app)
}

func topWords(wc *workload.WordCountApp, n int) []string {
	// The Zipf head words are word0, word1, ... by construction.
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, fmt.Sprintf("word%d", i))
	}
	return out
}
