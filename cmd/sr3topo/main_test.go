package main

import "testing"

func TestMechanismOf(t *testing.T) {
	for _, name := range []string{"star", "line", "tree", "auto"} {
		if _, err := mechanismOf(name); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if _, err := mechanismOf("bogus"); err == nil {
		t.Fatal("bogus mechanism accepted")
	}
}

func TestRunAllAppsSmall(t *testing.T) {
	for _, app := range []string{"wordcount", "bargain", "traffic"} {
		app := app
		t.Run(app, func(t *testing.T) {
			if err := run(app, "tree", 2000, 40, 3); err != nil {
				t.Fatalf("run %s: %v", app, err)
			}
		})
	}
}

func TestRunUnknownApp(t *testing.T) {
	if err := run("bogus", "star", 10, 10, 1); err == nil {
		t.Fatal("unknown app accepted")
	}
}
