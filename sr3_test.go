package sr3

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
)

func newFramework(t *testing.T, nodes int, seed int64) *Framework {
	t.Helper()
	f, err := New(Config{Nodes: nodes, Seed: seed, Now: func() int64 { return 42 }})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func randomState(n int, seed int64) []byte {
	b := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(b)
	return b
}

func TestSaveRecoverRoundTrip(t *testing.T) {
	f := newFramework(t, 40, 1)
	st := randomState(50_000, 1)
	if err := f.Save("app", st); err != nil {
		t.Fatal(err)
	}
	owner, err := f.OwnerOf("app")
	if err != nil {
		t.Fatal(err)
	}
	f.FailNode(owner)
	f.MaintenanceRound()
	rep, err := f.Recover("app")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rep.State, st) {
		t.Fatal("recovered state differs")
	}
	if rep.Replacement == owner {
		t.Fatal("replacement is the failed owner")
	}
}

func TestDefinesPinMechanism(t *testing.T) {
	tests := []struct {
		name   string
		define func(f *Framework) error
		want   Mechanism
	}{
		{"star", func(f *Framework) error { return f.StarDefine("app", 2) }, Star},
		{"line", func(f *Framework) error { return f.LineDefine("app", 8) }, Line},
		{"tree", func(f *Framework) error { return f.TreeDefine("app", 2, 6) }, Tree},
	}
	for i, tt := range tests {
		tt := tt
		t.Run(tt.name, func(t *testing.T) {
			f := newFramework(t, 40, int64(10+i))
			if err := tt.define(f); err != nil {
				t.Fatal(err)
			}
			st := randomState(20_000, int64(i))
			if err := f.Save("app", st); err != nil {
				t.Fatal(err)
			}
			owner, _ := f.OwnerOf("app")
			f.FailNode(owner)
			rep, err := f.Recover("app")
			if err != nil {
				t.Fatal(err)
			}
			if rep.Mechanism != tt.want {
				t.Fatalf("mechanism %s, want %s", rep.Mechanism, tt.want)
			}
			if !bytes.Equal(rep.State, st) {
				t.Fatal("state differs")
			}
		})
	}
}

func TestDefineValidation(t *testing.T) {
	f := newFramework(t, 10, 2)
	if err := f.StarDefine("a", -1); !errors.Is(err, ErrBadArgument) {
		t.Fatalf("star: %v", err)
	}
	if err := f.LineDefine("a", -1); !errors.Is(err, ErrBadArgument) {
		t.Fatalf("line: %v", err)
	}
	if err := f.TreeDefine("a", -1, 2); !errors.Is(err, ErrBadArgument) {
		t.Fatalf("tree: %v", err)
	}
	if err := f.SetSharding("a", 0, 2); !errors.Is(err, ErrBadArgument) {
		t.Fatalf("sharding: %v", err)
	}
}

func TestSelectionRegistersMechanism(t *testing.T) {
	f := newFramework(t, 40, 3)
	mech, err := f.Selection("app", "latency-sensitive", 128<<20, 100_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if mech != Tree {
		t.Fatalf("selection = %s, want tree (large, constrained, sensitive)", mech)
	}
	mech, err = f.Selection("app2", "", 1<<20, 10_000_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if mech != Star {
		t.Fatalf("selection = %s, want star (small state)", mech)
	}
	if _, err := f.Selection("app3", "stateless", 0, 0); err == nil {
		t.Fatal("stateless should not use SR3")
	}
}

func TestStateSplit(t *testing.T) {
	f := newFramework(t, 20, 4)
	reps, err := f.StateSplit(randomState(1000, 5), 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 12 {
		t.Fatalf("got %d replicas, want 12", len(reps))
	}
	if _, err := f.StateSplit(nil, 0, 1); err == nil {
		t.Fatal("bad shard count accepted")
	}
}

func TestRecoverUnknownApp(t *testing.T) {
	f := newFramework(t, 20, 5)
	if _, err := f.Recover("ghost"); err == nil {
		t.Fatal("recover of unknown app should fail")
	}
	if _, err := f.OwnerOf("ghost"); !errors.Is(err, ErrUnknownApp) {
		t.Fatalf("owner: %v", err)
	}
}

func TestConcurrentAppsSurviveMultipleNodeFailures(t *testing.T) {
	f := newFramework(t, 80, 6)
	states := make(map[string][]byte)
	for i := 0; i < 6; i++ {
		app := fmt.Sprintf("app-%d", i)
		states[app] = randomState(15_000+i*777, int64(i))
		if err := f.SetSharding(app, 6, 3); err != nil {
			t.Fatal(err)
		}
		if err := f.Save(app, states[app]); err != nil {
			t.Fatal(err)
		}
	}
	// Fail all owners plus a few bystanders simultaneously.
	for app := range states {
		owner, err := f.OwnerOf(app)
		if err != nil {
			t.Fatal(err)
		}
		f.FailNode(owner)
	}
	nodes := f.Nodes()
	for i := 0; i < 5; i++ {
		f.FailNode(nodes[i*13%len(nodes)])
	}
	f.MaintenanceRound()

	for app, want := range states {
		rep, err := f.Recover(app)
		if err != nil {
			t.Fatalf("recover %s: %v", app, err)
		}
		if !bytes.Equal(rep.State, want) {
			t.Fatalf("app %s state differs", app)
		}
	}
}

func TestFrameworkStreamIntegration(t *testing.T) {
	// The re-exported runtime + SR3 backend, end to end: wordcount with a
	// task kill in the middle.
	f := newFramework(t, 40, 7)
	backend := f.Backend(Tree, 6, 2)

	topo := NewTopology("pub")
	words := []string{"x", "y", "z", "x", "y", "x"}
	i := 0
	err := topo.AddSpout("src", SpoutFunc(func() (Tuple, bool) {
		if i >= len(words) {
			return Tuple{}, false
		}
		w := words[i]
		i++
		return Tuple{Values: []any{w}}, true
	}))
	if err != nil {
		t.Fatal(err)
	}
	store := NewMapStore()
	counterBolt := &publicCounter{store: store}
	if err := topo.AddBolt("count", counterBolt, 1).Fields("src", 0).Err(); err != nil {
		t.Fatal(err)
	}
	rt, err := NewRuntime(topo, RuntimeConfig{Backend: backend, SaveEveryTuples: 2})
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()
	if err := rt.Wait(); err != nil {
		t.Fatal(err)
	}
	if v, ok := store.Get("x"); !ok || string(v) != "3" {
		t.Fatalf("count[x] = %s", v)
	}
	// The backend must hold a recoverable snapshot saved via SR3.
	snap, err := backend.Recover(TaskKey("pub", "count", 0))
	if err != nil {
		t.Fatalf("backend recover: %v", err)
	}
	check := NewMapStore()
	if err := check.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if v, ok := check.Get("x"); !ok || string(v) == "0" {
		t.Fatalf("snapshot count[x] = %s", v)
	}
}

// publicCounter is a StatefulBolt built purely from the public API.
type publicCounter struct {
	store *MapStore
}

func (c *publicCounter) Execute(t Tuple, emit Emit) error {
	w := t.StringAt(0)
	n := 0
	if v, ok := c.store.Get(w); ok {
		_, err := fmt.Sscanf(string(v), "%d", &n)
		if err != nil {
			return err
		}
	}
	n++
	c.store.Put(w, []byte(fmt.Sprintf("%d", n)))
	return nil
}

func (c *publicCounter) Store() StateStore { return c.store }

var _ StatefulBolt = (*publicCounter)(nil)
