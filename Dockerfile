# sr3node daemon image. Build once, run one container per cluster
# member (see docker-compose.yml for a three-node wiring).
FROM golang:1.22-alpine AS build
WORKDIR /src
COPY go.mod ./
COPY . .
RUN CGO_ENABLED=0 go build -o /out/sr3node ./cmd/sr3node

FROM alpine:3.19
COPY --from=build /out/sr3node /usr/local/bin/sr3node
# Topology specs are mounted (or COPYed by a derived image) here.
WORKDIR /etc/sr3
# Cluster listener and metrics/debug HTTP.
EXPOSE 7100 9100
ENTRYPOINT ["sr3node"]
