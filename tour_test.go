package sr3

import (
	"bytes"
	"fmt"
	"strconv"
	"testing"
)

// TestFullLifecycleTour walks the complete product story in one test:
// a stateful streaming application runs with SR3 protection, overlay
// nodes AND the stream task fail mid-run, recovery + healing bring
// everything back, and the final answer is exactly correct.
func TestFullLifecycleTour(t *testing.T) {
	// 1. Deployment: 80-node overlay, SR3 managers everywhere.
	f, err := New(Config{Nodes: 80, Seed: 77, Now: func() int64 { return 1 }})
	if err != nil {
		t.Fatal(err)
	}
	backend := f.Backend(0, 8, 2) // mechanism 0: heuristic per state size
	backend.LatencySensitive = true

	// 2. A word-count topology with a stateful aggregator.
	const tuples = 5000
	topo := NewTopology("tour")
	emitted := 0
	if err := topo.AddSpout("words", SpoutFunc(func() (Tuple, bool) {
		if emitted >= tuples {
			return Tuple{}, false
		}
		emitted++
		return Tuple{Values: []any{fmt.Sprintf("w%d", emitted%25)}}, true
	})); err != nil {
		t.Fatal(err)
	}
	counter := &publicCounter{store: NewMapStore()}
	if err := topo.AddBolt("agg", counter, 1).Fields("words", 0).Err(); err != nil {
		t.Fatal(err)
	}
	rt, err := NewRuntime(topo, RuntimeConfig{Backend: backend, SaveEveryTuples: 500})
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()

	// 3. Mid-run disaster: snapshot, then kill both an overlay region and
	// the stream task.
	if err := rt.Save("agg", 0); err != nil {
		t.Fatal(err)
	}
	nodes := f.Nodes()
	for i := 0; i < 8; i++ {
		f.FailNode(nodes[i*9%len(nodes)])
	}
	f.MaintenanceRound()
	if err := rt.Kill("agg", 0); err != nil {
		t.Fatal(err)
	}
	if err := rt.RecoverTask("agg", 0); err != nil {
		t.Fatalf("task recovery through damaged overlay: %v", err)
	}
	if err := rt.Wait(); err != nil {
		t.Fatal(err)
	}

	// 4. Verify exact counts despite everything.
	total := int64(0)
	for i := 0; i < 25; i++ {
		v, ok := counter.store.Get(fmt.Sprintf("w%d", i))
		if !ok {
			t.Fatalf("w%d missing", i)
		}
		n, err := strconv.ParseInt(string(v), 10, 64)
		if err != nil {
			t.Fatal(err)
		}
		total += n
	}
	if total != tuples {
		t.Fatalf("counted %d tuples, want %d", total, tuples)
	}

	// 5. Standalone state protection + healing: the Table 2 path.
	knowledge, err := counter.store.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Selection("tour-state", "latency-sensitive many-failures",
		int64(len(knowledge)), 100_000_000); err != nil {
		t.Fatal(err)
	}
	if err := f.Save("tour-state", knowledge); err != nil {
		t.Fatal(err)
	}
	owner, err := f.OwnerOf("tour-state")
	if err != nil {
		t.Fatal(err)
	}
	f.FailNode(owner)
	f.MaintenanceRound()
	report, err := f.Heal()
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Recovered) != 1 || !bytes.Equal(report.Recovered[0].State, knowledge) {
		t.Fatal("healing did not restore the saved knowledge")
	}
}
