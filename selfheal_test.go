package sr3

import (
	"bytes"
	"fmt"
	"math/rand"
	"strconv"
	"testing"
	"time"

	"sr3/internal/simnet"
)

// fastSupervision tunes supervised mode for test wall-clock.
func fastSupervision() SupervisionConfig {
	return SupervisionConfig{
		Heartbeat:      15 * time.Millisecond,
		PhiThreshold:   8,
		RepairInterval: 50 * time.Millisecond,
	}
}

func waitUntil(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// healthyReplication reports whether every shard index of app sits at its
// full replica count on live nodes only.
func healthyReplication(f *Framework, app string) bool {
	health, p, err := f.cluster.ReplicaHealth(app)
	if err != nil {
		return false
	}
	for i := 0; i < p.M; i++ {
		if health[i] != p.R {
			return false
		}
	}
	for _, nid := range p.Loc {
		if !f.ring.Net.Alive(nid) {
			return false
		}
	}
	return true
}

// TestSelfHealingUnderChaos is the end-to-end robustness test for the
// detection→supervise→repair pipeline: state owners are killed by the
// fault injector — one crash is even triggered by the detector's own
// heartbeat traffic — while heartbeat links drop messages, and the
// cluster must converge back to full replication with the states intact
// and ZERO manual Recover/Heal/RepairApp calls.
func TestSelfHealingUnderChaos(t *testing.T) {
	f := newFramework(t, 32, 77)

	snaps := map[string][]byte{}
	for i, app := range []string{"chaos-a", "chaos-b"} {
		snap := make([]byte, 40_000+i*8_000)
		rand.New(rand.NewSource(int64(100 + i))).Read(snap)
		snaps[app] = snap
		if err := f.Save(app, snap); err != nil {
			t.Fatalf("save %s: %v", app, err)
		}
	}
	ownerA, err := f.OwnerOf("chaos-a")
	if err != nil {
		t.Fatal(err)
	}
	ownerB, err := f.OwnerOf("chaos-b")
	if err != nil {
		t.Fatal(err)
	}

	// Fault plan: drop 2% of heartbeat traffic everywhere, and crash
	// chaos-a's owner on the 40th heartbeat message it receives — the
	// detector's own probes pull the trigger.
	ch := simnet.NewChaos(4242)
	ch.SetLinkFaults(simnet.LinkFaults{DropProb: 0.02, KindPrefix: "sr3.hb."})
	ch.Crash(simnet.CrashSchedule{Node: ownerA, KindPrefix: "sr3.hb.", AfterMessages: 40})
	f.ring.Net.SetChaos(ch)
	defer f.ring.Net.SetChaos(nil)

	if err := f.StartSupervision(fastSupervision()); err != nil {
		t.Fatal(err)
	}
	defer f.StopSupervision()

	// Phase 1: the scheduled crash fires on its own; wait for the
	// supervisor to detect, recover and re-protect chaos-a.
	deadline := time.Now().Add(20 * time.Second)
	for {
		done := false
		for _, e := range f.SelfHealEvents() {
			if e.App == "chaos-a" && e.Node == ownerA && e.Err == nil && !e.ReprotectedAt.IsZero() {
				done = true
			}
		}
		if done {
			break
		}
		if time.Now().After(deadline) {
			t.Logf("chaos stats: %+v, ownerA=%s alive=%v", ch.Stats(), ownerA.Short(), f.ring.Net.Alive(ownerA))
			for _, e := range f.SelfHealEvents() {
				t.Logf("event: app=%s node=%s repl=%s err=%v reprotected=%v",
					e.App, e.Node.Short(), e.Replacement.Short(), e.Err, !e.ReprotectedAt.IsZero())
			}
			t.Fatal("timed out waiting for chaos-a self-heal")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Phase 2: kill chaos-b's owner directly (second failure wave, while
	// the injected link drops stay active). If it already died as
	// collateral of the scheduled crash the supervisor must have healed
	// it anyway; the end-state assertions below cover both paths.
	if f.ring.Net.Alive(ownerB) {
		f.FailNode(ownerB)
	}
	waitUntil(t, 20*time.Second, "chaos-b self-heal", func() bool {
		for _, e := range f.SelfHealEvents() {
			if e.App == "chaos-b" && e.Err == nil && !e.ReprotectedAt.IsZero() {
				return true
			}
		}
		return false
	})

	// Convergence: both states fully replicated on live nodes, owned by
	// live replacements, byte-identical at the recovery site.
	for app, snap := range snaps {
		waitUntil(t, 20*time.Second, app+" re-replication", func() bool {
			return healthyReplication(f, app)
		})
		owner, err := f.OwnerOf(app)
		if err != nil {
			t.Fatalf("%s owner: %v", app, err)
		}
		if !f.ring.Net.Alive(owner) {
			t.Fatalf("%s owned by dead node %s", app, owner.Short())
		}
		var ev SelfHealEvent
		for _, e := range f.SelfHealEvents() {
			if e.App == app && e.Err == nil && !e.ReprotectedAt.IsZero() {
				ev = e
			}
		}
		got, ok := f.cluster.Manager(ev.Replacement).Recovered(app)
		if !ok || !bytes.Equal(got, snap) {
			t.Fatalf("%s not byte-identical at replacement %s", app, ev.Replacement.Short())
		}
		if !ev.DetectedAt.Before(ev.ReprotectedAt) {
			t.Fatalf("%s event timestamps out of order: %+v", app, ev)
		}
	}

	// The chaos plan must actually have fired.
	if st := ch.Stats(); st.Crashes == 0 {
		t.Fatal("scheduled crash never fired — the test exercised nothing")
	}
}

// TestSupervisedStreamRuntimeSelfHeals drives the full task path: a live
// word-count topology checkpoints through the SR3 backend, the DHT node
// owning the task's state dies, and the supervisor must kill the task,
// restore its state (with input-log replay) and re-protect the shards —
// no manual KillTask/RecoverTask anywhere.
func TestSupervisedStreamRuntimeSelfHeals(t *testing.T) {
	f := newFramework(t, 32, 78)
	backend := f.Backend(0, 6, 2)

	topo := NewTopology("heal")
	in := make(chan Tuple, 256)
	if err := topo.AddSpout("src", SpoutFunc(func() (Tuple, bool) {
		tp, ok := <-in
		return tp, ok
	})); err != nil {
		t.Fatal(err)
	}
	store := NewMapStore()
	if err := topo.AddBolt("count", &publicCounter{store: store}, 1).Fields("src", 0).Err(); err != nil {
		t.Fatal(err)
	}
	rt, err := NewRuntime(topo, RuntimeConfig{Backend: backend})
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()

	push := func(n int) {
		for i := 0; i < n; i++ {
			in <- Tuple{Values: []any{fmt.Sprintf("w%d", i%4)}, Ts: int64(i)}
		}
	}
	count := func(w string) int {
		v, ok := store.Get(w)
		if !ok {
			return 0
		}
		n, _ := strconv.Atoi(string(v))
		return n
	}

	push(40)
	waitUntil(t, 10*time.Second, "first batch processed", func() bool { return count("w0") == 10 })
	if err := rt.SaveAll(); err != nil {
		t.Fatalf("save: %v", err)
	}

	taskKey := TaskKey("heal", "count", 0)
	owner, err := f.OwnerOf(taskKey)
	if err != nil {
		t.Fatal(err)
	}

	if err := f.StartSupervision(fastSupervision()); err != nil {
		t.Fatal(err)
	}
	defer f.StopSupervision()
	if err := f.SuperviseRuntime(rt); err != nil {
		t.Fatal(err)
	}

	// Second batch lands after the checkpoint, then the state owner dies:
	// the replayed input log must carry these tuples across the recovery.
	push(40)
	waitUntil(t, 10*time.Second, "second batch processed", func() bool { return count("w0") == 20 })
	f.FailNode(owner)

	// Ownership can only migrate off the dead node through a verdict that
	// blames the current owner, so detection is proven by ANY task-bound
	// event naming it — the successful heal may be recorded under a later
	// verdict if the first attempt's re-protection needed a retry.
	waitUntil(t, 20*time.Second, "task-bound self-heal", func() bool {
		detected, healed := false, false
		for _, e := range f.SelfHealEvents() {
			if e.App != taskKey || !e.TaskBound {
				continue
			}
			if e.Node == owner {
				detected = true
			}
			if e.Err == nil && !e.ReprotectedAt.IsZero() {
				healed = true
			}
		}
		return detected && healed
	})

	// The recovered task must still be processing: counts survived (via
	// snapshot + replay) and new tuples keep arriving. Supervision has done
	// its job; stop it before draining so an aggressively tuned detector
	// cannot false-positive-kill the task mid-shutdown.
	waitUntil(t, 10*time.Second, "replayed state intact", func() bool { return count("w0") == 20 })
	f.StopSupervision()
	push(40)
	close(in)
	if err := rt.Wait(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		w := fmt.Sprintf("w%d", i)
		if got := count(w); got != 30 {
			t.Fatalf("count[%s] = %d after self-heal, want 30", w, got)
		}
	}

	// Replication of the task state must be back at full strength on a
	// live owner.
	waitUntil(t, 20*time.Second, "task state re-replication", func() bool {
		return healthyReplication(f, taskKey)
	})
	newOwner, err := f.OwnerOf(taskKey)
	if err != nil {
		t.Fatal(err)
	}
	if newOwner == owner || !f.ring.Net.Alive(newOwner) {
		for _, nid := range f.ring.IDs() {
			if !f.ring.Net.Alive(nid) {
				continue
			}
			p, err := f.cluster.Manager(nid).LookupPlacement(taskKey)
			t.Logf("view from %s: owner=%s epoch=%d ver=%+v err=%v",
				nid.Short(), p.Owner.Short(), p.Epoch, p.Version, err)
		}
		t.Fatalf("task state still owned by dead node %s", newOwner.Short())
	}
}
