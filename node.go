// Multi-process deployment surface: the sr3node daemon (cmd/sr3node)
// and its embedding API. Everything the framework does in one process —
// stream runtime, state scatter on save, detect/recover on failure —
// the cluster layer does across real processes: a seed node embeds the
// control plane, peers join over TCP, cross-process edges speak the
// batch tuple codec, and a dead node's components are adopted by a
// survivor that star-fetches the scattered state. The seed federates
// every member's metrics, stitches cross-process recovery traces, and
// merges distributed post-mortems. See internal/cluster and DESIGN.md
// §14–15.
package sr3

import "sr3/internal/cluster"

// NodeConfig configures one sr3node daemon (flags > SR3_* environment >
// defaults; see ParseNodeConfig).
type NodeConfig = cluster.NodeConfig

// Node is a running cluster daemon — the process-level counterpart of
// an in-process Framework node.
type Node = cluster.Node

// TopologySpec is the declarative YAML topology a cluster runs: the
// components, their wiring, and the initial component-to-node
// assignment.
type TopologySpec = cluster.Spec

// NodeDebug is the /debug/sr3 snapshot a daemon serves.
type NodeDebug = cluster.NodeDebug

// ClusterDebug is the seed's /debug/sr3/cluster snapshot: view epoch,
// members, assignment, and every member's NodeDebug, as federated by
// the metrics-pull loop (Node.ClusterDebugSnapshot; DESIGN.md §15).
type ClusterDebug = cluster.ClusterDebug

// Playground launches a local multi-process cluster (one sr3node
// process per member) — the dev and e2e harness.
type Playground = cluster.Playground

// PlaygroundConfig configures a Playground.
type PlaygroundConfig = cluster.PlaygroundConfig

// StartNode starts a daemon in this process: joins (or forms) the
// cluster, recovers and hosts its assigned components, and serves the
// cluster and HTTP listeners until Stop.
func StartNode(cfg NodeConfig) (*Node, error) { return cluster.StartNode(cfg) }

// ParseNodeConfig resolves a daemon config from command-line arguments
// with SR3_* environment fallbacks (pass os.Getenv; tests pass a stub).
func ParseNodeConfig(args []string, getenv func(string) string) (NodeConfig, error) {
	return cluster.ParseNodeConfig(args, getenv)
}

// ParseTopologySpec parses and validates a YAML topology spec.
func ParseTopologySpec(data []byte) (*TopologySpec, error) {
	return cluster.ParseSpec(data)
}

// NewPlayground prepares a local cluster of sr3node processes; Start
// launches them.
func NewPlayground(cfg PlaygroundConfig) (*Playground, error) {
	return cluster.NewPlayground(cfg)
}

// ClusterComponent is one component declaration in a TopologySpec.
type ClusterComponent = cluster.Component

// RegisterSpout adds a spout kind to the component registry every
// daemon builds cells from (call before StartNode).
func RegisterSpout(kind string, build func(c ClusterComponent, stop <-chan struct{}) (Spout, error)) {
	cluster.RegisterSpout(kind, build)
}

// RegisterBolt adds a bolt kind to the component registry (call before
// StartNode).
func RegisterBolt(kind string, stateful bool, maxParallel int, build func(c ClusterComponent) (Bolt, error)) {
	cluster.RegisterBolt(kind, stateful, maxParallel, build)
}
