package sr3

import (
	"fmt"
	"io"
	"time"

	"sr3/internal/detector"
	"sr3/internal/overload"
	"sr3/internal/supervise"
)

// RetryBudgetPolicy tunes a token-bucket retry budget: successful
// recoveries earn Ratio tokens, a time floor of MinPerSec tokens/second
// keeps a trickle of probes alive, and Burst caps the banked allowance.
// Zero fields take the package defaults (0.1 / 2 / 10).
type RetryBudgetPolicy = overload.BudgetPolicy

// SupervisionConfig tunes the framework's self-healing mode: φ-accrual
// failure detection on every node, automatic recovery of dead owners'
// states, and background replica repair. This is the in-process
// control plane; its process-level counterpart — heartbeat liveness,
// component adoption, and shard repair across sr3node daemons — is the
// cluster control plane embedded in a seed node (StartNode, node.go).
type SupervisionConfig struct {
	// Heartbeat is the φ-accrual probe interval (default 50ms).
	Heartbeat time.Duration
	// PhiThreshold is the suspicion level at which a silent peer is
	// suspected (default 8).
	PhiThreshold float64
	// Quorum is how many distinct suspecters must agree before a death
	// is declared (default 2).
	Quorum int
	// RepairInterval is the background replica-repair period
	// (default 250ms).
	RepairInterval time.Duration
	// FlightDump, when non-nil, receives the flight-recorder journal as
	// JSON lines whenever a verdict leaves protected states unrecovered
	// (the failure post-mortem). The journal itself is always on; this
	// only adds the streamed copy.
	FlightDump io.Writer
	// ShedDuringRecovery holds every supervised runtime in
	// degraded-service mode (new ingest shed at the queue watermark,
	// replay traffic untouched) for exactly the window in which the
	// supervisor is working a death verdict.
	ShedDuringRecovery bool
	// RetryBudget, when non-nil, caps retry amplification during mass
	// failures: supervisor recovery re-attempts and failover retry
	// rounds spend from one shared token bucket and fail fast when it
	// is empty. Nil keeps retries unbudgeted.
	RetryBudget *RetryBudgetPolicy
}

// SelfHealEvent records one automatically handled node death.
type SelfHealEvent = supervise.Event

// StartSupervision switches the framework into supervised mode: every
// overlay node runs a φ-accrual failure detector, dead state owners are
// recovered at replacements without any Recover call, and a maintenance
// loop repairs under-replicated shards back to each state's replication
// factor. States already saved are protected immediately; later Save
// calls protect their states automatically.
func (f *Framework) StartSupervision(cfg SupervisionConfig) error {
	f.mu.Lock()
	if f.sup != nil {
		f.mu.Unlock()
		return fmt.Errorf("sr3: supervision already running")
	}
	var budget *overload.Budget
	if cfg.RetryBudget != nil {
		budget = overload.NewBudget(*cfg.RetryBudget)
	}
	sup := supervise.New(f.cluster, supervise.Config{
		Detector: detector.Config{
			Interval:  cfg.Heartbeat,
			Threshold: cfg.PhiThreshold,
			Quorum:    cfg.Quorum,
		},
		RepairInterval:     cfg.RepairInterval,
		Tracer:             f.cfg.Tracer,
		Flight:             f.flight,
		FlightDump:         cfg.FlightDump,
		ShedDuringRecovery: cfg.ShedDuringRecovery,
		RetryBudget:        budget,
	})
	f.sup = sup
	for name, ac := range f.apps {
		if ac.lastSize > 0 {
			sup.Protect(supervise.StateSpec{
				App:        name,
				Mechanism:  ac.mechanism,
				Options:    ac.options,
				StateBytes: ac.lastSize,
			})
		}
	}
	f.mu.Unlock()
	return sup.Start()
}

// StopSupervision leaves supervised mode (idempotent).
func (f *Framework) StopSupervision() {
	f.mu.Lock()
	sup := f.sup
	f.sup = nil
	f.mu.Unlock()
	if sup != nil {
		sup.Stop()
	}
}

// Supervised reports whether self-healing mode is active.
func (f *Framework) Supervised() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.sup != nil
}

// SelfHealEvents returns the supervisor's handled-death log (empty when
// supervision never ran).
func (f *Framework) SelfHealEvents() []SelfHealEvent {
	f.mu.Lock()
	sup := f.sup
	f.mu.Unlock()
	if sup == nil {
		return nil
	}
	return sup.Events()
}

// PostMortem returns the flight-recorder snapshot the supervisor took at
// its most recent failed verdict (nil when supervision never ran or every
// verdict recovered cleanly).
func (f *Framework) PostMortem() []FlightEvent {
	f.mu.Lock()
	sup := f.sup
	f.mu.Unlock()
	if sup == nil {
		return nil
	}
	return sup.PostMortem()
}

// Supervisor exposes the running supervisor (advanced callers and the
// bench harness); nil when supervision is not active.
func (f *Framework) Supervisor() *supervise.Supervisor {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.sup
}

// SuperviseRuntime binds a stream runtime to the running supervisor:
// every stateful task is protected as a task-bound state, so a dead
// state owner triggers kill → backend recovery → input-log replay on the
// task with no manual intervention.
func (f *Framework) SuperviseRuntime(rt *Runtime) error {
	f.mu.Lock()
	sup := f.sup
	f.rts = append(f.rts, rt)
	f.mu.Unlock()
	if sup == nil {
		return fmt.Errorf("sr3: supervision not running")
	}
	sup.BindRuntime(rt)
	for _, key := range rt.StatefulTaskKeys() {
		sup.Protect(supervise.StateSpec{App: key, TaskBound: true})
	}
	return nil
}
