package sr3

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"sr3/internal/leakcheck"
)

// TestObservabilityEndToEnd exercises the whole steady-state surface over
// real HTTP: one /metrics scrape of an instrumented deployment must carry
// runtime, ring and recovery-phase families side by side (each labeled by
// node), /debug/sr3 must return the live topology and ring view, and
// /debug/sr3/flight the event journal — with no goroutine leaking past
// shutdown.
func TestObservabilityEndToEnd(t *testing.T) {
	defer leakcheck.Verify(t)()

	// Recovery phases flow into their own registry via a metrics trace
	// sink; EnableMetrics instruments the overlay; both merge into one
	// cluster scrape.
	recReg := NewMetricsRegistry()
	f, err := New(Config{
		Nodes:  24,
		Seed:   91,
		Now:    func() int64 { return 42 },
		Tracer: NewTracer(NewMetricsTraceSink(recReg)),
	})
	if err != nil {
		t.Fatal(err)
	}
	cr := f.EnableMetrics()
	cr.Register("recovery", recReg)

	// A protected plain state: fail its owner and recover it so the
	// phase histograms have samples.
	if err := f.Save("obs-state", randomState(30_000, 5)); err != nil {
		t.Fatal(err)
	}
	owner, err := f.OwnerOf("obs-state")
	if err != nil {
		t.Fatal(err)
	}
	f.FailNode(owner)
	f.MaintenanceRound()
	f.MaintenanceRound()
	if _, err := f.Recover("obs-state"); err != nil {
		t.Fatal(err)
	}

	// An instrumented stream topology journaling into the framework's
	// flight recorder.
	in := make(chan Tuple, 64)
	topo := NewTopology("obs")
	if err := topo.AddSpout("src", SpoutFunc(func() (Tuple, bool) {
		tp, ok := <-in
		return tp, ok
	})); err != nil {
		t.Fatal(err)
	}
	store := NewMapStore()
	if err := topo.AddBolt("count", &publicCounter{store: store}, 1).Fields("src", 0).Err(); err != nil {
		t.Fatal(err)
	}
	rt, err := NewRuntime(topo, RuntimeConfig{
		Backend: f.Backend(0, 4, 2),
		Metrics: cr.Node("runtime"),
		Flight:  f.Flight(),
	})
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()
	for i := 0; i < 20; i++ {
		in <- Tuple{Values: []any{fmt.Sprintf("w%d", i%4)}, Ts: int64(i)}
	}
	waitUntil(t, 10*time.Second, "tuples processed", func() bool {
		_, ok := store.Get("w3")
		return ok && rt.Pending() == 0
	})
	if err := rt.SaveAll(); err != nil {
		t.Fatal(err)
	}

	// Supervision binds the runtime so /debug/sr3 lists the topology.
	if err := f.StartSupervision(fastSupervision()); err != nil {
		t.Fatal(err)
	}
	defer f.StopSupervision()
	if err := f.SuperviseRuntime(rt); err != nil {
		t.Fatal(err)
	}

	srv, err := f.ServeObservability("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + srv.Addr()

	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	scrape := string(body)
	for _, want := range []string{
		// Runtime family under its registry label.
		`sr3_stream_tuples_in_total{node="runtime"}`,
		// Ring families labeled per overlay node.
		`sr3_dht_msg_dht_ping_total{node="`,
		`sr3_dht_stored_bytes{node="`,
		// Recovery phases from the trace sink.
		`sr3_phase_recover_ns_count{node="recovery"}`,
		// Exposition metadata rides along.
		"# HELP sr3_dht_routes_total ",
		"# TYPE sr3_stream_task_obs_count_0_proc_ns histogram",
	} {
		if !strings.Contains(scrape, want) {
			t.Fatalf("/metrics missing %q in scrape:\n%.2000s", want, scrape)
		}
	}

	resp, err = http.Get(base + "/debug/sr3")
	if err != nil {
		t.Fatal(err)
	}
	var snap DebugSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if snap.Nodes != 24 || snap.Live != 23 {
		t.Fatalf("debug nodes/live = %d/%d, want 24/23", snap.Nodes, snap.Live)
	}
	if !snap.Supervised {
		t.Fatal("debug view not marked supervised")
	}
	if len(snap.Topologies) != 1 || snap.Topologies[0].Name != "obs" {
		t.Fatalf("debug topologies = %+v", snap.Topologies)
	}
	if got := snap.Topologies[0].Tasks; len(got) != 1 || !got[0].Stateful || got[0].Handled < 20 {
		t.Fatalf("debug tasks = %+v", got)
	}
	foundApp := false
	for _, a := range snap.Apps {
		if a.Name == "obs-state" && a.Owner != "" {
			foundApp = true
		}
	}
	if !foundApp {
		t.Fatalf("debug apps missing recovered obs-state: %+v", snap.Apps)
	}

	resp, err = http.Get(base + "/debug/sr3/flight")
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[string]bool{}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var ev FlightEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("flight line not JSON: %v", err)
		}
		kinds[ev.Kind] = true
	}
	resp.Body.Close()
	if !kinds["topology.start"] {
		t.Fatalf("flight journal missing topology.start: %v", kinds)
	}

	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	f.StopSupervision()
	close(in)
	if err := rt.Wait(); err != nil {
		t.Fatal(err)
	}
}
