// Package sr3 is the public API of the SR3 reproduction: a customizable
// state-recovery framework for stateful stream processing systems
// (Xu et al., "SR3: Customizable Recovery for Stateful Stream Processing
// Systems", Middleware 2020).
//
// SR3 protects large distributed operator state without a central
// master: each state is split into m shards × r replicas scattered over
// a Pastry-style DHT ring, and lost state is rebuilt by one of three
// customizable mechanisms — star, line, or tree — chosen per
// application by the §3.7 selection heuristic or pinned explicitly via
// the Table 2 API (StarDefine / LineDefine / TreeDefine).
//
// A Framework bundles the whole substrate (overlay, shard managers,
// Scribe multicast) in one process; the stream runtime plugs into it
// through Backend().
package sr3

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"sr3/internal/dht"
	"sr3/internal/id"
	"sr3/internal/metrics"
	"sr3/internal/obs"
	"sr3/internal/recovery"
	"sr3/internal/shard"
	"sr3/internal/stream"
	"sr3/internal/supervise"
)

// Mechanism selects a recovery structure (star/line/tree).
type Mechanism = recovery.Mechanism

// Mechanisms.
const (
	Star = recovery.Star
	Line = recovery.Line
	Tree = recovery.Tree
)

// Options are the per-mechanism tuning knobs.
type Options = recovery.Options

// NodeID identifies an overlay node.
type NodeID = id.ID

// Shard is one replicated fragment of a state snapshot.
type Shard = shard.Shard

// Config sizes a Framework.
type Config struct {
	// Nodes is the overlay size (default 64).
	Nodes int
	// Seed makes node IDs and placement deterministic.
	Seed int64
	// LeafSetSize is the DHT leaf set size (default 24, the paper's).
	LeafSetSize int
	// DefaultShards and DefaultReplicas apply when an app has not called
	// StateSplit/…Define with its own values (defaults 8 and 2).
	DefaultShards   int
	DefaultReplicas int
	// Now supplies version timestamps (defaults to wall clock).
	Now func() int64
	// Tracer records structured spans for every recovery the framework
	// runs (manual Recover calls and supervised self-heals alike). Nil
	// disables tracing at zero cost. See NewTracer / NewTraceCollector.
	Tracer *obs.Tracer
}

func (c Config) withDefaults() Config {
	if c.Nodes <= 0 {
		c.Nodes = 64
	}
	if c.LeafSetSize <= 0 {
		c.LeafSetSize = 24
	}
	if c.DefaultShards <= 0 {
		c.DefaultShards = 8
	}
	if c.DefaultReplicas <= 0 {
		c.DefaultReplicas = 2
	}
	if c.Now == nil {
		c.Now = func() int64 { return time.Now().UnixMilli() }
	}
	return c
}

// Framework errors.
var (
	ErrUnknownApp  = errors.New("sr3: no state saved under this name")
	ErrBadArgument = errors.New("sr3: invalid argument")
)

type appConfig struct {
	mechanism Mechanism // 0 = use selection heuristic
	options   Options
	shards    int
	replicas  int
	lastSize  int64
}

// Framework is an in-process SR3 deployment: DHT overlay + per-node
// shard managers + mechanism registry.
type Framework struct {
	cfg     Config
	ring    *dht.Ring
	cluster *recovery.Cluster
	flight  *obs.FlightRecorder // always-on bounded event journal

	mu         sync.Mutex
	apps       map[string]*appConfig
	sup        *supervise.Supervisor // non-nil while supervised mode is active
	clusterReg *metrics.ClusterRegistry
	rts        []*stream.Runtime // runtimes bound via SuperviseRuntime (debug view)
}

// New builds the overlay and attaches SR3 managers to every node.
func New(cfg Config) (*Framework, error) {
	cfg = cfg.withDefaults()
	// KVReplicas guards the placement records: they must survive the
	// failure of their own KV root, not just the state owner's.
	ring, err := dht.NewRing(dht.Config{LeafSetSize: cfg.LeafSetSize, KVReplicas: 2}, cfg.Seed, cfg.Nodes)
	if err != nil {
		return nil, fmt.Errorf("sr3: build overlay: %w", err)
	}
	cluster := recovery.NewCluster(ring)
	cluster.SetTracer(cfg.Tracer)
	return &Framework{
		cfg:     cfg,
		ring:    ring,
		cluster: cluster,
		flight:  obs.NewFlightRecorder(obs.DefaultFlightCap),
		apps:    make(map[string]*appConfig),
	}, nil
}

// Cluster exposes the recovery cluster (benchmarks and advanced users).
func (f *Framework) Cluster() *recovery.Cluster { return f.cluster }

// Nodes returns all overlay node IDs.
func (f *Framework) Nodes() []NodeID { return f.ring.IDs() }

// FailNode crashes one overlay node (failure injection).
func (f *Framework) FailNode(n NodeID) { f.ring.Fail(n) }

// RestoreNode revives a crashed node.
func (f *Framework) RestoreNode(n NodeID) { f.ring.Restore(n) }

// MaintenanceRound runs one keep-alive round on every live node.
func (f *Framework) MaintenanceRound() { f.ring.MaintenanceRound() }

// OwnerOf returns the node currently owning an app's state.
func (f *Framework) OwnerOf(app string) (NodeID, error) {
	anyNode, err := f.ring.AnyLive()
	if err != nil {
		return NodeID{}, fmt.Errorf("sr3: %w", err)
	}
	p, err := f.cluster.Manager(anyNode.ID()).LookupPlacement(app)
	if err != nil {
		return NodeID{}, fmt.Errorf("%w: %v", ErrUnknownApp, err)
	}
	return p.Owner, nil
}

// Backend returns a stream-runtime state backend that saves and recovers
// through this framework. Mechanism 0 engages the selection heuristic.
func (f *Framework) Backend(mech Mechanism, shards, replicas int) *stream.SR3Backend {
	if shards <= 0 {
		shards = f.cfg.DefaultShards
	}
	if replicas <= 0 {
		replicas = f.cfg.DefaultReplicas
	}
	b := stream.NewSR3Backend(f.cluster, shards, replicas)
	b.Mechanism = mech
	return b
}

func (f *Framework) app(name string) *appConfig {
	ac, ok := f.apps[name]
	if !ok {
		ac = &appConfig{
			shards:   f.cfg.DefaultShards,
			replicas: f.cfg.DefaultReplicas,
			options:  recovery.DefaultOptions(),
		}
		f.apps[name] = ac
	}
	return ac
}
